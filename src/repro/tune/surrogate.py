"""The symbolic-cost surrogate the search loop scores candidates with.

One surrogate evaluation is: build the candidate's IR, run its pipeline,
then *analyze* instead of simulate — the static cost engine
(:mod:`repro.analysis.cost`) prices the host instruction stream exactly
(our builders emit loops whose trip counts the engine resolves, so the
symbolic ranges are point intervals), and the space's analytic
``invocations`` hook supplies the accelerator-side compute cycles, with an
overlap correction when the pipeline hides configuration behind running
launches.

The surrogate is a *ranking* function: validation re-measures the frontier
with real simulation, so an approximation error here costs search quality,
never correctness of the reported winner.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..analysis.cost import CostAnalysis, parameter_bindings
from ..backends.base import get_accelerator
from ..isa.instructions import InstrCategory
from ..passes.pipeline import pipeline_by_name

if TYPE_CHECKING:  # pragma: no cover
    from .space import BuiltCandidate, Candidate, ScheduleSpace

#: Bump when the scoring formula changes: persisted scores keyed under an
#: older version are ignored rather than silently reused.
SURROGATE_VERSION = 1

_CONFIG_CATEGORIES = (
    InstrCategory.SETUP,
    InstrCategory.LAUNCH,
    InstrCategory.CALC,
)


class SurrogateError(Exception):
    """The static model cannot price this candidate (unmodeled ops or
    unbounded symbolic counts) — the search drops it."""


def score_candidate(
    space: "ScheduleSpace", cand: "Candidate", size: int, seed: int = 0
) -> dict:
    """Build + optimize + statically score one candidate (no simulation)."""
    built = space.build(cand, size, seed=seed)
    pipeline_by_name(cand.pipeline).run(built.module)
    return score_built(space, cand, size, built)


def score_built(
    space: "ScheduleSpace",
    cand: "Candidate",
    size: int,
    built: "BuiltCandidate",
) -> dict:
    """Score an already-optimized module (see module docstring)."""
    summary = CostAnalysis(built.module).summary("main")
    if summary is None or not summary.is_modeled:
        raise SurrogateError(f"candidate {cand.key} has unmodeled ops")
    bindings = parameter_bindings(built.main_args)
    model = get_accelerator(space.host_accelerator).host_cost_model()

    host_cycles = 0.0
    config_cycles = 0.0
    for (_, category), count in summary.total.instrs.items():
        lo, hi = count.evaluate(bindings)
        if hi is None or hi != lo:
            raise SurrogateError(
                f"candidate {cand.key}: non-exact instruction count"
            )
        per = model.category_overrides.get(category, model.cycles_per_instr)
        host_cycles += lo * per
        if category in _CONFIG_CATEGORIES:
            config_cycles += lo * per

    config_bytes = summary.total.config_bytes_total().evaluate(bindings)[0]
    launches = 0
    for count in summary.total.launches.values():
        launches += count.evaluate(bindings)[0]

    groups = space.invocations(cand, size)
    total_launch_sites = sum(count for count, _ in groups)
    if space.overlap_hides(cand) and total_launch_sites:
        # Overlap lets the next invocation's configuration run under the
        # current launch; approximate the hideable budget as the average
        # host work per launch.
        hidden = host_cycles / total_launch_sites
        accel_cycles = sum(
            count * max(0.0, cycles - hidden) for count, cycles in groups
        )
    else:
        accel_cycles = sum(count * cycles for count, cycles in groups)

    total = host_cycles + accel_cycles
    ops = built.total_ops
    return {
        "total_cycles_est": round(total, 3),
        "host_cycles": round(host_cycles, 3),
        "accel_cycles_exposed": round(accel_cycles, 3),
        "config_cycles": round(config_cycles, 3),
        "config_bytes": int(config_bytes),
        "launches": int(launches),
        "ops": int(ops),
        "i_oc": round(ops / config_bytes, 3) if config_bytes else None,
    }
