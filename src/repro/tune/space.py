"""Schedule spaces for the autotuner.

A *candidate* is one fully-specified point of a workload's schedule space:
tile shape, loop order, size specialization, chunk length — plus the
optimization pipeline that compiles it.  Each :class:`ScheduleSpace` knows
how to enumerate candidates for one workload family (``opengemm`` and
``gemmini`` matmuls, the ``mlp`` network), how to build the concrete IR for
a candidate, and the analytic accelerator-side cycle estimate the surrogate
combines with the static host-cost model.

Spaces only enumerate *valid* candidates: tile shapes are filtered against
divisibility and scratchpad capacity up front, so the search driver never
wastes a score on an unbuildable point.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations, product
from typing import Iterable

from ..backends import gemmini as gemmini_backend
from ..backends import opengemm as opengemm_backend
from ..backends.base import get_accelerator
from ..passes.lower_linalg import ConvertLinalgToAccfgPass
from ..workloads.matmul import (
    GemminiLoopWsSchedule,
    OpenGemmSchedule,
    build_gemmini_loop_ws_matmul,
    build_opengemm_matmul,
)
from ..workloads.network import LayerSpec, NetworkSpec, build_network


@dataclass(frozen=True)
class Candidate:
    """One schedule-space point: a workload family, an optimization
    pipeline, and the family-specific schedule parameters (sorted key/value
    pairs, so equal schedules hash and compare equal)."""

    family: str
    pipeline: str
    params: tuple[tuple[str, "int | str | bool"], ...]

    @staticmethod
    def make(family: str, pipeline: str, **params: "int | str | bool") -> "Candidate":
        return Candidate(
            family=family,
            pipeline=pipeline,
            params=tuple(sorted(params.items())),
        )

    def param(self, name: str, default=None):
        for key, value in self.params:
            if key == name:
                return value
        return default

    @property
    def key(self) -> str:
        """Stable human-readable identity (report/dedup key component)."""
        rendered = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.family}|{self.pipeline}|{rendered}"

    def to_doc(self) -> dict:
        return {
            "family": self.family,
            "pipeline": self.pipeline,
            "params": {k: v for k, v in self.params},
        }

    @staticmethod
    def from_doc(doc: dict) -> "Candidate":
        return Candidate.make(
            doc["family"], doc["pipeline"], **doc.get("params", {})
        )


@dataclass
class BuiltCandidate:
    """A candidate's concrete program, ready for the pipeline + scoring.

    ``module`` is accfg-level IR (network candidates are lowered from linalg
    during :meth:`ScheduleSpace.build`); ``workload`` keeps the original
    builder result for functional checking during validation.
    """

    module: object
    memory: object
    main_args: list[int]
    workload: object
    total_ops: int


class ScheduleSpace:
    """One workload family's schedule space (see module docstring)."""

    family: str = ""
    #: Accelerator whose host cost model prices every candidate's
    #: instruction stream (fixed per family so cycle totals are comparable).
    host_accelerator: str = ""
    #: Default problem sizes for a full / ``--quick`` sweep.
    sizes: tuple[int, ...] = ()
    quick_sizes: tuple[int, ...] = ()

    def default(self, size: int) -> Candidate:
        raise NotImplementedError

    def grid(self, size: int, quick: bool = False) -> list[Candidate]:
        raise NotImplementedError

    def neighbors(self, cand: Candidate, size: int) -> list[Candidate]:
        """Greedy-refinement moves: small schedule perturbations of
        ``cand`` (already filtered for validity)."""
        raise NotImplementedError

    def build(self, cand: Candidate, size: int, seed: int = 0) -> BuiltCandidate:
        raise NotImplementedError

    def invocations(self, cand: Candidate, size: int) -> list[tuple[int, float]]:
        """``(count, compute_cycles)`` per launch-site group — the analytic
        accelerator-side term of the surrogate."""
        raise NotImplementedError

    def overlap_hides(self, cand: Candidate) -> bool:
        """Whether the candidate's pipeline overlaps next-invocation host
        work with device compute (hiding part of the accelerator time)."""
        return False


#: Pipelines that reorder configuration ahead of the running launch.
_OVERLAPPING_PIPELINES = frozenset({"overlap", "full", "unroll-full"})


def _divisor_tiles(size: int, step: int) -> list[int]:
    """Multiples of ``step`` that divide ``size``, ascending."""
    return [t for t in range(step, size + 1, step) if size % t == 0]


class OpenGemmMatmulSpace(ScheduleSpace):
    """Tile shape x loop order x pipeline for the OpenGeMM matmul."""

    family = "opengemm"
    host_accelerator = "opengemm"
    sizes = (32, 64, 128)
    quick_sizes = (32, 64)

    _ORDERS = ("flat", "ij", "ji")
    _PIPELINES = ("baseline", "dedup", "overlap", "full")
    _QUICK_ORDERS = ("flat", "ij")
    _QUICK_PIPELINES = ("dedup", "full")

    def _tiles(self, size: int) -> list[int]:
        return _divisor_tiles(size, opengemm_backend.MESH)

    def _fits(self, tile_m: int, tile_n: int, size: int) -> bool:
        schedule = OpenGemmSchedule(tile_m=tile_m, tile_n=tile_n)
        return (
            schedule.scratchpad_bytes(size)
            <= opengemm_backend.SCRATCHPAD_BYTES
        )

    def default(self, size: int) -> Candidate:
        return Candidate.make(
            self.family, "full", tile_m=opengemm_backend.MESH,
            tile_n=opengemm_backend.MESH, loop_order="flat",
        )

    def grid(self, size: int, quick: bool = False) -> list[Candidate]:
        tiles = self._tiles(size)
        if quick:
            tiles = [t for t in tiles if t & (t - 1) == 0]  # powers of two
        orders = self._QUICK_ORDERS if quick else self._ORDERS
        pipelines = self._QUICK_PIPELINES if quick else self._PIPELINES
        cands = [self.default(size)]
        for pipeline in pipelines:
            for tile_m in tiles:
                for tile_n in tiles:
                    if not self._fits(tile_m, tile_n, size):
                        continue
                    for order in orders:
                        cands.append(
                            Candidate.make(
                                self.family, pipeline, tile_m=tile_m,
                                tile_n=tile_n, loop_order=order,
                            )
                        )
        return _unique(cands)

    def neighbors(self, cand: Candidate, size: int) -> list[Candidate]:
        tiles = self._tiles(size)
        tile_m = cand.param("tile_m")
        tile_n = cand.param("tile_n")
        moves: list[Candidate] = []
        for name, current, other in (
            ("tile_m", tile_m, tile_n),
            ("tile_n", tile_n, tile_m),
        ):
            index = tiles.index(current)
            for step in (-1, 1):
                if 0 <= index + step < len(tiles):
                    params = {
                        "tile_m": tile_m, "tile_n": tile_n,
                        "loop_order": cand.param("loop_order"),
                    }
                    params[name] = tiles[index + step]
                    if self._fits(params["tile_m"], params["tile_n"], size):
                        moves.append(
                            Candidate.make(self.family, cand.pipeline, **params)
                        )
        for order in self._ORDERS:
            if order != cand.param("loop_order"):
                moves.append(
                    Candidate.make(
                        self.family, cand.pipeline, tile_m=tile_m,
                        tile_n=tile_n, loop_order=order,
                    )
                )
        return _unique(moves)

    def build(self, cand: Candidate, size: int, seed: int = 0) -> BuiltCandidate:
        schedule = OpenGemmSchedule(
            tile_m=cand.param("tile_m"),
            tile_n=cand.param("tile_n"),
            loop_order=cand.param("loop_order"),
        )
        workload = build_opengemm_matmul(size, seed=seed, schedule=schedule)
        return BuiltCandidate(
            module=workload.module,
            memory=workload.memory,
            main_args=list(workload.main_args),
            workload=workload,
            total_ops=workload.total_ops,
        )

    def invocations(self, cand: Candidate, size: int) -> list[tuple[int, float]]:
        spec = get_accelerator(self.family)
        tile_m = cand.param("tile_m")
        tile_n = cand.param("tile_n")
        count = (size // tile_m) * (size // tile_n)
        cycles = spec.compute_cycles({"M": tile_m, "K": size, "N": tile_n})
        return [(count, cycles)]

    def overlap_hides(self, cand: Candidate) -> bool:
        return cand.pipeline in _OVERLAPPING_PIPELINES


class GemminiMatmulSpace(ScheduleSpace):
    """Chunk edge x loop order x size specialization x pipeline for the
    Gemmini ``loop_ws`` matmul."""

    family = "gemmini"
    host_accelerator = "gemmini"
    sizes = (32, 64, 128)
    quick_sizes = (32, 64)

    _PIPELINES = ("dedup", "full", "unroll-full")
    _QUICK_PIPELINES = ("full", "unroll-full")
    _QUICK_ORDERS = ("ijk", "kij")

    def _chunks(self, size: int) -> list[int]:
        limit = gemmini_backend.max_invocation_edge(size)
        return [
            c
            for c in _divisor_tiles(size, gemmini_backend.ARRAY_DIM)
            if c <= limit
        ]

    def _orders(self, quick: bool) -> tuple[str, ...]:
        if quick:
            return self._QUICK_ORDERS
        return tuple("".join(p) for p in permutations("ijk"))

    def default(self, size: int) -> Candidate:
        return Candidate.make(
            self.family, "full",
            chunk=gemmini_backend.max_invocation_edge(size),
            loop_order="ijk", specialize_size=False,
        )

    def grid(self, size: int, quick: bool = False) -> list[Candidate]:
        pipelines = self._QUICK_PIPELINES if quick else self._PIPELINES
        cands = [self.default(size)]
        for pipeline in pipelines:
            for chunk in self._chunks(size):
                for order in self._orders(quick):
                    for specialize in (False, True):
                        if pipeline == "unroll-full" and not specialize:
                            # Unrolling needs constant trip counts; without
                            # size specialization it degenerates to `full`.
                            continue
                        cands.append(
                            Candidate.make(
                                self.family, pipeline, chunk=chunk,
                                loop_order=order, specialize_size=specialize,
                            )
                        )
        return _unique(cands)

    def neighbors(self, cand: Candidate, size: int) -> list[Candidate]:
        chunks = self._chunks(size)
        chunk = cand.param("chunk")
        index = chunks.index(chunk)
        moves: list[Candidate] = []
        for step in (-1, 1):
            if 0 <= index + step < len(chunks):
                moves.append(
                    Candidate.make(
                        self.family, cand.pipeline, chunk=chunks[index + step],
                        loop_order=cand.param("loop_order"),
                        specialize_size=cand.param("specialize_size"),
                    )
                )
        flipped = not cand.param("specialize_size")
        if not (cand.pipeline == "unroll-full" and not flipped):
            moves.append(
                Candidate.make(
                    self.family, cand.pipeline, chunk=chunk,
                    loop_order=cand.param("loop_order"),
                    specialize_size=flipped,
                )
            )
        return _unique(moves)

    def build(self, cand: Candidate, size: int, seed: int = 0) -> BuiltCandidate:
        schedule = GemminiLoopWsSchedule(
            chunk=cand.param("chunk"),
            loop_order=cand.param("loop_order"),
            specialize_size=cand.param("specialize_size"),
        )
        workload = build_gemmini_loop_ws_matmul(
            size, seed=seed, schedule=schedule
        )
        return BuiltCandidate(
            module=workload.module,
            memory=workload.memory,
            main_args=list(workload.main_args),
            workload=workload,
            total_ops=workload.total_ops,
        )

    def invocations(self, cand: Candidate, size: int) -> list[tuple[int, float]]:
        spec = get_accelerator(self.family)
        chunk = cand.param("chunk")
        tiles = chunk // gemmini_backend.ARRAY_DIM
        count = (size // chunk) ** 3
        cycles = spec.compute_cycles(
            {"op": gemmini_backend.OP_LOOP_WS, "I": tiles, "J": tiles, "K": tiles}
        )
        return [(count, cycles)]

    def overlap_hides(self, cand: Candidate) -> bool:
        return False  # RoCC interface: no concurrent configuration


#: Per-layer accelerator choice encoding for the mlp family.
_MLP_TARGETS = {"o": "opengemm", "g": "gemmini"}


class MlpSpace(ScheduleSpace):
    """Per-layer accelerator assignment x OpenGeMM tile shape x vector-engine
    chunk x pipeline for a 3-layer MLP (hidden width = problem size).

    The host model is pinned to the Gemmini host for every candidate (one
    SoC hosting all three engines), so cycle totals are comparable across
    assignments.
    """

    family = "mlp"
    host_accelerator = "gemmini"
    sizes = (32, 64)
    quick_sizes = (32,)

    LAYERS = 3
    BATCH = 16

    _PIPELINES = ("dedup", "full")
    _EW_CHUNKS = (32, 64, 128)
    _QUICK_EW_CHUNKS = (64, 128)

    def _assignments(self, quick: bool) -> list[str]:
        if quick:
            return ["ooo", "ggg", "ogo"]
        letters = tuple(_MLP_TARGETS)
        return ["".join(combo) for combo in product(letters, repeat=self.LAYERS)]

    def _tile_ns(self, size: int) -> list[int]:
        return [t for t in _divisor_tiles(size, 8) if t <= 32]

    def default(self, size: int) -> Candidate:
        return Candidate.make(
            self.family, "full", targets="o" * self.LAYERS,
            tile_m=8, tile_n=8, ew_chunk=64,
        )

    def grid(self, size: int, quick: bool = False) -> list[Candidate]:
        pipelines = ("full",) if quick else self._PIPELINES
        chunks = self._QUICK_EW_CHUNKS if quick else self._EW_CHUNKS
        tile_ms = (8, self.BATCH)
        cands = [self.default(size)]
        for pipeline in pipelines:
            for targets in self._assignments(quick):
                for tile_m in tile_ms:
                    for tile_n in self._tile_ns(size):
                        for ew_chunk in chunks:
                            cands.append(
                                Candidate.make(
                                    self.family, pipeline, targets=targets,
                                    tile_m=tile_m, tile_n=tile_n,
                                    ew_chunk=ew_chunk,
                                )
                            )
        return _unique(cands)

    def neighbors(self, cand: Candidate, size: int) -> list[Candidate]:
        moves: list[Candidate] = []
        tile_ns = self._tile_ns(size)
        index = tile_ns.index(cand.param("tile_n"))
        base = {k: v for k, v in cand.params}
        for step in (-1, 1):
            if 0 <= index + step < len(tile_ns):
                params = dict(base)
                params["tile_n"] = tile_ns[index + step]
                moves.append(Candidate.make(self.family, cand.pipeline, **params))
        for chunk in self._EW_CHUNKS:
            if chunk != cand.param("ew_chunk"):
                params = dict(base)
                params["ew_chunk"] = chunk
                moves.append(Candidate.make(self.family, cand.pipeline, **params))
        targets = cand.param("targets")
        for position in range(self.LAYERS):
            for letter in _MLP_TARGETS:
                if targets[position] != letter:
                    params = dict(base)
                    params["targets"] = (
                        targets[:position] + letter + targets[position + 1 :]
                    )
                    moves.append(
                        Candidate.make(self.family, cand.pipeline, **params)
                    )
        return _unique(moves)

    def _spec(self, cand: Candidate, size: int, seed: int) -> NetworkSpec:
        layers = []
        for letter in cand.param("targets"):
            target = _MLP_TARGETS[letter]
            layers.append(
                LayerSpec(
                    width=size,
                    accelerator=target,
                    tile_m=cand.param("tile_m") if target == "opengemm" else None,
                    tile_n=cand.param("tile_n") if target == "opengemm" else None,
                )
            )
        return NetworkSpec(
            input_width=size, layers=tuple(layers), batch=self.BATCH, seed=seed
        )

    def build(self, cand: Candidate, size: int, seed: int = 0) -> BuiltCandidate:
        workload = build_network(self._spec(cand, size, seed))
        ConvertLinalgToAccfgPass(
            elementwise_chunk=cand.param("ew_chunk")
        ).apply(workload.module)
        return BuiltCandidate(
            module=workload.module,
            memory=workload.memory,
            main_args=[],
            workload=workload,
            total_ops=2 * workload.total_macs,
        )

    def invocations(self, cand: Candidate, size: int) -> list[tuple[int, float]]:
        opengemm = get_accelerator("opengemm")
        gemmini = get_accelerator("gemmini")
        toyvec = get_accelerator("toyvec")
        batch = self.BATCH
        ew_chunk = cand.param("ew_chunk")
        tile_m = cand.param("tile_m")
        tile_n = cand.param("tile_n")
        dim = gemmini_backend.ARRAY_DIM
        groups: list[tuple[int, float]] = []
        widths = [size] * (self.LAYERS + 1)
        for position, letter in enumerate(cand.param("targets")):
            in_w, out_w = widths[position], widths[position + 1]
            if letter == "o":
                count = (batch // tile_m) * (out_w // tile_n)
                cycles = opengemm.compute_cycles(
                    {"M": tile_m, "K": in_w, "N": tile_n}
                )
            else:
                count = (batch // dim) * (out_w // dim) * (in_w // dim)
                cycles = gemmini.compute_cycles(
                    {"op": gemmini_backend.OP_COMPUTE}
                )
            groups.append((count, cycles))
            # Bias add: one chunked elementwise per batch row.
            full, tail = divmod(out_w, ew_chunk)
            if full:
                groups.append(
                    (batch * full, toyvec.compute_cycles({"n": ew_chunk}))
                )
            if tail:
                groups.append((batch, toyvec.compute_cycles({"n": tail})))
            if position < self.LAYERS - 1:  # ReLU on all but the last layer
                total = batch * out_w
                full, tail = divmod(total, ew_chunk)
                if full:
                    groups.append(
                        (full, toyvec.compute_cycles({"n": ew_chunk}))
                    )
                if tail:
                    groups.append((1, toyvec.compute_cycles({"n": tail})))
        return groups

    def overlap_hides(self, cand: Candidate) -> bool:
        # Only the MMIO engines overlap; the surrogate approximates the mix
        # by hiding host work when the pipeline reorders configuration.
        return cand.pipeline in _OVERLAPPING_PIPELINES


def _unique(cands: Iterable[Candidate]) -> list[Candidate]:
    seen: set[Candidate] = set()
    ordered: list[Candidate] = []
    for cand in cands:
        if cand not in seen:
            seen.add(cand)
            ordered.append(cand)
    return ordered


SPACES: dict[str, ScheduleSpace] = {
    space.family: space
    for space in (OpenGemmMatmulSpace(), GemminiMatmulSpace(), MlpSpace())
}


def get_space(family: str) -> ScheduleSpace:
    try:
        return SPACES[family]
    except KeyError:
        raise ValueError(
            f"unknown tuning family '{family}' (expected one of {sorted(SPACES)})"
        ) from None
