"""Roofline-guided autotuner: symbolic search over schedules, validated by
simulation (``python -m repro tune``).

The package splits into:

* :mod:`repro.tune.space` — candidate schedule spaces per workload family
  (tile shapes, loop orders, chunk edges, per-layer accelerator choices);
* :mod:`repro.tune.surrogate` — the static-cost surrogate that scores a
  candidate without simulating it;
* :mod:`repro.tune.cache` — the persistent structural-key score cache;
* :mod:`repro.tune.search` — the grid + greedy-refinement driver with
  process-sharded scoring and simulation-validated Pareto frontiers.
"""

from .cache import ScoreCache, score_key
from .search import (
    TuneConfig,
    format_tune_table,
    run_tune,
    tune_family,
)
from .space import (
    SPACES,
    BuiltCandidate,
    Candidate,
    GemminiMatmulSpace,
    MlpSpace,
    OpenGemmMatmulSpace,
    ScheduleSpace,
    get_space,
)
from .surrogate import (
    SURROGATE_VERSION,
    SurrogateError,
    score_built,
    score_candidate,
)

__all__ = [
    "SPACES",
    "SURROGATE_VERSION",
    "BuiltCandidate",
    "Candidate",
    "GemminiMatmulSpace",
    "MlpSpace",
    "OpenGemmMatmulSpace",
    "ScheduleSpace",
    "ScoreCache",
    "SurrogateError",
    "TuneConfig",
    "format_tune_table",
    "get_space",
    "run_tune",
    "score_built",
    "score_candidate",
    "score_key",
    "tune_family",
]
