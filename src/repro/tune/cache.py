"""Persistent surrogate-score cache for the autotuner.

Scores are keyed by the candidate's *structural* identity — the module
fingerprint of the freshly built (pre-pipeline) IR plus the pipeline name
and the surrogate version — so structurally identical candidates (however
their schedule parameters were spelled) share one entry, and a warm re-run
of the same sweep re-scores nothing.

The cache is one JSON document, loaded at search start and published
atomically (:func:`repro.ioutil.atomic_write_json`) at the end; concurrent
writers each publish a complete file and the last replace wins.
"""

from __future__ import annotations

import json
import os

from ..ioutil import atomic_write_json
from .surrogate import SURROGATE_VERSION

SCHEMA = "tune-scores/1"


def score_key(fingerprint: str, pipeline: str, host_accelerator: str) -> str:
    """Cache key: structural module identity x pipeline x scoring version."""
    return f"{fingerprint}|{pipeline}|{host_accelerator}|v{SURROGATE_VERSION}"


class ScoreCache:
    """In-memory score map with optional on-disk persistence."""

    def __init__(self, path: str | None = None) -> None:
        self.path = path
        self.scores: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        self._dirty = False
        if path and os.path.exists(path):
            try:
                with open(path) as handle:
                    doc = json.load(handle)
            except (OSError, ValueError):
                doc = {}
            if doc.get("schema") == SCHEMA:
                self.scores = dict(doc.get("scores", {}))

    def get(self, key: str) -> dict | None:
        score = self.scores.get(key)
        if score is None:
            self.misses += 1
        else:
            self.hits += 1
        return score

    def put(self, key: str, score: dict) -> None:
        if self.scores.get(key) != score:
            self._dirty = True
        self.scores[key] = score

    def seed(self, scores: dict[str, dict]) -> None:
        """Preload scores (e.g. from a ``--resume`` report) without marking
        the cache dirty."""
        for key, score in scores.items():
            self.scores.setdefault(key, score)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def save(self) -> None:
        if self.path and self._dirty:
            atomic_write_json(
                self.path, {"schema": SCHEMA, "scores": self.scores}
            )
            self._dirty = False
