"""The autotuner search driver behind ``python -m repro tune``.

Per (family, size) the driver:

1. enumerates the space's candidate **grid** (plus the hand-written default
   schedule, which is always a member and always validated);
2. **dedups** structurally identical candidates: every candidate is built
   once and keyed by its module fingerprint + pipeline, so two parameter
   spellings that produce the same IR share one surrogate evaluation and
   one persistent-cache entry;
3. **scores** every unseen key with the symbolic surrogate
   (:mod:`repro.tune.surrogate`), sharding the batch across worker
   processes via :func:`repro.testing.parallel.parallel_map` — scores are a
   pure function of the candidate, so the merged result is identical at any
   ``--jobs``;
4. runs ``refine_rounds`` of **greedy refinement**: neighbors of the
   current surrogate top-k are scored the same way;
5. **validates** the surrogate Pareto frontier (total estimated cycles vs
   configuration bytes) with real functional simulation, checking the
   numerical result *and* the static-vs-simulated oracle
   (:func:`repro.analysis.cost.compare_with_simulation`) on every point.

The final ranking of validated points uses *simulated* cycles — the
surrogate only chooses where to spend simulations, so a surrogate
approximation can never promote a loser to reported winner.

The JSON report is deterministic for a given (config, seed): no wall-clock
times and no job counts are recorded (timings go to stdout), and the
``evaluated`` score map doubles as the ``--resume`` state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.cost import compare_with_simulation
from ..backends.base import get_accelerator
from ..engine.cache import module_fingerprint
from ..interp import run_module
from ..passes.pipeline import pipeline_by_name
from ..sim import CoSimulator
from ..testing.parallel import parallel_map, shard_ranges
from .cache import ScoreCache, score_key
from .space import Candidate, ScheduleSpace, get_space
from .surrogate import SurrogateError, score_candidate

REPORT_SCHEMA = "tune-report/1"

#: Most frontier points validated (simulated) per (family, size); the
#: report records how many were dropped, never silently.
VALIDATE_CAP = 10


@dataclass
class TuneConfig:
    """One ``repro tune`` invocation's search parameters."""

    families: tuple[str, ...] = ("opengemm", "gemmini")
    sizes: tuple[int, ...] | None = None  # None: per-space defaults
    quick: bool = False
    jobs: int = 1
    seed: int = 0
    refine_rounds: int = 2
    refine_top: int = 4

    def sizes_for(self, space: ScheduleSpace) -> tuple[int, ...]:
        if self.sizes is not None:
            return self.sizes
        return space.quick_sizes if self.quick else space.sizes

    def to_doc(self) -> dict:
        return {
            "families": list(self.families),
            "sizes": list(self.sizes) if self.sizes is not None else None,
            "quick": self.quick,
            "seed": self.seed,
            "refine_rounds": self.refine_rounds,
            "refine_top": self.refine_top,
        }


def _score_shard(payload: dict) -> list[dict]:
    """Worker entry point: score a shard of candidates (module-level so the
    pool can pickle it by name).  Returns one dict per candidate, in input
    order: the surrogate score, or ``{"error": ...}``."""
    space = get_space(payload["family"])
    size = payload["size"]
    seed = payload["seed"]
    results: list[dict] = []
    for doc in payload["cands"]:
        cand = Candidate.from_doc(doc)
        try:
            results.append(score_candidate(space, cand, size, seed=seed))
        except SurrogateError as error:
            results.append({"error": str(error)})
    return results


def _score_new(
    space: ScheduleSpace,
    size: int,
    cands: list[Candidate],
    config: TuneConfig,
    cache: ScoreCache,
    state: "_FamilyState",
) -> None:
    """Fingerprint-dedup ``cands``, pull cached scores, and shard the rest
    out to the surrogate workers."""
    pending: list[tuple[str, Candidate]] = []
    for cand in cands:
        if cand in state.key_of:
            continue
        built = space.build(cand, size, seed=config.seed)
        key = score_key(
            module_fingerprint(built.module),
            cand.pipeline,
            space.host_accelerator,
        )
        state.key_of[cand] = key
        if key in state.scores or any(k == key for k, _ in pending):
            state.deduped += 1
            continue
        cached = cache.get(key)
        if cached is not None:
            state.cache_hits += 1
            state.scores[key] = None if "error" in cached else cached
            continue
        pending.append((key, cand))

    if not pending:
        return
    shards = shard_ranges(len(pending), config.jobs)
    payloads = [
        {
            "family": space.family,
            "size": size,
            "seed": config.seed,
            "cands": [c.to_doc() for _, c in pending[start : start + count]],
        }
        for start, count in shards
    ]
    merged: list[dict] = []
    for shard in parallel_map(_score_shard, payloads, jobs=config.jobs):
        merged.extend(shard)
    for (key, cand), score in zip(pending, merged):
        state.scored += 1
        if "error" in score:
            state.failed += 1
            state.scores[key] = None
        else:
            state.scores[key] = score
        cache.put(key, score)


@dataclass
class _FamilyState:
    """Search bookkeeping for one (family, size)."""

    key_of: dict[Candidate, str] = field(default_factory=dict)
    scores: dict[str, dict | None] = field(default_factory=dict)
    cache_hits: int = 0
    scored: int = 0
    deduped: int = 0
    failed: int = 0

    def score(self, cand: Candidate) -> dict | None:
        return self.scores.get(self.key_of.get(cand, ""))

    def ranked(self) -> list[Candidate]:
        """Deduped candidates with scores, best estimated cycles first."""
        best_for_key: dict[str, Candidate] = {}
        for cand, key in self.key_of.items():
            best_for_key.setdefault(key, cand)
        scored = [
            cand
            for cand in best_for_key.values()
            if self.score(cand) is not None
        ]
        return sorted(
            scored,
            key=lambda c: (self.score(c)["total_cycles_est"], c.key),
        )


def _pareto_frontier(
    cands: list[Candidate], state: _FamilyState
) -> list[Candidate]:
    """Non-dominated candidates under (estimated cycles, config bytes)."""
    frontier: list[Candidate] = []
    for cand in cands:
        score = state.score(cand)
        dominated = False
        for other in cands:
            if other is cand:
                continue
            o = state.score(other)
            if (
                o["total_cycles_est"] <= score["total_cycles_est"]
                and o["config_bytes"] <= score["config_bytes"]
                and (
                    o["total_cycles_est"] < score["total_cycles_est"]
                    or o["config_bytes"] < score["config_bytes"]
                )
            ):
                dominated = True
                break
        if not dominated:
            frontier.append(cand)
    return frontier


def _validate(
    space: ScheduleSpace, cand: Candidate, size: int, seed: int
) -> dict:
    """Real (functional) simulation of one candidate + the oracle check."""
    built = space.build(cand, size, seed=seed)
    pipeline_by_name(cand.pipeline).run(built.module)
    spec = get_accelerator(space.host_accelerator)
    sim = CoSimulator(
        memory=built.memory,
        cost_model=spec.host_cost_model(),
        functional=True,
    )
    run_module(built.module, sim, args=built.main_args)
    mismatches = compare_with_simulation(
        built.module, sim, args=built.main_args
    )
    return {
        "simulated_cycles": sim.total_cycles,
        "correct": bool(built.workload.check()),
        "mismatches": list(mismatches),
    }


def tune_family(
    space: ScheduleSpace,
    size: int,
    config: TuneConfig,
    cache: ScoreCache,
    progress=None,
) -> dict:
    """Run the full search for one (family, size); returns a report section."""
    say = progress or (lambda message: None)
    state = _FamilyState()
    default = space.default(size)
    grid = space.grid(size, quick=config.quick)
    say(f"[{space.family} n={size}] grid: {len(grid)} candidates")
    _score_new(space, size, grid, config, cache, state)

    for round_index in range(config.refine_rounds):
        top = state.ranked()[: config.refine_top]
        moves: list[Candidate] = []
        for cand in top:
            moves.extend(space.neighbors(cand, size))
        fresh = [c for c in moves if c not in state.key_of]
        if not fresh:
            break
        say(
            f"[{space.family} n={size}] refine round {round_index + 1}: "
            f"{len(fresh)} neighbor(s)"
        )
        _score_new(space, size, fresh, config, cache, state)

    ranked = state.ranked()
    frontier = _pareto_frontier(ranked, state)
    frontier.sort(key=lambda c: (state.score(c)["total_cycles_est"], c.key))
    dropped = max(0, len(frontier) - VALIDATE_CAP)
    to_validate = frontier[:VALIDATE_CAP]
    if default not in to_validate:
        to_validate.append(default)
    say(
        f"[{space.family} n={size}] validating {len(to_validate)} point(s)"
        + (f" ({dropped} frontier point(s) beyond cap skipped)" if dropped else "")
    )

    validated: list[dict] = []
    mismatch_total = 0
    for cand in to_validate:
        result = _validate(space, cand, size, config.seed)
        mismatch_total += len(result["mismatches"])
        validated.append(
            {
                "candidate": cand.to_doc(),
                "key": cand.key,
                "estimate": state.score(cand),
                **result,
            }
        )
    validated.sort(key=lambda e: (e["simulated_cycles"], e["key"]))

    default_entry = next(
        e for e in validated if e["key"] == default.key
    )
    best = validated[0]
    default_cycles = default_entry["simulated_cycles"]
    improvement = (
        (default_cycles - best["simulated_cycles"]) / default_cycles * 100.0
        if default_cycles
        else 0.0
    )
    return {
        "family": space.family,
        "size": size,
        "stats": {
            "candidates": len(state.key_of),
            "unique": len(state.scores),
            "deduped": state.deduped,
            "cache_hits": state.cache_hits,
            "scored": state.scored,
            "failed": state.failed,
            "validated": len(validated),
            "frontier_dropped": dropped,
        },
        "default": default_entry,
        "best": best,
        "improvement_pct": round(improvement, 2),
        "oracle_mismatches": mismatch_total,
        "validated": validated,
    }


def run_tune(
    config: TuneConfig,
    cache_path: str | None = None,
    resume_scores: dict | None = None,
    progress=None,
) -> dict:
    """Run the sweep over every configured (family, size); returns the full
    report document (see module docstring for determinism guarantees)."""
    cache = ScoreCache(cache_path)
    if resume_scores:
        cache.seed(resume_scores)
    results = []
    evaluated: dict[str, dict] = {}
    for family in config.families:
        space = get_space(family)
        for size in config.sizes_for(space):
            section = tune_family(space, size, config, cache, progress)
            results.append(section)
    cache.save()
    for key, score in cache.scores.items():
        evaluated[key] = score
    total_hits = sum(s["stats"]["cache_hits"] for s in results)
    total_scored = sum(s["stats"]["scored"] for s in results)
    looked_up = total_hits + total_scored
    return {
        "schema": REPORT_SCHEMA,
        "config": config.to_doc(),
        "results": results,
        "cache": {
            "cache_hits": total_hits,
            "scored": total_scored,
            "hit_rate": round(total_hits / looked_up, 4) if looked_up else 0.0,
        },
        "evaluated": evaluated,
    }


def format_tune_table(report: dict) -> str:
    """Human-readable ranked table for the CLI."""
    lines: list[str] = []
    for section in report["results"]:
        family, size = section["family"], section["size"]
        stats = section["stats"]
        lines.append(
            f"== {family} n={size}: {stats['candidates']} candidates, "
            f"{stats['unique']} unique, {stats['cache_hits']} cached, "
            f"{stats['scored']} scored, {stats['validated']} validated =="
        )
        lines.append(
            f"{'rank':>4}  {'simulated':>11}  {'estimated':>11}  "
            f"{'cfg bytes':>9}  {'ok':>2}  candidate"
        )
        for rank, entry in enumerate(section["validated"], start=1):
            est = entry["estimate"]
            marker = " *" if entry["key"] == section["default"]["key"] else ""
            lines.append(
                f"{rank:>4}  {entry['simulated_cycles']:>11.0f}  "
                f"{est['total_cycles_est']:>11.0f}  "
                f"{est['config_bytes']:>9}  "
                f"{'y' if entry['correct'] else 'N':>2}  "
                f"{entry['key']}{marker}"
            )
        lines.append(
            f"best beats default by {section['improvement_pct']:.1f}% "
            f"({section['best']['simulated_cycles']:.0f} vs "
            f"{section['default']['simulated_cycles']:.0f} cycles); "
            f"oracle mismatches: {section['oracle_mismatches']}"
        )
        lines.append("")
    cache = report["cache"]
    lines.append(
        f"surrogate evaluations: {cache['scored']} scored, "
        f"{cache['cache_hits']} cache hits "
        f"(hit rate {cache['hit_rate']:.0%})"
    )
    return "\n".join(lines)
