"""Performance benchmark harness behind ``python -m repro bench``.

Times the three throughput-bound paths of the reproduction on *pinned*
workloads (fixed generator seeds, fixed rep counts, so numbers are
comparable run to run):

* ``compile``   — build + full pass pipeline over one pinned program per
  backend (the per-pipeline cost every fuzz iteration and sweep point pays);
* ``pattern_driver`` — the greedy rewrite driver alone (worklist vs the
  legacy sweep driver on identical pinned modules; reports the speedup);
* ``simulate_cold`` — timing simulation of one pinned program per backend
  with the trace cache disabled, so every run pays compile + simulate
  (what a fuzz shard pays on first sight of a module).  Functional device
  emulation is off: this trio measures the cycle-accounting engine the
  paper's sweeps run on, and the (separately priced) functional work is
  ``simulate_functional``;
* ``simulate_warm`` — the same programs through a warm in-process trace
  cache (the steady state of repeated sweeps);
* ``simulate_batch`` — the same programs compiled once and executed across
  many lanes by the batch executor; ``batch_speedup_vs_cold`` is the
  headline amortization number;
* ``simulate_functional`` — warm-cache execution *with* functional device
  emulation (the differential-oracle hot loop).  Its gap to
  ``simulate_warm`` is the price of functional emulation, which the old
  conflated ``simulate`` number hid;
* ``persistent_cache`` — two-phase: a subprocess populates an on-disk
  store (``REPRO_CACHE_DIR``), then fresh in-process caches replay the
  workload against it.  ``persistent_hit_rate`` is reported separately
  from the in-process ``cache_hit_rate`` — a warm cross-process run never
  inflates the in-memory number;
* ``static_cost`` — the static configuration-cost engine analyzing the
  same pinned programs (prediction throughput vs ``simulate_warm``'s
  measurement throughput);
* ``serve`` — a duplicate-heavy multi-client workload against a real
  :class:`~repro.serve.ReproServer` (8 connections, mixed compile/cost
  requests over a few distinct modules), compared to the same request
  stream handled one at a time with the request-level dedup tiers off.
  ``speedup_vs_serial`` is the headline: under the GIL it comes from
  in-flight coalescing and the outcome cache, not from threading, so it
  measures exactly what the serving layer adds;
* ``fuzz_iteration`` — end-to-end ``repro.testing.fuzz`` iterations across
  all backends and all registered pipelines.

Results are written to ``BENCH_engine.json``::

    {
      "schema": "bench-engine/2",
      "meta": {... python/host info, calibration_ops_per_s, rewrite_driver ...},
      "workloads": {name: {"wall_s", "programs_per_s", "cache_hit_rate"}},
      "pass_breakdown": {pass_name: {"seconds", "runs", "ops_delta"}},
      "seed_baseline": {...}   # frozen pre-engine numbers, never overwritten
    }

``pass_breakdown`` aggregates ``PassManager(instrument=True)`` statistics
over the ``full`` pipeline: per pass slot, total seconds, run count, and net
op-count delta — the compile-side bottleneck map.

``cache_hit_rate`` reports the compiled-trace cache of :mod:`repro.engine`
(0.0 when the engine is absent or cold).  ``--check FILE`` implements the CI
regression gate: the current ``fuzz_iteration`` throughput must stay within
25% of the committed number after scaling both by the machine-speed
calibration, so the gate compares machines on equal footing; it also
requires the ``serve`` workload's ``speedup_vs_serial`` to stay at or above
:data:`SERVE_MIN_SPEEDUP` — an absolute floor, no calibration needed, since
both sides of the ratio run on the same machine in the same process.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

from .ioutil import atomic_write_json

#: Tolerated fractional throughput loss before ``--check`` fails (the CI
#: gate: "fails if fuzz-iteration throughput regresses >25%").
REGRESSION_TOLERANCE = 0.25

SCHEMA = "bench-engine/2"

#: Pinned per-workload generator seeds; changing these invalidates every
#: recorded baseline, so don't.
PINNED_SEED = 20260806


def calibrate(loops: int = 300_000) -> float:
    """Machine-speed probe: pure-Python integer ops per second.

    Used to rescale committed throughput numbers when the checking machine
    is faster/slower than the recording machine.
    """
    started = time.perf_counter()
    acc = 0
    for i in range(loops):
        acc = (acc + i * 3) & 0xFFFFFFFF
    wall = time.perf_counter() - started
    return loops / wall if wall > 0 else float("inf")


def _trace_cache_stats() -> tuple[int, int]:
    """(hits, misses) of the engine's compiled-trace cache, if present."""
    try:
        from .engine import TRACE_CACHE
    except ImportError:
        return (0, 0)
    return (TRACE_CACHE.hits, TRACE_CACHE.misses)


def _hit_rate(before: tuple[int, int], after: tuple[int, int]) -> float:
    hits = after[0] - before[0]
    misses = after[1] - before[1]
    total = hits + misses
    return hits / total if total else 0.0


def _pinned_programs() -> list:
    """One pinned mid-size program spec per backend profile."""
    import random
    import zlib

    from .testing.generator import PROFILES, generate_spec

    specs = []
    for backend in sorted(PROFILES):
        rng = random.Random(PINNED_SEED + zlib.crc32(backend.encode()) % 1000)
        specs.append(generate_spec(rng, backend, max_stmts=6))
    return specs


def bench_compile(quick: bool = False) -> dict:
    """Build + optimize (``full`` pipeline) pinned programs, repeatedly."""
    from .passes import PIPELINES
    from .testing.generator import build_spec

    specs = _pinned_programs()
    reps = 4 if quick else 40
    cache_before = _trace_cache_stats()
    started = time.perf_counter()
    programs = 0
    for _ in range(reps):
        for spec in specs:
            built = build_spec(spec, memory_seed=PINNED_SEED)
            PIPELINES["full"]().run(built.module)
            programs += 1
    wall = time.perf_counter() - started
    return {
        "wall_s": round(wall, 4),
        "programs_per_s": round(programs / wall, 3) if wall else 0.0,
        "cache_hit_rate": round(_hit_rate(cache_before, _trace_cache_stats()), 4),
    }


def bench_simulate_cold(quick: bool = False) -> dict:
    """Timing-simulate pinned programs with the trace cache disabled.

    Every run pays compile + simulate against a fresh memory image — the
    uncached per-program cost a sweep pays on first sight of a module.
    Functional device emulation is off (its price is measured by
    ``simulate_functional``); this is the denominator of
    ``simulate_batch``'s amortization claim.
    """
    from .engine import run_module_traced
    from .sim import CoSimulator
    from .testing.generator import build_spec

    bases = [
        build_spec(spec, memory_seed=PINNED_SEED) for spec in _pinned_programs()
    ]
    reps = 8 if quick else 100
    started = time.perf_counter()
    programs = 0
    for _ in range(reps):
        for built in bases:
            sim = CoSimulator(memory=built.memory.duplicate(), functional=False)
            run_module_traced(
                built.module, sim, args=built.args, cache=False, fallback=False
            )
            programs += 1
    wall = time.perf_counter() - started
    return {
        "wall_s": round(wall, 4),
        "programs_per_s": round(programs / wall, 3) if wall else 0.0,
        "cache_hit_rate": 0.0,  # cache disabled by construction
        "functional": False,
    }


def bench_simulate_warm(quick: bool = False) -> dict:
    """Timing-simulate pinned programs through a warm in-process cache.

    A private :class:`~repro.engine.TraceCache` isolates the measurement
    from whatever the other workloads left in the process-wide cache; only
    the first rep per program compiles, the rest dispatch cached traces.
    Cache keys are precomputed once per program, matching how the fuzz
    oracles reuse one structural key across repeated executions (keying on
    every call would re-fingerprint the module each run, which for small
    modules costs more than compiling them).
    """
    from .engine import TraceCache, TraceExecutor, module_fingerprint
    from .sim import CoSimulator
    from .testing.generator import build_spec

    bases = [
        build_spec(spec, memory_seed=PINNED_SEED) for spec in _pinned_programs()
    ]
    keys = [module_fingerprint(built.module) for built in bases]
    cache = TraceCache()
    reps = 16 if quick else 200
    started = time.perf_counter()
    programs = 0
    for _ in range(reps):
        for built, key in zip(bases, keys):
            compiled = cache.get_or_compile(built.module, key=key)
            sim = CoSimulator(memory=built.memory.duplicate(), functional=False)
            TraceExecutor(compiled, sim).run(args=built.args)
            programs += 1
    wall = time.perf_counter() - started
    return {
        "wall_s": round(wall, 4),
        "programs_per_s": round(programs / wall, 3) if wall else 0.0,
        "cache_hit_rate": round(cache.hit_rate, 4),
        "functional": False,
    }


#: Lanes per batch in ``simulate_batch`` — the amortization width the
#: headline ``batch_speedup_vs_cold`` number is quoted at.
BATCH_LANES = 64


def bench_simulate_batch(quick: bool = False) -> dict:
    """Timing-simulate pinned programs through the batch executor.

    Each program is compiled fresh (same cost ``simulate_cold`` pays) and
    then run across :data:`BATCH_LANES` duplicated memory images in one
    lockstep batch, so one compile + one dispatch walk is amortized over
    the whole lane set.  ``programs_per_s`` counts lanes — one lane is one
    (program, memory image) simulation, the same unit the scalar workloads
    count — and ``run_bench`` derives ``batch_speedup_vs_cold`` from it.
    """
    from .engine import BatchExecutor, BatchLane, compile_module
    from .testing.generator import build_spec

    bases = [
        build_spec(spec, memory_seed=PINNED_SEED) for spec in _pinned_programs()
    ]
    # Untimed warm-up: the batch executor memoizes its vector kernels
    # (np.frompyfunc wrappers) process-wide on first sight of each opcode
    # combination; the scalar workloads got their equivalent warm-up from
    # the workloads that ran before them.
    for built in bases:
        BatchExecutor(compile_module(built.module), functional=False).run(
            [BatchLane(memory=built.memory.duplicate(), args=list(built.args))]
        )
    reps = 2 if quick else 12
    started = time.perf_counter()
    programs = 0
    for _ in range(reps):
        for built in bases:
            compiled = compile_module(built.module)
            lanes = [
                BatchLane(memory=built.memory.duplicate(), args=list(built.args))
                for _ in range(BATCH_LANES)
            ]
            BatchExecutor(compiled, functional=False).run(lanes)
            programs += len(lanes)
    wall = time.perf_counter() - started
    return {
        "wall_s": round(wall, 4),
        "programs_per_s": round(programs / wall, 3) if wall else 0.0,
        "cache_hit_rate": 0.0,  # compiled fresh by construction
        "functional": False,
        "lanes": BATCH_LANES,
    }


def bench_simulate_functional(quick: bool = False) -> dict:
    """The differential-oracle hot loop: warm cache, functional devices on.

    Same programs and cache discipline as ``simulate_warm`` but with
    functional device emulation enabled — the gap between the two numbers
    is the price of emulating accelerator semantics, which the old
    conflated ``simulate`` workload hid inside one number.
    """
    from .engine import TraceCache, TraceExecutor, module_fingerprint
    from .sim import CoSimulator
    from .testing.generator import build_spec

    bases = [
        build_spec(spec, memory_seed=PINNED_SEED) for spec in _pinned_programs()
    ]
    keys = [module_fingerprint(built.module) for built in bases]
    cache = TraceCache()
    reps = 8 if quick else 100
    started = time.perf_counter()
    programs = 0
    for _ in range(reps):
        for built, key in zip(bases, keys):
            compiled = cache.get_or_compile(built.module, key=key)
            sim = CoSimulator(memory=built.memory.duplicate(), functional=True)
            TraceExecutor(compiled, sim).run(args=built.args)
            programs += 1
    wall = time.perf_counter() - started
    return {
        "wall_s": round(wall, 4),
        "programs_per_s": round(programs / wall, 3) if wall else 0.0,
        "cache_hit_rate": round(cache.hit_rate, 4),
        "functional": True,
    }


def bench_persistent_cache(quick: bool = False) -> dict:
    """Two-phase cross-process measurement of the persistent trace cache.

    Phase 1 runs the pinned programs in a *subprocess* with
    ``REPRO_CACHE_DIR`` pointing at a throwaway store, so compiled traces
    land on disk exactly the way a fuzz shard publishes them.  Phase 2
    replays the workload in this process through fresh in-memory caches
    (one per rep — each rep simulates a new process) backed by the same
    directory.  ``persistent_hit_rate`` therefore measures only disk loads;
    the in-process ``cache_hit_rate`` stays 0 by construction, keeping the
    two tiers' numbers separate.
    """
    import os
    import subprocess
    import tempfile

    from .engine import TraceCache, TraceExecutor
    from .engine.pcache import PersistentStore
    from .sim import CoSimulator
    from .testing.generator import build_spec

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    phase1_script = (
        "from repro.bench import PINNED_SEED, _pinned_programs\n"
        "from repro.engine import run_module_traced\n"
        "from repro.sim import CoSimulator\n"
        "from repro.testing.generator import build_spec\n"
        "for spec in _pinned_programs():\n"
        "    built = build_spec(spec, memory_seed=PINNED_SEED)\n"
        "    run_module_traced(built.module, CoSimulator(memory=built.memory),\n"
        "                      args=built.args)\n"
    )
    reps = 3 if quick else 12
    with tempfile.TemporaryDirectory(prefix="repro-bench-pcache-") as cache_dir:
        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = cache_dir
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        phase1_started = time.perf_counter()
        phase1 = subprocess.run(
            [sys.executable, "-c", phase1_script],
            env=env,
            capture_output=True,
            text=True,
        )
        phase1_wall = time.perf_counter() - phase1_started

        bases = [
            build_spec(spec, memory_seed=PINNED_SEED)
            for spec in _pinned_programs()
        ]
        hits = misses = rejected = 0
        started = time.perf_counter()
        programs = 0
        for _ in range(reps):
            store = PersistentStore(cache_dir)
            cache = TraceCache(store=store)
            for built in bases:
                compiled = cache.get_or_compile(built.module)
                executor = TraceExecutor(
                    compiled, CoSimulator(memory=built.memory.duplicate())
                )
                executor.run(args=built.args)
                programs += 1
            hits += store.hits
            misses += store.misses
            rejected += store.rejected
        wall = time.perf_counter() - started
    total = hits + misses
    return {
        "wall_s": round(wall, 4),
        "programs_per_s": round(programs / wall, 3) if wall else 0.0,
        "cache_hit_rate": 0.0,  # fresh in-memory cache per rep
        "persistent_hit_rate": round(hits / total, 4) if total else 0.0,
        "persistent_rejected": rejected,
        "phase1_wall_s": round(phase1_wall, 4),
        "phase1_ok": phase1.returncode == 0,
    }


def bench_pattern_driver(quick: bool = False) -> dict:
    """Worklist vs legacy sweep pattern driver on pinned modules.

    Isolates the rewrite-driver cost (canonicalization pattern set, the one
    every pipeline pays): each program is rebuilt per run and only the
    ``drive_patterns`` call is timed, so the ratio is a pure driver
    comparison.  The headline ``programs_per_s`` reports the shipped
    (worklist) driver; the sweep driver's numbers and the resulting speedup
    ride along.
    """
    from .ir.rewriter import drive_patterns
    from .passes.canonicalize import DEFAULT_PATTERNS
    from .testing.generator import build_spec

    specs = _pinned_programs()

    def timed(driver: str, reps: int) -> tuple[float, int]:
        total = 0.0
        programs = 0
        for _ in range(reps):
            for spec in specs:
                built = build_spec(spec, memory_seed=PINNED_SEED)
                started = time.perf_counter()
                drive_patterns(built.module, DEFAULT_PATTERNS, driver=driver)
                total += time.perf_counter() - started
                programs += 1
        return total, programs

    wall, programs = timed("worklist", 8 if quick else 80)
    sweep_wall, sweep_programs = timed("sweep", 2 if quick else 20)
    worklist_rate = programs / wall if wall else 0.0
    sweep_rate = sweep_programs / sweep_wall if sweep_wall else 0.0
    return {
        "wall_s": round(wall, 4),
        "programs_per_s": round(worklist_rate, 3),
        "cache_hit_rate": 0.0,  # no execution: the trace cache never engages
        "sweep_wall_s": round(sweep_wall, 4),
        "sweep_programs_per_s": round(sweep_rate, 3),
        "worklist_speedup": round(worklist_rate / sweep_rate, 3)
        if sweep_rate
        else 0.0,
    }


def bench_pass_breakdown(quick: bool = False) -> dict:
    """Aggregated per-pass wall time of the ``full`` pipeline.

    Feeds the ``pass_breakdown`` section of BENCH_engine.json from
    ``PassManager(instrument=True)`` statistics: for each pass slot the
    total seconds across all runs, the run count, and the net op-count
    delta — the compile-side answer to "which pass is the bottleneck".
    """
    from .passes import PIPELINES
    from .testing.generator import build_spec

    specs = _pinned_programs()
    reps = 2 if quick else 10
    totals: dict[str, dict] = {}
    for _ in range(reps):
        for spec in specs:
            built = build_spec(spec, memory_seed=PINNED_SEED)
            manager = PIPELINES["full"]()
            manager.instrument = True
            manager.run(built.module)
            for stat in manager.statistics:
                entry = totals.setdefault(
                    stat.pass_name, {"seconds": 0.0, "runs": 0, "ops_delta": 0}
                )
                entry["seconds"] += stat.seconds
                entry["runs"] += 1
                entry["ops_delta"] += stat.ops_delta
    return {
        name: {
            "seconds": round(entry["seconds"], 4),
            "runs": entry["runs"],
            "ops_delta": entry["ops_delta"],
        }
        for name, entry in sorted(totals.items())
    }


def bench_fuzz(quick: bool = False) -> dict:
    """End-to-end fuzz iterations (all backends, all pipelines, no corpus)."""
    from .testing import fuzz

    # Quick mode still needs enough iterations to amortize per-run setup,
    # or the --check gate would compare a cold quick number against the
    # committed steady-state one.
    iterations = 8 if quick else 25
    cache_before = _trace_cache_stats()
    started = time.perf_counter()
    report = fuzz(
        seed=0,
        iterations=iterations,
        corpus_dir=None,
        shrink=False,
    )
    wall = time.perf_counter() - started
    return {
        "wall_s": round(wall, 4),
        "programs_per_s": round(report.programs_run / wall, 3) if wall else 0.0,
        "cache_hit_rate": round(_hit_rate(cache_before, _trace_cache_stats()), 4),
    }


def bench_fuzz_acceptance(quick: bool = False) -> dict:
    """The acceptance workload: 200 fuzz iterations, all backends, shrink
    and corpus on defaults — the exact shape of
    ``python -m repro fuzz --seed 0 --iterations 200`` (minus corpus I/O).
    Quick mode scales the count down and notes it in the result."""
    from .testing import fuzz

    iterations = 20 if quick else 200
    cache_before = _trace_cache_stats()
    started = time.perf_counter()
    report = fuzz(seed=0, iterations=iterations, corpus_dir=None)
    wall = time.perf_counter() - started
    return {
        "wall_s": round(wall, 4),
        "programs_per_s": round(report.programs_run / wall, 3) if wall else 0.0,
        "cache_hit_rate": round(_hit_rate(cache_before, _trace_cache_stats()), 4),
        "iterations": iterations,
    }


def bench_static_cost(quick: bool = False) -> dict:
    """The static cost engine: programs analyzed per second.

    Each rep runs a fresh :class:`~repro.analysis.cost.CostAnalysis` over
    the pinned programs (summaries for every function, rendered through the
    same report the CLI prints; no caching between reps).  Read it against
    the ``simulate_functional`` workload, which executes the same pinned
    programs: the ratio is the price of a prediction vs a measurement.
    """
    from .analysis.cost import CostAnalysis, format_cost_table
    from .testing.generator import build_spec

    specs = _pinned_programs()
    reps = 8 if quick else 100
    builds = [build_spec(spec, memory_seed=PINNED_SEED) for spec in specs]
    started = time.perf_counter()
    programs = 0
    for _ in range(reps):
        for built in builds:
            format_cost_table(CostAnalysis(built.module))
            programs += 1
    wall = time.perf_counter() - started
    return {
        "wall_s": round(wall, 4),
        "programs_per_s": round(programs / wall, 3) if wall else 0.0,
        "cache_hit_rate": 0.0,  # pure analysis: the trace cache never engages
    }


#: ``--check`` floor for the autotuner's surrogate-vs-simulation ratio: the
#: whole point of the symbolic surrogate is scoring candidates much faster
#: than simulating them, so the ratio is gated absolutely (both sides run
#: on this machine; no calibration applies).
AUTOTUNE_MIN_SPEEDUP = 50.0


def bench_autotune(quick: bool = False) -> dict:
    """Surrogate scoring vs simulation on one autotuner candidate batch.

    Builds and optimizes a slice of the OpenGeMM schedule grid once (the
    cost either scoring path pays on the search path is identical, so it is
    excluded), then times the two ways of attaching a number to each
    optimized module: the static surrogate (:mod:`repro.tune.surrogate`)
    and the functional co-simulation the tuner's validation stage uses —
    what every candidate would cost if the search scored by simulating.
    ``programs_per_s`` is the surrogate rate — candidates scored per
    second — and ``surrogate_speedup`` is the headline ratio the
    ``--check`` gate enforces at :data:`AUTOTUNE_MIN_SPEEDUP`.
    """
    from .interp import run_module
    from .passes import pipeline_by_name
    from .sim import CoSimulator
    from .tune import get_space, score_built

    space = get_space("opengemm")
    size = 128
    cands = space.grid(size, quick=True)[: 6 if quick else 12]
    builds = []
    for cand in cands:
        built = space.build(cand, size, seed=PINNED_SEED)
        pipeline_by_name(cand.pipeline).run(built.module)
        builds.append((cand, built))

    # One untimed pass to populate the instruction-tuple memo and any lazy
    # imports, so the timed reps measure steady-state scoring throughput.
    for cand, built in builds:
        score_built(space, cand, size, built)

    surrogate_reps = 8 if quick else 40
    started = time.perf_counter()
    scored = 0
    for _ in range(surrogate_reps):
        for cand, built in builds:
            score_built(space, cand, size, built)
            scored += 1
    surrogate_wall = time.perf_counter() - started

    from .backends.base import get_accelerator

    cost_model = get_accelerator(space.host_accelerator).host_cost_model()
    sim_reps = 1 if quick else 3
    started = time.perf_counter()
    simulated = 0
    for _ in range(sim_reps):
        for _, built in builds:
            sim = CoSimulator(
                memory=built.memory.duplicate(),
                cost_model=cost_model,
                functional=True,
            )
            run_module(built.module, sim, args=built.main_args)
            simulated += 1
    sim_wall = time.perf_counter() - started

    surrogate_rate = scored / surrogate_wall if surrogate_wall else 0.0
    sim_rate = simulated / sim_wall if sim_wall else 0.0
    return {
        "wall_s": round(surrogate_wall, 4),
        "programs_per_s": round(surrogate_rate, 3),
        "cache_hit_rate": 0.0,  # pure analysis: the trace cache never engages
        "candidates": len(builds),
        "simulated_per_s": round(sim_rate, 3),
        "surrogate_speedup": round(surrogate_rate / sim_rate, 2)
        if sim_rate
        else 0.0,
    }


#: Concurrent serve clients (and the per-request tenant fan-out width).
SERVE_CLIENTS = 8

#: ``--check`` floor for the serve workload's duplicate-heavy speedup.
SERVE_MIN_SPEEDUP = 2.0


def bench_serve(quick: bool = False) -> dict:
    """Duplicate-heavy concurrent serving vs one-at-a-time handling.

    Builds a request stream that cycles a few distinct pinned modules
    through mixed ``compile``/``cost`` requests from several tenants — the
    shape a fleet of similar clients produces, where most requests are
    duplicates of one another.  The serial baseline hands the exact same
    stream, one request at a time, to a service with the request-level
    dedup tiers off (``dedup=False``: no in-flight coalescing, no outcome
    or module cache; the engine trace cache stays, as it predates the
    server).  The concurrent side drives a real TCP server with
    :data:`SERVE_CLIENTS` client connections against the full service.
    Both sides get private trace caches so neither inherits the other's
    warm state.  Under the GIL, threads add no compute parallelism —
    ``speedup_vs_serial`` is purely the dedup tiers earning their keep.
    """
    import queue
    import threading

    from .engine import TraceCache
    from .serve import CompileService, ReproClient, ReproServer, encode
    from .testing.generator import build_spec

    specs = _pinned_programs()[: 2 if quick else 4]
    texts = []
    for spec in specs:
        built = build_spec(spec, memory_seed=PINNED_SEED)
        texts.append(str(built.module))

    requests = []
    total = 24 if quick else 96
    for index in range(total):
        op = "cost" if index % 4 == 3 else "compile"
        request = {
            "id": index,
            "op": op,
            "module": texts[index % len(texts)],
            "tenant": f"tenant{index % SERVE_CLIENTS}",
        }
        if op == "compile":
            request["pipeline"] = "full"
        requests.append(request)

    # Untimed warm-up: first-touch import and kernel-memo costs land on a
    # throwaway service so neither measured side pays them.
    warmup = CompileService(cache=TraceCache())
    for text in texts:
        warmup.handle({"op": "compile", "module": text, "pipeline": "full"})

    serial = CompileService(cache=TraceCache(), dedup=False)
    serial_errors = 0
    serial_started = time.perf_counter()
    for request in requests:
        response = json.loads(serial.handle_line(encode(request)))
        if not response.get("ok"):
            serial_errors += 1
    serial_wall = time.perf_counter() - serial_started

    # The measured concurrent service runs with the whole resilience layer
    # armed (deadline accounting, circuit breaker) exactly as production
    # would, so the throughput gate prices the fault-free overhead of the
    # chaos-hardening machinery — a regression here means the resilience
    # layer got onto the hot path.
    service = CompileService(cache=TraceCache(), default_deadline_ms=30_000)
    pending: queue.SimpleQueue = queue.SimpleQueue()
    for request in requests:
        pending.put(request)
    errors = []

    def client_worker(host: str, port: int) -> None:
        with ReproClient(host, port) as client:
            while True:
                try:
                    request = pending.get_nowait()
                except queue.Empty:
                    return
                response = client.request(**request)
                if not response.get("ok"):
                    errors.append(response)

    with ReproServer(service=service) as server:
        host, port = server.address
        started = time.perf_counter()
        threads = [
            threading.Thread(target=client_worker, args=(host, port))
            for _ in range(SERVE_CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started
        stats = service.stats()

    serial_rate = total / serial_wall if serial_wall else 0.0
    concurrent_rate = total / wall if wall else 0.0
    return {
        "wall_s": round(wall, 4),
        "programs_per_s": round(concurrent_rate, 3),
        "cache_hit_rate": round(service.cache.hit_rate, 4),
        "requests": total,
        "distinct_modules": len(texts),
        "clients": SERVE_CLIENTS,
        "errors": len(errors) + serial_errors,
        "dedup_hit_rate": round(stats["dedup_hit_rate"], 4),
        "coalesced": stats["coalesced"],
        "outcome_hits": stats["outcome_hits"],
        "serial_wall_s": round(serial_wall, 4),
        "serial_requests_per_s": round(serial_rate, 3),
        "speedup_vs_serial": round(concurrent_rate / serial_rate, 2)
        if serial_rate
        else 0.0,
    }


WORKLOADS = {
    "compile": bench_compile,
    "static_cost": bench_static_cost,
    "autotune": bench_autotune,
    "pattern_driver": bench_pattern_driver,
    "simulate_cold": bench_simulate_cold,
    "simulate_warm": bench_simulate_warm,
    "simulate_batch": bench_simulate_batch,
    "simulate_functional": bench_simulate_functional,
    "persistent_cache": bench_persistent_cache,
    "serve": bench_serve,
    "fuzz_iteration": bench_fuzz,
    "fuzz_200_acceptance": bench_fuzz_acceptance,
}


def run_bench(quick: bool = False) -> dict:
    """Run every workload; returns the full BENCH_engine.json document."""
    from .ir.rewriter import active_driver

    meta = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "quick": quick,
        "calibration_ops_per_s": round(calibrate(), 1),
        "rewrite_driver": active_driver(),
    }
    workloads = {}
    for name, runner in WORKLOADS.items():
        workloads[name] = runner(quick=quick)
    cold = workloads.get("simulate_cold", {}).get("programs_per_s") or 0.0
    batch = workloads.get("simulate_batch")
    if batch and cold:
        batch["batch_speedup_vs_cold"] = round(
            batch["programs_per_s"] / cold, 2
        )
    return {
        "schema": SCHEMA,
        "meta": meta,
        "workloads": workloads,
        "pass_breakdown": bench_pass_breakdown(quick=quick),
    }


def check_regression(current: dict, committed: dict) -> list[str]:
    """CI gate: compare fuzz-iteration throughput against the committed
    baseline, rescaled by the machine-speed calibration.  Returns a list of
    human-readable problems (empty means the gate passes)."""
    problems: list[str] = []
    ref = committed.get("workloads", {}).get("fuzz_iteration")
    if not ref:
        return ["committed baseline has no fuzz_iteration workload"]
    measured = current["workloads"]["fuzz_iteration"]["programs_per_s"]
    ref_cal = committed.get("meta", {}).get("calibration_ops_per_s") or 0.0
    cur_cal = current.get("meta", {}).get("calibration_ops_per_s") or 0.0
    scale = (cur_cal / ref_cal) if ref_cal and cur_cal else 1.0
    floor = ref["programs_per_s"] * scale * (1.0 - REGRESSION_TOLERANCE)
    if measured < floor:
        problems.append(
            f"fuzz_iteration throughput regressed: {measured:.2f} programs/s "
            f"< floor {floor:.2f} (committed {ref['programs_per_s']:.2f} "
            f"x machine scale {scale:.2f} x {1 - REGRESSION_TOLERANCE:.2f})"
        )
    autotune = current.get("workloads", {}).get("autotune")
    if autotune is not None:
        # Absolute floor, like the serve gate: both sides of the ratio ran
        # on this machine in this process.
        speedup = autotune.get("surrogate_speedup") or 0.0
        if speedup < AUTOTUNE_MIN_SPEEDUP:
            problems.append(
                f"autotune surrogate speedup {speedup:.1f}x below the "
                f"required {AUTOTUNE_MIN_SPEEDUP:.0f}x (symbolic scoring vs "
                "simulated scoring of the same candidates)"
            )
    serve = current.get("workloads", {}).get("serve")
    if serve is not None:
        # Absolute floor: both sides of the ratio ran on this machine, so
        # no calibration scaling applies.
        speedup = serve.get("speedup_vs_serial") or 0.0
        if speedup < SERVE_MIN_SPEEDUP:
            problems.append(
                f"serve dedup speedup {speedup:.2f}x below the required "
                f"{SERVE_MIN_SPEEDUP:.1f}x (duplicate-heavy concurrent "
                "workload vs serial handling)"
            )
        if serve.get("errors"):
            problems.append(
                f"serve workload saw {serve['errors']} failed request(s)"
            )
    return problems


def _merge_with_existing(doc: dict, out_path: str, freeze_baseline: bool) -> dict:
    """Preserve a previously frozen ``seed_baseline`` section (or freeze the
    current numbers as one when asked and none exists yet)."""
    existing: dict = {}
    try:
        with open(out_path) as handle:
            existing = json.load(handle)
    except (OSError, ValueError):
        pass
    if "seed_baseline" in existing:
        doc["seed_baseline"] = existing["seed_baseline"]
    elif freeze_baseline:
        doc["seed_baseline"] = {
            "meta": doc["meta"],
            "workloads": doc["workloads"],
        }
    return doc


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="benchmark compile/simulate/fuzz throughput",
    )
    parser.add_argument(
        "--quick", action="store_true", help="fewer reps (CI smoke mode)"
    )
    parser.add_argument(
        "--out", default="BENCH_engine.json", help="where to write results"
    )
    parser.add_argument(
        "--check",
        metavar="FILE",
        help="also compare against a committed BENCH_engine.json; exit 1 on "
        f">{REGRESSION_TOLERANCE:.0%} fuzz-iteration throughput regression",
    )
    parser.add_argument(
        "--freeze-baseline",
        action="store_true",
        help="record these numbers as the immutable seed_baseline section "
        "(no-op if one is already present in --out)",
    )
    args = parser.parse_args(argv)

    doc = run_bench(quick=args.quick)
    doc = _merge_with_existing(doc, args.out, args.freeze_baseline)
    atomic_write_json(args.out, doc)

    for name, result in doc["workloads"].items():
        line = (
            f"{name:20s} wall {result['wall_s']:8.3f}s   "
            f"{result['programs_per_s']:8.2f} programs/s   "
            f"cache hit rate {result['cache_hit_rate']:.0%}"
        )
        if "worklist_speedup" in result:
            line += f"   worklist speedup {result['worklist_speedup']:.2f}x"
        if "batch_speedup_vs_cold" in result:
            line += f"   vs cold {result['batch_speedup_vs_cold']:.2f}x"
        if "persistent_hit_rate" in result:
            line += f"   persistent hit rate {result['persistent_hit_rate']:.0%}"
        if "speedup_vs_serial" in result:
            line += f"   vs serial {result['speedup_vs_serial']:.2f}x"
        if "surrogate_speedup" in result:
            line += f"   vs simulated {result['surrogate_speedup']:.1f}x"
        print(line)
    breakdown = doc.get("pass_breakdown") or {}
    if breakdown:
        print("pass breakdown (full pipeline):")
        for name, entry in sorted(
            breakdown.items(), key=lambda item: -item[1]["seconds"]
        ):
            print(
                f"  {name:24s} {entry['seconds'] * 1e3:8.1f}ms over "
                f"{entry['runs']} run(s)   ops delta {entry['ops_delta']:+d}"
            )
    print(f"wrote {args.out}")

    if args.check:
        try:
            with open(args.check) as handle:
                committed = json.load(handle)
        except (OSError, ValueError) as error:
            print(f"error: cannot read baseline {args.check}: {error}",
                  file=sys.stderr)
            return 2
        problems = check_regression(doc, committed)
        for problem in problems:
            print(f"REGRESSION: {problem}", file=sys.stderr)
        if problems:
            return 1
        print("regression check: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
