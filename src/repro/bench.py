"""Performance benchmark harness behind ``python -m repro bench``.

Times the three throughput-bound paths of the reproduction on *pinned*
workloads (fixed generator seeds, fixed rep counts, so numbers are
comparable run to run):

* ``compile``   — build + full pass pipeline over one pinned program per
  backend (the per-pipeline cost every fuzz iteration and sweep point pays);
* ``pattern_driver`` — the greedy rewrite driver alone (worklist vs the
  legacy sweep driver on identical pinned modules; reports the speedup);
* ``simulate``  — repeated execution of one pinned program per backend
  against fresh memory images (the differential-oracle hot loop);
* ``static_cost`` — the static configuration-cost engine analyzing the
  same pinned programs (prediction throughput vs ``simulate``'s
  measurement throughput);
* ``fuzz_iteration`` — end-to-end ``repro.testing.fuzz`` iterations across
  all backends and all registered pipelines.

Results are written to ``BENCH_engine.json``::

    {
      "schema": "bench-engine/1",
      "meta": {... python/host info, calibration_ops_per_s, rewrite_driver ...},
      "workloads": {name: {"wall_s", "programs_per_s", "cache_hit_rate"}},
      "pass_breakdown": {pass_name: {"seconds", "runs", "ops_delta"}},
      "seed_baseline": {...}   # frozen pre-engine numbers, never overwritten
    }

``pass_breakdown`` aggregates ``PassManager(instrument=True)`` statistics
over the ``full`` pipeline: per pass slot, total seconds, run count, and net
op-count delta — the compile-side bottleneck map.

``cache_hit_rate`` reports the compiled-trace cache of :mod:`repro.engine`
(0.0 when the engine is absent or cold).  ``--check FILE`` implements the CI
regression gate: the current ``fuzz_iteration`` throughput must stay within
25% of the committed number after scaling both by the machine-speed
calibration, so the gate compares machines on equal footing.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

from .ioutil import atomic_write_json

#: Tolerated fractional throughput loss before ``--check`` fails (the CI
#: gate: "fails if fuzz-iteration throughput regresses >25%").
REGRESSION_TOLERANCE = 0.25

SCHEMA = "bench-engine/1"

#: Pinned per-workload generator seeds; changing these invalidates every
#: recorded baseline, so don't.
PINNED_SEED = 20260806


def calibrate(loops: int = 300_000) -> float:
    """Machine-speed probe: pure-Python integer ops per second.

    Used to rescale committed throughput numbers when the checking machine
    is faster/slower than the recording machine.
    """
    started = time.perf_counter()
    acc = 0
    for i in range(loops):
        acc = (acc + i * 3) & 0xFFFFFFFF
    wall = time.perf_counter() - started
    return loops / wall if wall > 0 else float("inf")


def _trace_cache_stats() -> tuple[int, int]:
    """(hits, misses) of the engine's compiled-trace cache, if present."""
    try:
        from .engine import TRACE_CACHE
    except ImportError:
        return (0, 0)
    return (TRACE_CACHE.hits, TRACE_CACHE.misses)


def _hit_rate(before: tuple[int, int], after: tuple[int, int]) -> float:
    hits = after[0] - before[0]
    misses = after[1] - before[1]
    total = hits + misses
    return hits / total if total else 0.0


def _pinned_programs() -> list:
    """One pinned mid-size program spec per backend profile."""
    import random
    import zlib

    from .testing.generator import PROFILES, generate_spec

    specs = []
    for backend in sorted(PROFILES):
        rng = random.Random(PINNED_SEED + zlib.crc32(backend.encode()) % 1000)
        specs.append(generate_spec(rng, backend, max_stmts=6))
    return specs


def bench_compile(quick: bool = False) -> dict:
    """Build + optimize (``full`` pipeline) pinned programs, repeatedly."""
    from .passes import PIPELINES
    from .testing.generator import build_spec

    specs = _pinned_programs()
    reps = 4 if quick else 40
    cache_before = _trace_cache_stats()
    started = time.perf_counter()
    programs = 0
    for _ in range(reps):
        for spec in specs:
            built = build_spec(spec, memory_seed=PINNED_SEED)
            PIPELINES["full"]().run(built.module)
            programs += 1
    wall = time.perf_counter() - started
    return {
        "wall_s": round(wall, 4),
        "programs_per_s": round(programs / wall, 3) if wall else 0.0,
        "cache_hit_rate": round(_hit_rate(cache_before, _trace_cache_stats()), 4),
    }


def bench_simulate(quick: bool = False) -> dict:
    """Execute pinned (unoptimized) programs against fresh memory images."""
    from .sim import CoSimulator
    from .testing.generator import build_spec

    specs = _pinned_programs()
    reps = 8 if quick else 100
    builds = [build_spec(spec, memory_seed=PINNED_SEED) for spec in specs]
    try:
        from .engine import run_module_traced as execute
    except ImportError:
        from .interp import run_module as execute
    cache_before = _trace_cache_stats()
    started = time.perf_counter()
    programs = 0
    for _ in range(reps):
        for spec in specs:
            built = build_spec(spec, memory_seed=PINNED_SEED)
            sim = CoSimulator(memory=built.memory)
            execute(built.module, sim, args=built.args)
            programs += 1
    wall = time.perf_counter() - started
    del builds
    return {
        "wall_s": round(wall, 4),
        "programs_per_s": round(programs / wall, 3) if wall else 0.0,
        "cache_hit_rate": round(_hit_rate(cache_before, _trace_cache_stats()), 4),
    }


def bench_pattern_driver(quick: bool = False) -> dict:
    """Worklist vs legacy sweep pattern driver on pinned modules.

    Isolates the rewrite-driver cost (canonicalization pattern set, the one
    every pipeline pays): each program is rebuilt per run and only the
    ``drive_patterns`` call is timed, so the ratio is a pure driver
    comparison.  The headline ``programs_per_s`` reports the shipped
    (worklist) driver; the sweep driver's numbers and the resulting speedup
    ride along.
    """
    from .ir.rewriter import drive_patterns
    from .passes.canonicalize import DEFAULT_PATTERNS
    from .testing.generator import build_spec

    specs = _pinned_programs()

    def timed(driver: str, reps: int) -> tuple[float, int]:
        total = 0.0
        programs = 0
        for _ in range(reps):
            for spec in specs:
                built = build_spec(spec, memory_seed=PINNED_SEED)
                started = time.perf_counter()
                drive_patterns(built.module, DEFAULT_PATTERNS, driver=driver)
                total += time.perf_counter() - started
                programs += 1
        return total, programs

    wall, programs = timed("worklist", 8 if quick else 80)
    sweep_wall, sweep_programs = timed("sweep", 2 if quick else 20)
    worklist_rate = programs / wall if wall else 0.0
    sweep_rate = sweep_programs / sweep_wall if sweep_wall else 0.0
    return {
        "wall_s": round(wall, 4),
        "programs_per_s": round(worklist_rate, 3),
        "cache_hit_rate": 0.0,  # no execution: the trace cache never engages
        "sweep_wall_s": round(sweep_wall, 4),
        "sweep_programs_per_s": round(sweep_rate, 3),
        "worklist_speedup": round(worklist_rate / sweep_rate, 3)
        if sweep_rate
        else 0.0,
    }


def bench_pass_breakdown(quick: bool = False) -> dict:
    """Aggregated per-pass wall time of the ``full`` pipeline.

    Feeds the ``pass_breakdown`` section of BENCH_engine.json from
    ``PassManager(instrument=True)`` statistics: for each pass slot the
    total seconds across all runs, the run count, and the net op-count
    delta — the compile-side answer to "which pass is the bottleneck".
    """
    from .passes import PIPELINES
    from .testing.generator import build_spec

    specs = _pinned_programs()
    reps = 2 if quick else 10
    totals: dict[str, dict] = {}
    for _ in range(reps):
        for spec in specs:
            built = build_spec(spec, memory_seed=PINNED_SEED)
            manager = PIPELINES["full"]()
            manager.instrument = True
            manager.run(built.module)
            for stat in manager.statistics:
                entry = totals.setdefault(
                    stat.pass_name, {"seconds": 0.0, "runs": 0, "ops_delta": 0}
                )
                entry["seconds"] += stat.seconds
                entry["runs"] += 1
                entry["ops_delta"] += stat.ops_delta
    return {
        name: {
            "seconds": round(entry["seconds"], 4),
            "runs": entry["runs"],
            "ops_delta": entry["ops_delta"],
        }
        for name, entry in sorted(totals.items())
    }


def bench_fuzz(quick: bool = False) -> dict:
    """End-to-end fuzz iterations (all backends, all pipelines, no corpus)."""
    from .testing import fuzz

    # Quick mode still needs enough iterations to amortize per-run setup,
    # or the --check gate would compare a cold quick number against the
    # committed steady-state one.
    iterations = 8 if quick else 25
    cache_before = _trace_cache_stats()
    started = time.perf_counter()
    report = fuzz(
        seed=0,
        iterations=iterations,
        corpus_dir=None,
        shrink=False,
    )
    wall = time.perf_counter() - started
    return {
        "wall_s": round(wall, 4),
        "programs_per_s": round(report.programs_run / wall, 3) if wall else 0.0,
        "cache_hit_rate": round(_hit_rate(cache_before, _trace_cache_stats()), 4),
    }


def bench_fuzz_acceptance(quick: bool = False) -> dict:
    """The acceptance workload: 200 fuzz iterations, all backends, shrink
    and corpus on defaults — the exact shape of
    ``python -m repro fuzz --seed 0 --iterations 200`` (minus corpus I/O).
    Quick mode scales the count down and notes it in the result."""
    from .testing import fuzz

    iterations = 20 if quick else 200
    cache_before = _trace_cache_stats()
    started = time.perf_counter()
    report = fuzz(seed=0, iterations=iterations, corpus_dir=None)
    wall = time.perf_counter() - started
    return {
        "wall_s": round(wall, 4),
        "programs_per_s": round(report.programs_run / wall, 3) if wall else 0.0,
        "cache_hit_rate": round(_hit_rate(cache_before, _trace_cache_stats()), 4),
        "iterations": iterations,
    }


def bench_static_cost(quick: bool = False) -> dict:
    """The static cost engine: programs analyzed per second.

    Each rep runs a fresh :class:`~repro.analysis.cost.CostAnalysis` over
    the pinned programs (summaries for every function, rendered through the
    same report the CLI prints; no caching between reps).  Read it against the
    ``simulate`` workload, which executes the same pinned programs: the
    ratio is the price of a prediction vs a measurement.
    """
    from .analysis.cost import CostAnalysis, format_cost_table
    from .testing.generator import build_spec

    specs = _pinned_programs()
    reps = 8 if quick else 100
    builds = [build_spec(spec, memory_seed=PINNED_SEED) for spec in specs]
    started = time.perf_counter()
    programs = 0
    for _ in range(reps):
        for built in builds:
            format_cost_table(CostAnalysis(built.module))
            programs += 1
    wall = time.perf_counter() - started
    return {
        "wall_s": round(wall, 4),
        "programs_per_s": round(programs / wall, 3) if wall else 0.0,
        "cache_hit_rate": 0.0,  # pure analysis: the trace cache never engages
    }


WORKLOADS = {
    "compile": bench_compile,
    "static_cost": bench_static_cost,
    "pattern_driver": bench_pattern_driver,
    "simulate": bench_simulate,
    "fuzz_iteration": bench_fuzz,
    "fuzz_200_acceptance": bench_fuzz_acceptance,
}


def run_bench(quick: bool = False) -> dict:
    """Run every workload; returns the full BENCH_engine.json document."""
    from .ir.rewriter import active_driver

    meta = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "quick": quick,
        "calibration_ops_per_s": round(calibrate(), 1),
        "rewrite_driver": active_driver(),
    }
    workloads = {}
    for name, runner in WORKLOADS.items():
        workloads[name] = runner(quick=quick)
    return {
        "schema": SCHEMA,
        "meta": meta,
        "workloads": workloads,
        "pass_breakdown": bench_pass_breakdown(quick=quick),
    }


def check_regression(current: dict, committed: dict) -> list[str]:
    """CI gate: compare fuzz-iteration throughput against the committed
    baseline, rescaled by the machine-speed calibration.  Returns a list of
    human-readable problems (empty means the gate passes)."""
    problems: list[str] = []
    ref = committed.get("workloads", {}).get("fuzz_iteration")
    if not ref:
        return ["committed baseline has no fuzz_iteration workload"]
    measured = current["workloads"]["fuzz_iteration"]["programs_per_s"]
    ref_cal = committed.get("meta", {}).get("calibration_ops_per_s") or 0.0
    cur_cal = current.get("meta", {}).get("calibration_ops_per_s") or 0.0
    scale = (cur_cal / ref_cal) if ref_cal and cur_cal else 1.0
    floor = ref["programs_per_s"] * scale * (1.0 - REGRESSION_TOLERANCE)
    if measured < floor:
        problems.append(
            f"fuzz_iteration throughput regressed: {measured:.2f} programs/s "
            f"< floor {floor:.2f} (committed {ref['programs_per_s']:.2f} "
            f"x machine scale {scale:.2f} x {1 - REGRESSION_TOLERANCE:.2f})"
        )
    return problems


def _merge_with_existing(doc: dict, out_path: str, freeze_baseline: bool) -> dict:
    """Preserve a previously frozen ``seed_baseline`` section (or freeze the
    current numbers as one when asked and none exists yet)."""
    existing: dict = {}
    try:
        with open(out_path) as handle:
            existing = json.load(handle)
    except (OSError, ValueError):
        pass
    if "seed_baseline" in existing:
        doc["seed_baseline"] = existing["seed_baseline"]
    elif freeze_baseline:
        doc["seed_baseline"] = {
            "meta": doc["meta"],
            "workloads": doc["workloads"],
        }
    return doc


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="benchmark compile/simulate/fuzz throughput",
    )
    parser.add_argument(
        "--quick", action="store_true", help="fewer reps (CI smoke mode)"
    )
    parser.add_argument(
        "--out", default="BENCH_engine.json", help="where to write results"
    )
    parser.add_argument(
        "--check",
        metavar="FILE",
        help="also compare against a committed BENCH_engine.json; exit 1 on "
        f">{REGRESSION_TOLERANCE:.0%} fuzz-iteration throughput regression",
    )
    parser.add_argument(
        "--freeze-baseline",
        action="store_true",
        help="record these numbers as the immutable seed_baseline section "
        "(no-op if one is already present in --out)",
    )
    args = parser.parse_args(argv)

    doc = run_bench(quick=args.quick)
    doc = _merge_with_existing(doc, args.out, args.freeze_baseline)
    atomic_write_json(args.out, doc)

    for name, result in doc["workloads"].items():
        line = (
            f"{name:20s} wall {result['wall_s']:8.3f}s   "
            f"{result['programs_per_s']:8.2f} programs/s   "
            f"cache hit rate {result['cache_hit_rate']:.0%}"
        )
        if "worklist_speedup" in result:
            line += f"   worklist speedup {result['worklist_speedup']:.2f}x"
        print(line)
    breakdown = doc.get("pass_breakdown") or {}
    if breakdown:
        print("pass breakdown (full pipeline):")
        for name, entry in sorted(
            breakdown.items(), key=lambda item: -item[1]["seconds"]
        ):
            print(
                f"  {name:24s} {entry['seconds'] * 1e3:8.1f}ms over "
                f"{entry['runs']} run(s)   ops delta {entry['ops_delta']:+d}"
            )
    print(f"wrote {args.out}")

    if args.check:
        try:
            with open(args.check) as handle:
                committed = json.load(handle)
        except (OSError, ValueError) as error:
            print(f"error: cannot read baseline {args.check}: {error}",
                  file=sys.stderr)
            return 2
        problems = check_regression(doc, committed)
        for problem in problems:
            print(f"REGRESSION: {problem}", file=sys.stderr)
        if problems:
            return 1
        print("regression check: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
