"""The seeded fault-injection correctness campaign (``python -m repro faults``).

For each (iteration, backend, pipeline) the campaign builds one random
program (the same generator the fuzzer uses), optimizes it, and runs it four
ways against the *same* deterministic fault schedule:

1. **fault-free** — the reference: results, final memory image, launch
   counts;
2. **recovery, tree engine** — faults injected, recovery enabled; must match
   the reference memory image, results, and launch semantics exactly;
3. **recovery, trace engine** — same fault seed under the compiled trace
   engine; must be bit-identical to the tree run (results, cycles,
   instruction trace, timeline, memory, *and* the fired-fault schedule);
4. **detect-only** — recovery disabled; any injected fault either raises a
   loc-tagged ``InterpreterError`` or leaves the run bit-equal to the
   reference (a dropped write that re-wrote the value already present is
   harmless) — faulted execution never silently corrupts memory.

The fault schedule is a pure function of the fault seed (see
:mod:`repro.faults.model`), so re-running a campaign with the same seed
reproduces the same schedule byte for byte.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..engine.compiler import TraceCompileError, compile_module
from ..engine.executor import TraceExecutor
from ..interp.interpreter import Interpreter, InterpreterError
from ..passes.pipeline import PIPELINES
from ..sim.cosim import CoSimulator
from ..testing.fuzz import program_seed
from ..testing.generator import PROFILES, build_memory, build_spec, generate_spec
from .model import FaultInjector, FaultRates
from .recovery import RecoveryPolicy, RecoveryStats, ReliancePlan

#: moderate default rates: every fault kind fires regularly over a campaign,
#: while bounded retry (8 attempts) makes unrecoverable pile-ups vanishingly
#: rare — a seeded campaign is expected to come back clean
DEFAULT_RATES = FaultRates(
    drop_write=0.05,
    corrupt_write=0.05,
    launch_reject=0.05,
    await_stall=0.05,
    state_loss=0.05,
)


@dataclass(frozen=True)
class CampaignFinding:
    """One violated guarantee."""

    backend: str
    iteration: int
    pipeline: str
    stage: str  # fault-free | recovery | trace-vs-tree | schedule | detect-only
    detail: str

    def render(self) -> str:
        return (
            f"[{self.stage}] {self.backend} iteration {self.iteration} "
            f"pipeline {self.pipeline}: {self.detail}"
        )


@dataclass
class CampaignReport:
    """Aggregate outcome of one fault campaign."""

    seed: int
    iterations: int
    backends: tuple[str, ...]
    pipelines: tuple[str, ...]
    runs: int = 0
    faults_injected: int = 0
    recovery_totals: RecoveryStats = field(default_factory=RecoveryStats)
    findings: list[CampaignFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        totals = self.recovery_totals
        lines = [
            f"fault campaign: seed {self.seed}, {self.iterations} iterations, "
            f"backends {', '.join(self.backends)}, "
            f"pipelines {', '.join(self.pipelines)}",
            f"  runs:             {self.runs}",
            f"  faults injected:  {self.faults_injected}",
            f"  write faults:     {totals.write_faults} "
            f"({totals.write_retries} retries)",
            f"  launch rejects:   {totals.launch_rejects}",
            f"  await stalls:     {totals.await_stalls} "
            f"({totals.watchdog_polls} watchdog polls)",
            f"  state losses:     {totals.state_losses} "
            f"({totals.resetup_fields} fields re-issued, "
            f"{totals.resetup_bytes} config bytes)",
            f"  degradations:     {totals.degradations}",
            f"  findings:         {len(self.findings)}",
        ]
        for finding in self.findings:
            lines.append(f"    {finding.render()}")
        return "\n".join(lines)


def _accumulate(totals: RecoveryStats, stats: RecoveryStats | None) -> None:
    if stats is None:
        return
    for name, value in stats.as_dict().items():
        setattr(totals, name, getattr(totals, name) + value)


def _memory_divergence(reference, candidate) -> str | None:
    for index, (a, b) in enumerate(zip(reference.buffers, candidate.buffers)):
        if a.array.shape != b.array.shape or not (a.array == b.array).all():
            return f"memory images diverge in buffer #{index}"
    return None


def _launch_counts(sim: CoSimulator) -> dict[str, int]:
    return {name: device.launch_count for name, device in sim.devices.items()}


def run_campaign(
    seed: int = 0,
    iterations: int = 100,
    backends: list[str] | None = None,
    pipelines: list[str] | None = None,
    rates: FaultRates | None = None,
    policy: RecoveryPolicy | None = None,
    max_findings: int = 10,
    on_progress=None,
) -> CampaignReport:
    """Run the campaign; returns the aggregate report."""
    backends = list(backends) if backends else sorted(PROFILES)
    pipeline_names = list(pipelines) if pipelines else sorted(PIPELINES)
    rates = rates if rates is not None else DEFAULT_RATES
    policy = policy if policy is not None else RecoveryPolicy()
    report = CampaignReport(
        seed, iterations, tuple(backends), tuple(pipeline_names)
    )
    for iteration in range(iterations):
        for backend in backends:
            pseed = program_seed(seed, backend, iteration)
            spec = generate_spec(random.Random(pseed), backend)
            for name in pipeline_names:
                finding = _check_one(
                    report, spec, backend, iteration, name, pseed, rates, policy
                )
                if finding is not None:
                    report.findings.append(finding)
                    if len(report.findings) >= max_findings:
                        return report
        if on_progress is not None:
            on_progress(iteration + 1, report)
    return report


def _check_one(
    report: CampaignReport,
    spec,
    backend: str,
    iteration: int,
    pipeline_name: str,
    pseed: int,
    rates: FaultRates,
    policy: RecoveryPolicy,
) -> CampaignFinding | None:
    def finding(stage: str, detail: str) -> CampaignFinding:
        return CampaignFinding(backend, iteration, pipeline_name, stage, detail)

    # -- build + optimize once; every run shares this module ---------------
    try:
        built = build_spec(spec, memory_seed=pseed)
        module, args = built.module, built.args
        PIPELINES[pipeline_name]().run(module)
    except Exception as error:  # noqa: BLE001 - any crash is a finding
        return finding("fault-free", f"build/optimize crashed: {error}")

    def fresh_memory():
        return build_memory(backend, pseed)[0]

    # -- 1. fault-free reference ------------------------------------------
    try:
        ref_memory = fresh_memory()
        ref_sim = CoSimulator(memory=ref_memory)
        ref_results = Interpreter(module, ref_sim).run("main", list(args))
    except Exception as error:  # noqa: BLE001
        return finding("fault-free", f"reference run crashed: {error}")
    ref_launches = _launch_counts(ref_sim)
    report.runs += 1

    plan = ReliancePlan(module)

    # -- 2. faulted + recovery under the tree interpreter -------------------
    tree_injector = FaultInjector(pseed, rates)
    try:
        tree_memory = fresh_memory()
        tree_sim = CoSimulator(
            memory=tree_memory,
            faults=tree_injector,
            recovery=policy,
            reliance=plan,
        )
        tree_results = Interpreter(module, tree_sim).run("main", list(args))
    except Exception as error:  # noqa: BLE001
        return finding(
            "recovery",
            f"recovery-enabled tree run raised {type(error).__name__}: {error}",
        )
    report.runs += 1
    report.faults_injected += len(tree_injector.log)
    _accumulate(report.recovery_totals, tree_sim.recovery_stats)
    if tree_results != ref_results:
        return finding(
            "recovery", f"results {tree_results} != fault-free {ref_results}"
        )
    if _launch_counts(tree_sim) != ref_launches:
        return finding(
            "recovery",
            f"launch counts {_launch_counts(tree_sim)} != "
            f"fault-free {ref_launches}",
        )
    divergence = _memory_divergence(ref_memory, tree_memory)
    if divergence is not None:
        return finding("recovery", f"vs fault-free run: {divergence}")

    # -- 3. same fault seed under the compiled trace engine ----------------
    trace_injector = FaultInjector(pseed, rates)
    try:
        # Compiled directly (not through the structural-key cache): baked-in
        # op sites must belong to *this* module so the ReliancePlan applies.
        compiled = compile_module(module)
    except TraceCompileError as error:
        return finding("trace-vs-tree", f"trace compile rejected: {error}")
    try:
        trace_memory = fresh_memory()
        trace_sim = CoSimulator(
            memory=trace_memory,
            faults=trace_injector,
            recovery=policy,
            reliance=plan,
        )
        trace_results = TraceExecutor(compiled, trace_sim).run(
            "main", list(args)
        )
    except Exception as error:  # noqa: BLE001
        return finding(
            "trace-vs-tree",
            f"recovery-enabled trace run raised {type(error).__name__}: "
            f"{error} where the tree run succeeded",
        )
    report.runs += 1
    problems: list[str] = []
    if trace_results != tree_results:
        problems.append(f"results {trace_results} != {tree_results}")
    if trace_sim.total_cycles != tree_sim.total_cycles:
        problems.append(
            f"total cycles {trace_sim.total_cycles:g} != "
            f"{tree_sim.total_cycles:g}"
        )
    if trace_sim.trace.instrs != tree_sim.trace.instrs:
        problems.append("instruction traces diverge")
    if trace_sim.timeline.spans != tree_sim.timeline.spans:
        problems.append("timelines diverge")
    if _launch_counts(trace_sim) != _launch_counts(tree_sim):
        problems.append("launch counts diverge")
    memory_problem = _memory_divergence(tree_memory, trace_memory)
    if memory_problem is not None:
        problems.append(memory_problem)
    if trace_sim.recovery_stats.as_dict() != tree_sim.recovery_stats.as_dict():
        problems.append(
            f"recovery stats {trace_sim.recovery_stats.as_dict()} != "
            f"{tree_sim.recovery_stats.as_dict()}"
        )
    if problems:
        return finding("trace-vs-tree", "; ".join(problems))
    if trace_injector.schedule() != tree_injector.schedule():
        return finding(
            "schedule",
            "fault schedules diverge between engines: "
            f"{trace_injector.schedule()} != {tree_injector.schedule()}",
        )

    # -- 4. detection without recovery never silently corrupts -------------
    detect_injector = FaultInjector(pseed, rates)
    detect_policy = RecoveryPolicy(
        enabled=False,
        max_retries=policy.max_retries,
        backoff_base=policy.backoff_base,
        backoff_factor=policy.backoff_factor,
        resetup=policy.resetup,
        degrade_after=policy.degrade_after,
    )
    try:
        detect_memory = fresh_memory()
        detect_sim = CoSimulator(
            memory=detect_memory,
            faults=detect_injector,
            recovery=detect_policy,
            reliance=plan,
        )
        detect_results = Interpreter(module, detect_sim).run("main", list(args))
    except InterpreterError:
        return None  # detected and raised: the guarantee holds
    except Exception as error:  # noqa: BLE001
        return finding(
            "detect-only",
            f"raised {type(error).__name__} instead of InterpreterError: "
            f"{error}",
        )
    report.runs += 1
    # No fault was *detected*; the run must then be equal to the reference.
    if detect_results != ref_results:
        return finding(
            "detect-only",
            f"silent corruption: results {detect_results} != {ref_results}",
        )
    divergence = _memory_divergence(ref_memory, detect_memory)
    if divergence is not None:
        return finding("detect-only", f"silent corruption: {divergence}")
    return None
