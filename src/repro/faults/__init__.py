"""Deterministic fault injection and the recovery runtime.

``repro.faults`` threads a seed-driven fault model through the co-simulation
so the configuration cost of *resilience* becomes measurable: dropped and
corrupted configuration-register writes, launch rejection, await stalls, and
spontaneous device state loss — the failure that breaks the register-retention
assumption the dedup pass (paper Section 5.4) is built on.

* :mod:`repro.faults.model` — :class:`FaultInjector`: per-site deterministic
  draws (schedule is a pure function of the fault seed) and a replayable
  fault-event log.
* :mod:`repro.faults.recovery` — :class:`RecoveryPolicy` knobs,
  :class:`RecoveryStats` accounting, and :class:`ReliancePlan`, the static
  minimal-re-setup planner built on ``KnownFieldsAnalysis`` /
  ``ObservedFieldsAnalysis``.
* :mod:`repro.faults.campaign` — the seeded correctness campaign behind
  ``python -m repro faults``.

See ``docs/ROBUSTNESS.md`` for the fault models and guarantees.
"""

from .model import DrawStreams, FaultEvent, FaultInjector, FaultKind, FaultRates
from .recovery import RecoveryPolicy, RecoveryStats, ReliancePlan

__all__ = [
    "DrawStreams",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultRates",
    "RecoveryPolicy",
    "RecoveryStats",
    "ReliancePlan",
]
