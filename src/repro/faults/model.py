"""Seed-driven fault model.

Every fault decision is a *deterministic* function of ``(seed, kind, index)``
where ``index`` is a per-kind interaction counter advanced in program order:
the n-th configuration write draws from its own private stream, so the fault
schedule is reproducible byte for byte from the seed alone, independent of
Python hash randomization, wall-clock time, or which execution engine (tree
interpreter or compiled trace) drives the simulator.  Both engines run the
same recovery protocol inside :class:`~repro.sim.cosim.CoSimulator`, so the
same seed produces the same :class:`FaultEvent` log under either.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum


class FaultKind(str, Enum):
    """The injectable failure modes of the host–accelerator config plane."""

    #: a configuration-register write is silently lost (MMIO write dropped)
    DROP_WRITE = "drop-write"
    #: a configuration-register write lands with a flipped bit
    CORRUPT_WRITE = "corrupt-write"
    #: the launch command is rejected by the interface (must be re-issued)
    LAUNCH_REJECT = "launch-reject"
    #: a completion poll keeps reading busy well past the expected finish
    AWAIT_STALL = "await-stall"
    #: the device power-gates/resets: every retained register is lost
    STATE_LOSS = "state-loss"


@dataclass(frozen=True)
class FaultRates:
    """Per-kind fault probabilities (per interaction, in ``[0, 1]``)."""

    drop_write: float = 0.0
    corrupt_write: float = 0.0
    launch_reject: float = 0.0
    await_stall: float = 0.0
    state_loss: float = 0.0

    @staticmethod
    def uniform(rate: float) -> "FaultRates":
        """The same rate for every fault kind."""
        return FaultRates(rate, rate, rate, rate, rate)

    def rate(self, kind: FaultKind) -> float:
        return getattr(self, kind.name.lower())

    def any(self) -> bool:
        return any(
            getattr(self, f.name.lower()) > 0.0 for f in FaultKind
        )


@dataclass(frozen=True)
class FaultEvent:
    """One fired fault, as recorded in the injector's schedule log."""

    kind: FaultKind
    index: int
    accelerator: str
    detail: str = ""

    def render(self) -> str:
        text = f"{self.kind.value}#{self.index} on {self.accelerator}"
        return f"{text} ({self.detail})" if self.detail else text


class DrawStreams:
    """Named private deterministic draw streams.

    Every draw is a pure function of ``(seed, stream, index)`` where
    ``index`` is a per-stream counter advanced in call order: the n-th draw
    of any one stream always sees the same rng no matter what other streams
    did in between.  This is the idiom both fault planes share — the
    hardware config plane (:class:`FaultInjector`) and the serving boundary
    (:class:`repro.serve.chaos.ServeFaultInjector`) — and what makes their
    fault schedules byte-reproducible from the seed alone.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._counters: dict[str, int] = {}

    def _next_index(self, stream: str) -> int:
        index = self._counters.get(stream, 0)
        self._counters[stream] = index + 1
        return index

    def _rng(self, stream: str, index: int) -> random.Random:
        # Seeding with a string is deterministic (hashed via sha512 by
        # random.seed version 2), unaffected by PYTHONHASHSEED.
        return random.Random(f"{self.seed}:{stream}:{index}")

    def draw(self, stream: str) -> tuple[int, random.Random]:
        """Advance one named stream; returns (interaction index, its rng)."""
        index = self._next_index(stream)
        return index, self._rng(stream, index)


class FaultInjector(DrawStreams):
    """Deterministic per-interaction fault draws plus the fired-fault log.

    One injector instance belongs to one simulation run.  Comparing two runs'
    ``schedule()`` (e.g. the tree-interpreted and trace-compiled executions
    of the same program) checks that they took byte-identical fault paths.
    """

    def __init__(
        self, seed: int, rates: FaultRates, max_stall_polls: int = 4
    ) -> None:
        super().__init__(seed)
        self.rates = rates
        #: upper bound on how many extra completion polls one await-stall
        #: fault costs; a watchdog whose retry budget is at least this large
        #: always recovers, a smaller budget times out
        self.max_stall_polls = max_stall_polls
        #: fired faults in program order — the reproducible fault schedule
        self.log: list[FaultEvent] = []

    # -- fault decisions ----------------------------------------------------

    def should(self, kind: FaultKind, accelerator: str, detail: str = "") -> bool:
        """Decide whether this interaction faults; logs fired faults."""
        index, rng = self.draw(kind.value)
        fired = rng.random() < self.rates.rate(kind)
        if fired:
            self.log.append(FaultEvent(kind, index, accelerator, detail))
        return fired

    def corrupt(self, value: int, bits: int) -> int:
        """Deterministically flip one bit of a written field value."""
        _, rng = self.draw("corrupt-bit")
        flipped = value ^ (1 << rng.randrange(max(1, bits)))
        return flipped if flipped != value else value + 1

    def stall_polls(self) -> int:
        """How many extra completion polls an await-stall fault costs.

        Drawn from ``1 .. max_stall_polls``; the watchdog recovers when its
        retry budget covers the draw and declares a timeout otherwise, so
        stall severity and watchdog patience are independent knobs.
        """
        _, rng = self.draw("stall-polls")
        return rng.randint(1, max(1, self.max_stall_polls))

    # -- the reproducible schedule ------------------------------------------

    def schedule(self) -> tuple[str, ...]:
        """The fired-fault schedule as a tuple of rendered lines."""
        return tuple(event.render() for event in self.log)

    def format_schedule(self) -> str:
        return "\n".join(self.schedule())
