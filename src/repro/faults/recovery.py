"""Recovery policy, accounting, and the static minimal-re-setup planner.

The recovery *mechanisms* live in :class:`~repro.sim.cosim.CoSimulator` (so
the tree interpreter and the compiled trace engine share one implementation
bit for bit); this module holds the pieces the mechanisms are parameterized
by:

* :class:`RecoveryPolicy` — the knobs: bounded retry with exponential
  backoff, the re-setup strategy after state loss, and when to degrade a
  concurrent-configuration device to sequential writes.
* :class:`RecoveryStats` — what resilience cost: verification reads, retries,
  re-issued configuration fields/bytes.
* :class:`ReliancePlan` — the static planner for *minimal* re-setup.  After a
  detected state loss at a setup site it answers "which retained registers
  does the program still rely on from here?", combining
  :class:`~repro.analysis.dataflow.RegisterLivenessAnalysis` (which register
  fields some later launch may read before any rewrite — the sound restore
  set, aware that every SSA state chain shares one physical register file)
  with :class:`~repro.analysis.dataflow.KnownFieldsAnalysis` (the dedup
  pass's own retention reasoning, classifying which of the restored fields
  were exactly the ones dedup assumed retained).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.dataflow import (
    FieldSet,
    KnownFieldsAnalysis,
    RegisterLivenessAnalysis,
)
from ..dialects import accfg, func
from ..ir.operation import Operation


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the runtime responds to detected faults.

    With ``enabled=False`` detection stays on (read-back verification and
    epoch checks still run whenever an injector is attached) but every
    detected fault raises :class:`~repro.sim.device.FaultError` instead of
    being repaired — faults are *never* silent.
    """

    enabled: bool = True
    #: bounded retry budget per faulting interaction
    max_retries: int = 8
    #: host cycles of the first backoff stall; doubles each retry
    backoff_base: float = 16.0
    backoff_factor: float = 2.0
    #: re-setup strategy after detected state loss: "minimal" restores only
    #: the fields the program still relies on (ReliancePlan), "full" replays
    #: the host's entire shadow register file
    resetup: str = "minimal"
    #: staged-path write faults on one device before it is degraded from
    #: concurrent to sequential configuration
    degrade_after: int = 2

    def backoff(self, attempt: int) -> float:
        """Stall cycles before retry ``attempt`` (0-based)."""
        return self.backoff_base * (self.backoff_factor**attempt)


@dataclass
class RecoveryStats:
    """What detection and recovery cost over one run."""

    verify_reads: int = 0
    write_faults: int = 0
    write_retries: int = 0
    launch_rejects: int = 0
    await_stalls: int = 0
    watchdog_polls: int = 0
    state_losses: int = 0
    resetup_fields: int = 0
    resetup_bytes: int = 0
    #: restored fields that KnownFieldsAnalysis proves dedup assumed retained
    resetup_known_fields: int = 0
    degradations: int = 0
    unrecovered: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            name: getattr(self, name)
            for name in (
                "verify_reads",
                "write_faults",
                "write_retries",
                "launch_rejects",
                "await_stalls",
                "watchdog_polls",
                "state_losses",
                "resetup_fields",
                "resetup_bytes",
                "resetup_known_fields",
                "degradations",
                "unrecovered",
            )
        }


class ReliancePlan:
    """Static per-site restore sets for minimal re-setup.

    For a setup site ``S`` on accelerator ``A`` the sound minimal restore
    set after state loss is::

        shadow(A)  ∩  live_in(S)

    where ``live_in`` is :class:`RegisterLivenessAnalysis` — a may-analysis
    over the shared register file (not one SSA chain: a fresh state chain's
    partial setup still relies on registers an earlier chain wrote).  A
    field ``live_in`` excludes is rewritten on *every* path before any
    launch can read it, so skipping its restore cannot change a launch's
    committed configuration; ``S``'s own fields are excluded because ``S``
    writes them immediately anyway.  The plan also reports which restored
    fields ``KnownFieldsAnalysis`` (the analysis the dedup pass is built on)
    knows statically at the site — exactly the fields whose retention dedup
    assumed when it deleted their re-writes.
    """

    def __init__(self, module: Operation) -> None:
        self.module = module
        self._liveness: dict[str, RegisterLivenessAnalysis] = {}
        self._known: dict[str, KnownFieldsAnalysis] = {}
        self._known_cache: dict[Operation, frozenset[str]] = {}

    def _live_in(self, accelerator: str) -> dict[Operation, FieldSet]:
        analysis = self._liveness.get(accelerator)
        if analysis is None:
            analysis = RegisterLivenessAnalysis(accelerator)
            for op in self.module.walk():
                if isinstance(op, func.FuncOp) and not op.is_declaration:
                    analysis.run_function(op)
            self._liveness[accelerator] = analysis
        return analysis.live_in

    def restore_set(self, site: Operation) -> FieldSet:
        """Fields (as a possibly co-finite set) to restore at ``site``."""
        if isinstance(site, (accfg.SetupOp, accfg.LaunchOp)):
            live = self._live_in(site.accelerator).get(site)
            if live is not None:
                return live
        # Unknown site: restore conservatively (everything shadowed).
        return FieldSet.top()

    def known_retained(self, site: Operation) -> frozenset[str]:
        """Field names KnownFieldsAnalysis pins down entering ``site``."""
        cached = self._known_cache.get(site)
        if cached is not None:
            return cached
        names: frozenset[str] = frozenset()
        if isinstance(site, (accfg.SetupOp, accfg.LaunchOp)):
            accelerator = site.accelerator
            analysis = self._known.get(accelerator)
            if analysis is None:
                analysis = self._known[accelerator] = KnownFieldsAnalysis(
                    accelerator
                )
            in_state = (
                site.in_state
                if isinstance(site, accfg.SetupOp)
                else site.state
            )
            known = analysis.known(in_state)
            if not known.is_top:
                names = frozenset(known.fields)
        self._known_cache[site] = names
        return names
