"""Accelerator targets: the shared spec abstraction plus the Gemmini,
OpenGeMM, and toy vector-engine descriptions."""

from .base import (
    AcceleratorSpec,
    get_accelerator,
    get_accelerator_or_none,
    register_accelerator,
    registered_accelerators,
)
from .gemmini import GEMMINI, LOOP_WS_FIELDS, GemminiSpec
from .lowering import (
    ConfigCostReport,
    LoweredOp,
    lower_accfg_op,
    static_config_report,
)
from .opengemm import CSR_FIELDS, OPENGEMM, OpenGeMMSpec
from .toyvec import TOYVEC, TOYVEC_QUEUED, TOYVEC_SEQ, ToyVecSpec

__all__ = [
    "AcceleratorSpec",
    "get_accelerator",
    "get_accelerator_or_none",
    "register_accelerator",
    "registered_accelerators",
    "GEMMINI",
    "LOOP_WS_FIELDS",
    "GemminiSpec",
    "CSR_FIELDS",
    "OPENGEMM",
    "OpenGeMMSpec",
    "TOYVEC",
    "TOYVEC_QUEUED",
    "TOYVEC_SEQ",
    "ToyVecSpec",
    "ConfigCostReport",
    "LoweredOp",
    "lower_accfg_op",
    "static_config_report",
]
