"""The Gemmini target (paper, Sections 2.4 and 6.1).

Gemmini [19] couples a 16x16 weight-stationary systolic array to a 64-bit
Rocket host.  Configuration travels over custom RoCC instructions that carry
16 bytes each (rs1 + rs2); because RISC-V is a load/store architecture, each
RoCC write needs two extra instructions to stage its register operands, so
one 16-byte configuration write costs three host instructions — the paper's
``BW_config = 16 / (3 * 3) ≈ 1.77`` bytes/cycle with the 3-cycles/instruction
Rocket estimate.

Gemmini is *sequentially configured*: the accelerator cannot be reconfigured
while it is computing, so the configuration-overlap optimization does not
apply (only deduplication and generic cleanups help, Section 6.1).

The coarse-grained ``gemmini_loop_ws`` macro-instruction sequence performs a
weight-stationary tiled matrix multiplication ``C = A @ B + D``; its
configuration fields and bit widths follow Table 1 of the paper.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from ..isa.encoding import FieldSpec, pack_fields
from ..isa.instructions import Instr, InstrCategory, config_write
from .base import AcceleratorSpec, register_accelerator

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.memory import Memory

#: Table 1 — fields of the gemmini_loop_ws sequence.
LOOP_WS_FIELDS: tuple[FieldSpec, ...] = (
    FieldSpec("A", 64, "Address in main memory of matrix A"),
    FieldSpec("B", 64, "Address in main memory of matrix B"),
    FieldSpec("D", 64, "Address in main memory of matrix D"),
    FieldSpec("C", 64, "Address in main memory of matrix C"),
    FieldSpec("I", 16, "Size of the matrices (row tiles)"),
    FieldSpec("J", 16, "Size of the matrices (column tiles)"),
    FieldSpec("K", 16, "Size of the matrices (inner tiles)"),
    FieldSpec("pad_I", 16, "Padding applied to size I"),
    FieldSpec("pad_J", 16, "Padding applied to size J"),
    FieldSpec("pad_K", 16, "Padding applied to size K"),
    FieldSpec("stride_A", 64, "Row stride to access matrix A in memory"),
    FieldSpec("stride_B", 64, "Row stride to access matrix B in memory"),
    FieldSpec("stride_D", 64, "Row stride to access matrix D in memory"),
    FieldSpec("stride_C", 64, "Row stride to access matrix C in memory"),
    FieldSpec("act", 6, "Activation function application on output"),
    FieldSpec("A_transpose", 1, "Whether input matrix A is transposed"),
    FieldSpec("B_transpose", 1, "Whether input matrix B is transposed"),
)

#: Extra interface fields used by the data-movement macro-ops (mvin/mvout)
#: and the macro-op selector.  These are not part of Table 1 (which lists
#: only the loop_ws compute fields) but are part of Gemmini's RoCC interface.
EXTRA_FIELDS: tuple[FieldSpec, ...] = (
    FieldSpec("op", 8, "Macro-operation selector: 0=loop_ws, 1=mvin, 2=mvout"),
    FieldSpec("ld_addr", 32, "Scratchpad-side address for a data-move tile"),
    FieldSpec("ld_bounds", 32, "Packed rows/cols for a data-move"),
    FieldSpec("ex_config", 64, "Execute-pipeline configuration (config_ex)"),
    FieldSpec("ld_A_config", 64, "Load-pipeline configuration for A (config_ld)"),
    FieldSpec("ld_B_config", 64, "Load-pipeline configuration for B (config_ld)"),
    FieldSpec("ld_D_config", 64, "Load-pipeline configuration for D (config_ld)"),
    FieldSpec("st_C_config", 64, "Store-pipeline configuration for C (config_st)"),
    FieldSpec("preload_addr", 32, "Weight (B) tile scratchpad address for preload"),
    FieldSpec("st_addr", 32, "Output (C) tile accumulator address"),
    FieldSpec("acc", 1, "Accumulate into the output instead of overwriting"),
)

OP_LOOP_WS = 0
OP_MVIN = 1
OP_MVOUT = 2
OP_PRELOAD = 3
OP_COMPUTE = 4
#: Output-stationary fine-grained tile compute: partial sums stay in the
#: array; both operands stream in (compute.accumulated in Gemmini's ISA).
OP_COMPUTE_OS = 5

#: Systolic array dimension (16x16 processing elements).
ARRAY_DIM = 16
#: Bytes one RoCC custom instruction conveys (rs1 + rs2).
ROCC_BYTES = 16
#: Host instructions per RoCC configuration write (2 operand stages + custom).
INSTRS_PER_ROCC_WRITE = 3
#: Scratchpad capacity in bytes (A and B tiles); drives invocation splitting.
SCRATCHPAD_BYTES = 256 * 1024
#: Accumulator capacity in bytes (C tiles, 32-bit).
ACCUMULATOR_BYTES = 64 * 1024


class GemminiSpec(AcceleratorSpec):
    """Target description for the Gemmini loop_ws macro-operation."""

    name = "gemmini"
    peak_ops_per_cycle = ARRAY_DIM * ARRAY_DIM * 2  # 512: one MAC per PE
    concurrent_config = False
    memory_bandwidth = 16.0  # 128-bit DMA port per cycle
    fields = {spec.name: spec for spec in (*LOOP_WS_FIELDS, *EXTRA_FIELDS)}

    # -- configuration interface -------------------------------------------

    def rocc_writes(self, field_names: list[str]) -> int:
        """RoCC instructions needed to convey the given fields (two packed
        64-bit words per instruction)."""
        specs = [self.field_spec(name) for name in field_names]
        words = pack_fields(specs, word_bits=64)
        return math.ceil(len(words) / 2)

    def setup_instrs(self, field_names: list[str]) -> list[Instr]:
        if not field_names:
            return []
        specs = [self.field_spec(name) for name in field_names]
        words = len(pack_fields(specs, word_bits=64))
        instrs: list[Instr] = []
        remaining = words
        while remaining > 0:
            staged = min(2, remaining)
            # One register-staging instruction per operand word actually
            # used, plus the custom RoCC instruction itself.
            for _ in range(staged):
                instrs.append(Instr("stage-rs", InstrCategory.SETUP))
            instrs.append(config_write("rocc-custom", self.name, ROCC_BYTES))
            remaining -= staged
        return instrs

    def launch_instrs(self) -> list[Instr]:
        # Launch-semantic interface: the final configuration instruction
        # implicitly launches; there is no dedicated launch instruction.
        return []

    def launch_field_instrs(self, field_names: list[str]) -> list[Instr]:
        # The macro-op selector is encoded in the custom instruction's funct
        # field, not in an operand word.
        payload = [n for n in field_names if n != "op"]
        if not payload:
            return [config_write("rocc-custom", self.name, ROCC_BYTES)]
        return self.setup_instrs(payload)

    def config_bytes(self, field_names: list[str]) -> int:
        # The interface always transfers whole 16-byte RoCC payloads.
        if not field_names:
            return 0
        return self.rocc_writes(field_names) * ROCC_BYTES

    # -- timing ------------------------------------------------------------

    def compute_cycles(self, config: dict[str, int]) -> float:
        op = config.get("op", OP_LOOP_WS)
        if op in (OP_MVIN, OP_MVOUT, OP_PRELOAD):
            # Data movement is explicitly *not* configuration overhead
            # (Section 2.3) and the Gemmini evaluation (Section 6.1) scores
            # configuration via instruction counts, not timing; the move is
            # modeled as overlapping with the FSM (zero exposed cycles).
            return 0.0
        if op == OP_COMPUTE:
            # One 16x16x16 fine-grained tile: stream + weight load.
            return 2 * ARRAY_DIM
        if op == OP_COMPUTE_OS:
            # Output-stationary: no weight reload, but both operands stream.
            return 2 * ARRAY_DIM
        tiles_i = max(1, config.get("I", 1))
        tiles_j = max(1, config.get("J", 1))
        tiles_k = max(1, config.get("K", 1))
        # One 16x16x16 tile streams through the array in ARRAY_DIM cycles at
        # peak; weight-stationary reloads add a fill per (j, k) tile pair.
        streaming = tiles_i * tiles_j * tiles_k * ARRAY_DIM
        weight_loads = tiles_j * tiles_k * ARRAY_DIM
        pipeline_latency = 2 * ARRAY_DIM
        return streaming + weight_loads + pipeline_latency

    def launch_ops(self, config: dict[str, int]) -> int:
        op = config.get("op", OP_LOOP_WS)
        if op in (OP_MVIN, OP_MVOUT, OP_PRELOAD):
            return 0
        if op in (OP_COMPUTE, OP_COMPUTE_OS):
            return 2 * ARRAY_DIM**3
        tiles_i = max(1, config.get("I", 1))
        tiles_j = max(1, config.get("J", 1))
        tiles_k = max(1, config.get("K", 1))
        rows = tiles_i * ARRAY_DIM
        cols = tiles_j * ARRAY_DIM
        inner = tiles_k * ARRAY_DIM
        return 2 * rows * cols * inner

    def static_launch_ops(self, config: dict[str, int]) -> int | None:
        op = config.get("op", OP_LOOP_WS)
        if op in (OP_MVIN, OP_MVOUT, OP_PRELOAD, OP_COMPUTE, OP_COMPUTE_OS):
            # Fine-grained macro-ops work on fixed 16x16 tiles: the op
            # selector alone determines the datapath work.
            return self.launch_ops(config)
        if all(name in config for name in ("I", "J", "K")):
            return self.launch_ops(config)
        return None  # loop_ws with runtime tile counts

    def launch_memory_bytes(self, config: dict[str, int]) -> int:
        op = config.get("op", OP_LOOP_WS)
        if op in (OP_MVIN, OP_MVOUT):
            # One 16x16 tile: int8 inbound, int32 outbound.
            return ARRAY_DIM * ARRAY_DIM * (4 if op == OP_MVOUT else 1)
        if op in (OP_PRELOAD, OP_COMPUTE, OP_COMPUTE_OS):
            return 0  # operands come from the scratchpad, not memory
        tiles_i = max(1, config.get("I", 1))
        tiles_j = max(1, config.get("J", 1))
        tiles_k = max(1, config.get("K", 1))
        a_bytes = tiles_i * tiles_k * ARRAY_DIM**2
        b_bytes = tiles_k * tiles_j * ARRAY_DIM**2
        c_bytes = 4 * tiles_i * tiles_j * ARRAY_DIM**2
        d_bytes = c_bytes if config.get("D", 0) else 0
        return a_bytes + b_bytes + c_bytes + d_bytes

    # -- functional semantics ------------------------------------------------

    def execute(self, config: dict[str, int], memory: "Memory") -> None:
        """Perform ``C = act(A @ B + D)`` on simulated memory.

        Addresses are byte addresses of int8 inputs (A, B) and int32
        bias/output (D, C); strides are in elements.  A zero D address means
        "no bias".
        """
        op = config.get("op", OP_LOOP_WS)
        if op in (OP_MVIN, OP_MVOUT, OP_PRELOAD):
            # Scratchpad traffic is not modeled; compute reads main memory
            # directly, so data moves (and the preload's weight staging,
            # which only records addresses in the register file) are
            # functional no-ops.
            return
        if op in (OP_COMPUTE, OP_COMPUTE_OS):
            self._execute_fine_grained(config, memory)
            return
        tiles_i = max(1, config.get("I", 1))
        tiles_j = max(1, config.get("J", 1))
        tiles_k = max(1, config.get("K", 1))
        rows = tiles_i * ARRAY_DIM - config.get("pad_I", 0)
        cols = tiles_j * ARRAY_DIM - config.get("pad_J", 0)
        inner = tiles_k * ARRAY_DIM - config.get("pad_K", 0)
        a = memory.read_matrix(
            config["A"], rows, inner, config.get("stride_A", inner), np.int8
        )
        if config.get("A_transpose"):
            a = a.T
            rows, inner = a.shape
        b = memory.read_matrix(
            config["B"], inner, cols, config.get("stride_B", cols), np.int8
        )
        if config.get("B_transpose"):
            b = b.T
        acc = a.astype(np.int32) @ b.astype(np.int32)
        d_addr = config.get("D", 0)
        if d_addr:
            acc = acc + memory.read_matrix(
                d_addr, rows, cols, config.get("stride_D", cols), np.int32
            )
        if config.get("act") == 1:  # ReLU
            acc = np.maximum(acc, 0)
        memory.write_matrix(config["C"], acc, config.get("stride_C", cols))

    def _execute_fine_grained(self, config: dict[str, int], memory: "Memory") -> None:
        """One preloaded 16x16x16 tile: ``C[st] (+)= A[ld] @ B[preload]``."""
        dim = ARRAY_DIM
        stride_a = config.get("stride_A", dim)
        stride_b = config.get("stride_B", dim)
        stride_c = config.get("stride_C", dim)
        a = memory.read_matrix(config["ld_addr"], dim, dim, stride_a, np.int8)
        b = memory.read_matrix(config["preload_addr"], dim, dim, stride_b, np.int8)
        product = a.astype(np.int32) @ b.astype(np.int32)
        if config.get("acc"):
            product = product + memory.read_matrix(
                config["st_addr"], dim, dim, stride_c, np.int32
            )
        memory.write_matrix(config["st_addr"], product, stride_c)


GEMMINI = register_accelerator(GemminiSpec())

#: The loop_ws FSM iterates a bounded number of tiles per invocation; larger
#: matmuls are split into multiple invocations by the software (the paper's
#: "smaller sizes only require a single invocation", Section 6.1).
LOOP_WS_MAX_TILES = 4  # per dimension -> max 64x64x64 elements per invocation


def max_invocation_edge(size: int) -> int:
    """Largest cubic chunk edge (in elements) one loop_ws invocation covers,
    bounded by the FSM iterator limit and the scratchpad/accumulator
    capacity."""
    edge = ARRAY_DIM
    best = ARRAY_DIM
    limit = LOOP_WS_MAX_TILES * ARRAY_DIM
    while edge <= min(size, limit):
        a_bytes = edge * edge  # int8
        b_bytes = edge * edge
        c_bytes = edge * edge * 4  # int32 accumulator
        if a_bytes + b_bytes <= SCRATCHPAD_BYTES and c_bytes <= ACCUMULATOR_BYTES:
            best = edge
            edge *= 2
        else:
            break
    return min(best, size)
