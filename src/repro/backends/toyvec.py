"""A miniature vector accelerator used by examples and tests.

The paper claims the accfg dialect and passes are target-agnostic; this toy
element-wise engine (not taken from the paper) exercises that claim with a
third, deliberately different interface: MMIO-style writes of whole 64-bit
registers, selectable sequential/concurrent behaviour, and a dedicated start
doorbell.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..isa.encoding import FieldSpec
from ..isa.instructions import Instr, config_write, launch_instr
from .base import AcceleratorSpec, register_accelerator

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.memory import Memory

TOYVEC_FIELDS: tuple[FieldSpec, ...] = (
    FieldSpec("ptr_x", 64, "Byte address of input vector x"),
    FieldSpec("ptr_y", 64, "Byte address of input vector y"),
    FieldSpec("ptr_out", 64, "Byte address of the output vector"),
    FieldSpec("n", 32, "Number of elements"),
    FieldSpec("op", 2, "0 = add, 1 = multiply, 2 = maximum"),
)


class ToyVecSpec(AcceleratorSpec):
    """An element-wise int32 vector engine, 8 lanes wide."""

    name = "toyvec"
    peak_ops_per_cycle = 8
    concurrent_config = True
    fields = {spec.name: spec for spec in TOYVEC_FIELDS}
    host_cycles_per_instr = 1.0
    memory_bandwidth = 32.0

    def setup_instrs(self, field_names: list[str]) -> list[Instr]:
        # MMIO: one store per register write (64-bit bus).
        return [
            config_write("mmio-store", self.name, (self.field_spec(n).bits + 7) // 8)
            for n in field_names
        ]

    def launch_instrs(self) -> list[Instr]:
        return [launch_instr("mmio-doorbell", self.name)]

    def compute_cycles(self, config: dict[str, int]) -> float:
        n = max(1, config.get("n", 1))
        return -(-n // 8) + 4  # ceil(n / lanes) plus a short pipeline

    def launch_ops(self, config: dict[str, int]) -> int:
        return max(1, config.get("n", 1))

    def static_launch_ops(self, config: dict[str, int]) -> int | None:
        if "n" in config:
            return self.launch_ops(config)
        return None  # runtime-sized vector: op count unknown statically

    def launch_memory_bytes(self, config: dict[str, int]) -> int:
        return 3 * 4 * max(0, config.get("n", 0))  # two reads + one write

    def execute(self, config: dict[str, int], memory: "Memory") -> None:
        n = config.get("n", 0)
        if n <= 0:
            return
        x = memory.read_matrix(config["ptr_x"], 1, n, n, np.int32)[0]
        y = memory.read_matrix(config["ptr_y"], 1, n, n, np.int32)[0]
        op = config.get("op", 0)
        if op == 0:
            out = x + y
        elif op == 1:
            out = x * y
        elif op == 2:
            out = np.maximum(x, y)
        else:
            raise ValueError(f"toyvec: unknown op code {op}")
        memory.write_matrix(config["ptr_out"], out.reshape(1, n), n)


TOYVEC = register_accelerator(ToyVecSpec())


class SequentialToyVecSpec(ToyVecSpec):
    """The same engine without staging registers (sequential configuration);
    lets tests compare the two schemes on identical workloads."""

    name = "toyvec-seq"
    concurrent_config = False


TOYVEC_SEQ = register_accelerator(SequentialToyVecSpec())


class QueuedToyVecSpec(ToyVecSpec):
    """The same engine behind a 4-deep launch FIFO, modeling queue-based
    configuration schemes like Cohort's software-defined pipelines (the
    paper's Section 8 outlook): the host can enqueue several configured
    launches before it has to wait for a slot."""

    name = "toyvec-queued"
    launch_queue_depth = 4


TOYVEC_QUEUED = register_accelerator(QueuedToyVecSpec())
