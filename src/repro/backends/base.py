"""Accelerator target abstraction and registry.

An :class:`AcceleratorSpec` is everything the compiler and co-simulator need
to know about one accelerator:

* its *configuration interface* — which fields exist (name, bit width), how
  many host instructions writing a set of fields costs, and whether the
  accelerator supports concurrent (staged) configuration;
* its *timing* — peak ops/cycle and the cycle count of one launched
  macro-operation as a function of the committed configuration;
* its *semantics* — a functional ``execute`` that performs the macro-op on
  the simulated memory, so optimized programs can be checked bit-exactly
  against numpy references.

Lowering passes ask the spec how to translate ``accfg`` ops into instruction
records (step 5 of the flow); the overlap pass consults
``concurrent_config`` before pipelining (step 4).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from ..isa.encoding import FieldSpec
from ..isa.instructions import HostCostModel, Instr

if TYPE_CHECKING:  # pragma: no cover
    from typing import Sequence

    from ..sim.memory import Memory


class AcceleratorSpec(ABC):
    """Target description for one accelerator."""

    #: unique name, matching the accfg ``accelerator`` attribute
    name: str = ""
    #: peak datapath throughput in ops/cycle (P_peak of the roofline)
    peak_ops_per_cycle: int = 1
    #: True when the accelerator supports concurrent configuration
    #: (staging registers; Section 2.2)
    concurrent_config: bool = False
    #: Launches the interface can queue before the host must wait.  1 models
    #: the paper's single-level staging (a launch is a barrier on the
    #: previous computation); >1 models FIFO/queue-based schemes such as
    #: Cohort's software-defined pipelines (Section 8 outlook).  Only
    #: meaningful for concurrent-configuration targets.
    launch_queue_depth: int = 1
    #: Sustainable memory bandwidth in bytes/cycle (BW_memory of Eq. 1/5),
    #: used only for roofline accounting — data movement is never part of
    #: configuration overhead (Section 2.3) and its latency is assumed
    #: hidden in these experiments.  None = not modeled.
    memory_bandwidth: float | None = None
    #: field name -> FieldSpec (bit widths; e.g. Table 1 for Gemmini)
    fields: dict[str, FieldSpec] = {}
    #: average cycles per host instruction (paper footnote 4 gives 3 for the
    #: Rocket host; in-order single-issue hosts like Snitch are close to 1)
    host_cycles_per_instr: float = 3.0

    def host_cost_model(self) -> HostCostModel:
        """The host cost model to co-simulate this target with."""
        return HostCostModel(self.host_cycles_per_instr)

    # -- configuration interface costs -------------------------------------

    @abstractmethod
    def setup_instrs(self, field_names: list[str]) -> list[Instr]:
        """Host instructions that write the given fields' registers.

        Only the register-write instructions themselves — parameter
        computation is charged separately from the IR's arith ops.
        """

    @abstractmethod
    def launch_instrs(self) -> list[Instr]:
        """Host instructions that start the accelerator."""

    def launch_field_instrs(self, field_names: list[str]) -> list[Instr]:
        """Host instructions conveying launch-semantic configuration fields
        (configuration carried by the launching instruction itself,
        Section 2.4).  Defaults to the ordinary setup cost."""
        return self.setup_instrs(field_names)

    def sync_instrs(self) -> list[Instr]:
        """Host instructions for one completion check (poll of a status
        register by default)."""
        from ..isa.instructions import sync_instr

        return [sync_instr("poll", self.name)]

    # -- memoized instruction streams ---------------------------------------

    def _cached_instrs(self, kind: str, key: tuple, build) -> list[Instr]:
        # Instruction streams are pure functions of the field-name tuple and
        # Instr records are frozen, so one spec-local cache hands out shared
        # tuples; callers get a fresh list they are free to extend.
        cache = self.__dict__.get("_instr_cache")
        if cache is None:
            cache = self.__dict__["_instr_cache"] = {}
        entry = cache.get((kind, key))
        if entry is None:
            entry = cache[(kind, key)] = tuple(build())
        return list(entry)

    def setup_instrs_cached(self, field_names: "Sequence[str]") -> list[Instr]:
        """Memoized :meth:`setup_instrs` (the simulator hot path)."""
        key = tuple(field_names)
        return self._cached_instrs("setup", key, lambda: self.setup_instrs(list(key)))

    def launch_field_instrs_cached(self, field_names: "Sequence[str]") -> list[Instr]:
        """Memoized :meth:`launch_field_instrs`."""
        key = tuple(field_names)
        return self._cached_instrs(
            "launch-fields", key, lambda: self.launch_field_instrs(list(key))
        )

    def launch_instrs_cached(self) -> list[Instr]:
        """Memoized :meth:`launch_instrs`."""
        return self._cached_instrs("launch", (), self.launch_instrs)

    def sync_instrs_cached(self) -> list[Instr]:
        """Memoized :meth:`sync_instrs`."""
        return self._cached_instrs("sync", (), self.sync_instrs)

    def config_bytes(self, field_names: list[str]) -> int:
        """Configuration payload in bytes for the given fields."""
        total = 0
        for name in field_names:
            spec = self.fields.get(name)
            total += (spec.bits + 7) // 8 if spec else 8
        return total

    # -- timing and semantics ------------------------------------------------

    @abstractmethod
    def compute_cycles(self, config: dict[str, int]) -> float:
        """Cycles one launch occupies the accelerator, given its config."""

    @abstractmethod
    def launch_ops(self, config: dict[str, int]) -> int:
        """Useful datapath operations one launch performs (for roofline
        accounting: multiply-accumulate counts as two ops)."""

    def static_launch_ops(self, config: dict[str, int]) -> int | None:
        """Like :meth:`launch_ops`, but for *static* analysis: ``config``
        holds only the fields a compiler could constant-fold, so a spec must
        return ``None`` when those do not pin the op count down (e.g. a
        runtime-sized vector).  Used by the configuration-roofline lint."""
        return None

    def launch_memory_bytes(self, config: dict[str, int]) -> int:
        """Bytes of data one launch moves (for the I_operational axis of the
        combined roofsurface, Eq. 5).  Zero by default (not modeled)."""
        return 0

    def execute(self, config: dict[str, int], memory: "Memory") -> None:
        """Perform the macro-operation functionally on simulated memory.

        Optional: specs without functional semantics (pure timing studies)
        may leave this a no-op.
        """

    def field_spec(self, name: str) -> FieldSpec:
        spec = self.fields.get(name)
        if spec is None:
            raise KeyError(f"accelerator '{self.name}' has no field '{name}'")
        return spec

    def __repr__(self) -> str:
        kind = "concurrent" if self.concurrent_config else "sequential"
        return f"<AcceleratorSpec {self.name} ({kind}, {self.peak_ops_per_cycle} ops/cycle)>"


_REGISTRY: dict[str, AcceleratorSpec] = {}


def register_accelerator(spec: AcceleratorSpec, replace: bool = False) -> AcceleratorSpec:
    """Add a spec to the global registry (used by passes and simulators)."""
    if not spec.name:
        raise ValueError("accelerator spec needs a name")
    if spec.name in _REGISTRY and not replace:
        raise ValueError(f"accelerator '{spec.name}' already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_accelerator(name: str) -> AcceleratorSpec:
    _ensure_builtin_targets()
    spec = _REGISTRY.get(name)
    if spec is None:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown accelerator '{name}' (known: {known})")
    return spec


def get_accelerator_or_none(name: str) -> AcceleratorSpec | None:
    _ensure_builtin_targets()
    return _REGISTRY.get(name)


def registered_accelerators() -> list[str]:
    _ensure_builtin_targets()
    return sorted(_REGISTRY)


def _ensure_builtin_targets() -> None:
    """Import the built-in target modules so they self-register."""
    from . import gemmini, opengemm, toyvec  # noqa: F401
