"""The OpenGeMM target (paper, Section 6.2).

OpenGeMM [47] is a GeMM accelerator generator with lightweight RISC-V
control: a tiny in-order Snitch-class core [48] drives an 8x8 mesh of
8-element dot-product units (1024 ops/cycle peak) through CSR writes, with
tight scratchpad coupling.

OpenGeMM supports *concurrent configuration*: configuration CSRs are staged
while the accelerator computes and are committed at the next launch, so the
configuration-overlap optimization applies (Section 6.2) — this is the
platform where the paper reports the 2x geomean speedup.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from ..isa.encoding import FieldSpec
from ..isa.instructions import Instr, config_write, launch_instr, sync_instr
from .base import AcceleratorSpec, register_accelerator

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.memory import Memory

#: Mesh geometry: MESH x MESH dot-product units of depth TILE_K each.
MESH = 8
PIPELINE_LATENCY = 16

#: Tightly-coupled scratchpad capacity in bytes (A and B panels plus the
#: int32 output tile of one invocation must fit) — the capacity bound the
#: autotuner's tile-shape space is filtered against.
SCRATCHPAD_BYTES = 128 * 1024

#: Configuration CSRs of the OpenGeMM control interface.  Beyond the GeMM
#: core's own registers, each of the three data streamers has temporal loop
#: bounds/strides plus a spatial stride — the streamer CSRs dominate the
#: per-invocation configuration volume, which is what makes OpenGeMM's
#: configuration interface a first-order performance concern.
CSR_FIELDS: tuple[FieldSpec, ...] = (
    FieldSpec("M", 32, "Rows of the output tile"),
    FieldSpec("K", 32, "Inner (reduction) dimension"),
    FieldSpec("N", 32, "Columns of the output tile"),
    FieldSpec("ptr_A", 32, "Scratchpad address of matrix A"),
    FieldSpec("ptr_B", 32, "Scratchpad address of matrix B"),
    FieldSpec("ptr_C", 32, "Scratchpad address of matrix C"),
    FieldSpec("stride_A", 32, "Row stride of A in elements"),
    FieldSpec("stride_B", 32, "Row stride of B in elements"),
    FieldSpec("stride_C", 32, "Row stride of C in elements"),
    FieldSpec("subtractions", 32, "Packed zero-point corrections for A and B"),
    FieldSpec("tbound0_A", 32, "Streamer A: innermost temporal loop bound"),
    FieldSpec("tbound1_A", 32, "Streamer A: outer temporal loop bound"),
    FieldSpec("tstride0_A", 32, "Streamer A: innermost temporal stride"),
    FieldSpec("tstride1_A", 32, "Streamer A: outer temporal stride"),
    FieldSpec("sstride_A", 32, "Streamer A: spatial (lane) stride"),
    FieldSpec("tbound0_B", 32, "Streamer B: innermost temporal loop bound"),
    FieldSpec("tbound1_B", 32, "Streamer B: outer temporal loop bound"),
    FieldSpec("tstride0_B", 32, "Streamer B: innermost temporal stride"),
    FieldSpec("tstride1_B", 32, "Streamer B: outer temporal stride"),
    FieldSpec("sstride_B", 32, "Streamer B: spatial (lane) stride"),
    FieldSpec("tbound0_C", 32, "Streamer C: innermost temporal loop bound"),
    FieldSpec("tbound1_C", 32, "Streamer C: outer temporal loop bound"),
    FieldSpec("tstride0_C", 32, "Streamer C: innermost temporal stride"),
    FieldSpec("tstride1_C", 32, "Streamer C: outer temporal stride"),
    FieldSpec("sstride_C", 32, "Streamer C: spatial (lane) stride"),
)


class OpenGeMMSpec(AcceleratorSpec):
    """Target description for OpenGeMM macro GeMM operations."""

    name = "opengemm"
    peak_ops_per_cycle = MESH * MESH * MESH * 2  # 1024: 512 MACs per cycle
    concurrent_config = True
    fields = {spec.name: spec for spec in CSR_FIELDS}
    host_cycles_per_instr = 1.0  # Snitch-class in-order host, IPC close to 1
    memory_bandwidth = 64.0  # 512-bit scratchpad port per cycle

    def setup_instrs(self, field_names: list[str]) -> list[Instr]:
        # One csrw per field; the value itself is produced by IR arith
        # (charged separately as calc instructions).
        return [
            config_write("csrw", self.name, (self.field_spec(n).bits + 7) // 8)
            for n in field_names
        ]

    def launch_instrs(self) -> list[Instr]:
        # Start CSR write plus the fence that orders it after the staged
        # configuration writes.
        return [
            launch_instr("csrw-start", self.name, 4),
            launch_instr("fence", self.name),
        ]

    def sync_instrs(self) -> list[Instr]:
        # Busy-wait: read the status CSR, mask the busy bit, branch — the
        # poll loop makes two rounds on average before observing completion.
        one_round = [
            sync_instr("csrr-status", self.name),
            sync_instr("andi", self.name),
            sync_instr("bnez", self.name),
        ]
        return one_round * 2

    # -- timing ------------------------------------------------------------

    def compute_cycles(self, config: dict[str, int]) -> float:
        m = max(1, config.get("M", MESH))
        k = max(1, config.get("K", MESH))
        n = max(1, config.get("N", MESH))
        tiles = math.ceil(m / MESH) * math.ceil(n / MESH)
        cycles_per_tile = math.ceil(k / MESH)
        return tiles * cycles_per_tile + PIPELINE_LATENCY

    def launch_ops(self, config: dict[str, int]) -> int:
        m = max(1, config.get("M", MESH))
        k = max(1, config.get("K", MESH))
        n = max(1, config.get("N", MESH))
        return 2 * m * k * n

    def static_launch_ops(self, config: dict[str, int]) -> int | None:
        if all(name in config for name in ("M", "K", "N")):
            return self.launch_ops(config)
        return None

    def launch_memory_bytes(self, config: dict[str, int]) -> int:
        m = max(1, config.get("M", MESH))
        k = max(1, config.get("K", MESH))
        n = max(1, config.get("N", MESH))
        return m * k + k * n + 4 * m * n  # int8 inputs, int32 output

    # -- functional semantics ------------------------------------------------

    def execute(self, config: dict[str, int], memory: "Memory") -> None:
        """``C = (A - a_zp) @ (B - b_zp)`` with int8 inputs, int32 output."""
        m = config.get("M", MESH)
        k = config.get("K", MESH)
        n = config.get("N", MESH)
        subtraction = config.get("subtractions", 0)
        a_zp = subtraction & 0xFF
        b_zp = (subtraction >> 8) & 0xFF
        a = memory.read_matrix(
            config["ptr_A"], m, k, config.get("stride_A", k), np.int8
        ).astype(np.int32)
        b = memory.read_matrix(
            config["ptr_B"], k, n, config.get("stride_B", n), np.int8
        ).astype(np.int32)
        acc = (a - a_zp) @ (b - b_zp)
        memory.write_matrix(config["ptr_C"], acc, config.get("stride_C", n))


OPENGEMM = register_accelerator(OpenGeMMSpec())
