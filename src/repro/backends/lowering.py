"""Static lowering inspection (step 5 of the compilation flow, Figure 8).

The co-simulator lowers accfg ops to host instructions on the fly; this
module exposes the same mapping *statically*, so users can inspect what a
given IR module will cost before running it: per-op instruction sequences,
configuration bytes, and a whole-module report with loop ops annotated as
per-iteration costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dialects import accfg, scf
from ..dialects.builtin import ModuleOp
from ..ir.operation import Operation
from ..isa.instructions import HostCostModel, Instr
from .base import get_accelerator


def lower_setup(op: accfg.SetupOp) -> list[Instr]:
    """The host instructions one accfg.setup lowers to on its target."""
    spec = get_accelerator(op.accelerator)
    return spec.setup_instrs(list(op.field_names))


def lower_launch(op: accfg.LaunchOp) -> list[Instr]:
    spec = get_accelerator(op.accelerator)
    instrs = []
    if op.field_names:
        instrs.extend(spec.launch_field_instrs(list(op.field_names)))
    instrs.extend(spec.launch_instrs())
    return instrs


def lower_await(op: accfg.AwaitOp) -> list[Instr]:
    return get_accelerator(op.accelerator).sync_instrs()


def lower_accfg_op(op: Operation) -> list[Instr] | None:
    """Lower one accfg op; None for non-accfg ops."""
    if isinstance(op, accfg.SetupOp):
        return lower_setup(op)
    if isinstance(op, accfg.LaunchOp):
        return lower_launch(op)
    if isinstance(op, accfg.AwaitOp):
        return lower_await(op)
    return None


@dataclass(frozen=True)
class LoweredOp:
    """One accfg op with its lowered instruction sequence and loop context."""

    op: Operation
    instrs: tuple[Instr, ...]
    loop_depth: int

    @property
    def instr_count(self) -> int:
        return len(self.instrs)

    @property
    def config_bytes(self) -> int:
        return sum(i.config_bytes for i in self.instrs)


@dataclass
class ConfigCostReport:
    """Static configuration cost of a module: what step 5 will emit."""

    entries: list[LoweredOp] = field(default_factory=list)

    @property
    def static_instr_count(self) -> int:
        return sum(entry.instr_count for entry in self.entries)

    @property
    def static_config_bytes(self) -> int:
        return sum(entry.config_bytes for entry in self.entries)

    def static_cycles(self, cost_model: HostCostModel | None = None) -> float:
        cost_model = cost_model or HostCostModel()
        return sum(
            cost_model.cycles(instr)
            for entry in self.entries
            for instr in entry.instrs
        )

    def by_accelerator(self) -> dict[str, int]:
        """Static config bytes per accelerator."""
        totals: dict[str, int] = {}
        for entry in self.entries:
            op = entry.op
            name = getattr(op, "accelerator", None)
            if name:
                totals[name] = totals.get(name, 0) + entry.config_bytes
        return totals

    def format(self) -> str:
        lines = ["static configuration cost (per loop iteration where nested):"]
        for entry in self.entries:
            indent = "  " * (entry.loop_depth + 1)
            summary = ", ".join(
                f"{instr.mnemonic}" for instr in entry.instrs[:4]
            )
            if len(entry.instrs) > 4:
                summary += f", ... ({len(entry.instrs)} total)"
            lines.append(
                f"{indent}{entry.op.name}: {entry.instr_count} instrs, "
                f"{entry.config_bytes} B  [{summary}]"
            )
        lines.append(
            f"  total (static): {self.static_instr_count} instrs, "
            f"{self.static_config_bytes} config bytes"
        )
        return "\n".join(lines)


def static_config_report(module: ModuleOp) -> ConfigCostReport:
    """Walk the module and lower every accfg op, recording loop nesting."""
    report = ConfigCostReport()

    def visit(op: Operation, depth: int) -> None:
        lowered = lower_accfg_op(op)
        if lowered is not None:
            report.entries.append(LoweredOp(op, tuple(lowered), depth))
        next_depth = depth + 1 if isinstance(op, scf.ForOp) else depth
        for region in op.regions:
            for block in region.blocks:
                for nested in block.ops:
                    visit(nested, next_depth)

    for op in module.body_block.ops:
        visit(op, 0)
    return report
