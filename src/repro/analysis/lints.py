"""The accfg lint suite: static configuration-wall hazard checks.

Each check is registered under a stable code (``ACCFG001`` ...) via
:func:`register_lint`; :func:`run_lints` runs them all (or a filtered
subset) over a module and returns the collected diagnostics.  The checks
are read-only — they never modify the IR — so they are safe to run at any
point of a pass pipeline.

Codes:

========= ========================= ========
ACCFG001  launch-never-awaited      warning
ACCFG002  double-await              error
ACCFG003  use-after-reset           error
ACCFG004  forked-state-chain        error
ACCFG005  superseded-state-launch   error
ACCFG006  dead-setup-field          warning
ACCFG007  redundant-setup-field     warning
ACCFG008  pessimistic-clobber       warning
ACCFG009  unknown-accelerator       warning
ACCFG010  config-roofline           warning
ACCFG011  retention-hazard          warning
ACCFG012  missed-dedup              warning
ACCFG013  loop-invariant-setup      warning
ACCFG014  serialized-setup          warning
ACCFG015  redundant-re-setup        warning
========= ========================= ========

ACCFG012–015 are the *opportunity* lints built on the static cost engine
(:mod:`.cost`): each points at configuration cost a shipped pass provably
eliminates, and its fix-it note names that pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..dialects import accfg, func, scf
from ..ir.operation import Operation
from ..ir.ssa import SSAValue
from .diagnostics import Diagnostic, DiagnosticEngine
from .linearity import linearity_diagnostics, unknown_accelerator_diagnostics
from .manager import AnalysisManager


@dataclass
class LintContext:
    """Shared lint configuration."""

    #: restrict target-specific lints (roofline) to one accelerator
    target: str | None = None
    #: analysis cache shared across rules (and, when the caller passes one
    #: in, with the surrounding pass pipeline)
    analyses: AnalysisManager = field(default_factory=AnalysisManager)
    #: the code filter of this run (None = every rule runs)
    codes: set[str] | None = None


LintFn = Callable[[Operation, LintContext, DiagnosticEngine], None]


@dataclass(frozen=True)
class LintRule:
    code: str
    name: str
    description: str
    fn: LintFn


LINT_RULES: dict[str, LintRule] = {}


def register_lint(code: str, name: str, description: str) -> Callable[[LintFn], LintFn]:
    def decorate(fn: LintFn) -> LintFn:
        if code in LINT_RULES:
            raise ValueError(f"lint code {code} registered twice")
        LINT_RULES[code] = LintRule(code, name, description, fn)
        return fn

    return decorate


def run_lints(
    module: Operation,
    target: str | None = None,
    codes: set[str] | None = None,
    analyses: AnalysisManager | None = None,
) -> list[Diagnostic]:
    """Run every registered lint (or just ``codes``) over ``module``.

    ``analyses`` lets a caller (typically the pass manager) share its
    analysis cache with the lint rules; by default each run uses a private
    cache, still shared *between* rules of the same run.
    """
    if codes is not None:
        unknown = codes - set(LINT_RULES)
        if unknown:
            known = ", ".join(sorted(LINT_RULES))
            raise ValueError(
                f"unknown lint code(s) {', '.join(sorted(unknown))} (known: {known})"
            )
    engine = DiagnosticEngine()
    if analyses is None:
        analyses = AnalysisManager()
    context = LintContext(target=target, analyses=analyses, codes=codes)
    for code in sorted(LINT_RULES):
        if codes is not None and code not in codes:
            continue
        LINT_RULES[code].fn(module, context, engine)
    _annotate_loop_depth(engine.diagnostics)
    return engine.diagnostics


def _annotate_loop_depth(diagnostics: list[Diagnostic]) -> None:
    """Append the innermost enclosing loop depth to nested diagnostics.

    An op buried in nested ``scf.for``/``scf.if`` regions prints a raw
    location that says nothing about *how often* it runs; the loop depth
    (number of enclosing ``scf.for`` ops) is the first-order answer.  Diags
    anchored on a loop op itself count only the loops *around* it.
    """
    for diag in diagnostics:
        if diag.op is None:
            continue
        depth = 0
        current = diag.op.parent_op
        while current is not None:
            if isinstance(current, scf.ForOp):
                depth += 1
            current = current.parent_op
        if depth > 0:
            diag.message += f" (at loop depth {depth})"


def _functions(module: Operation) -> list[func.FuncOp]:
    return [
        op
        for op in module.walk()
        if isinstance(op, func.FuncOp) and not op.is_declaration
    ]


# ---------------------------------------------------------------------------
# ACCFG001: launch-never-awaited
# ---------------------------------------------------------------------------


def _token_reaches_await(launch: accfg.LaunchOp) -> bool:
    """Follow the token through yields/iter-args; True when some await (or
    an escape the analysis cannot see through) consumes it."""
    seen: set[SSAValue] = set()
    work: list[SSAValue] = [launch.token]
    while work:
        value = work.pop()
        if value in seen:
            continue
        seen.add(value)
        for use in value.uses:
            user = use.operation
            if isinstance(user, accfg.AwaitOp):
                return True
            if isinstance(user, scf.YieldOp):
                parent = user.parent_op
                if isinstance(parent, scf.IfOp):
                    work.append(parent.results[use.index])
                elif isinstance(parent, scf.ForOp):
                    work.append(parent.results[use.index])
                    work.append(parent.body.args[use.index + 1])
                else:
                    return True  # unknown region op: assume consumed
            elif isinstance(user, scf.ForOp):
                if use.index < 3:
                    return True
                work.append(user.results[use.index - 3])
                work.append(user.body.args[use.index - 3 + 1])
            else:
                return True  # call/return/unknown: token escapes
    return False


@register_lint(
    "ACCFG001",
    "launch-never-awaited",
    "a launch produces a token that no accfg.await ever consumes",
)
def _check_launch_never_awaited(
    module: Operation, context: LintContext, engine: DiagnosticEngine
) -> None:
    for op in module.walk():
        if isinstance(op, accfg.LaunchOp) and not _token_reaches_await(op):
            in_loop = any(
                isinstance(a, scf.ForOp) for a in _ancestors(op)
            )
            message = f"launch on '{op.accelerator}' is never awaited"
            if in_loop:
                message += " (fire-and-forget inside a loop)"
            engine.warning("ACCFG001", message, op).with_note(
                "fix: insert `accfg.await` on this token once the result is "
                "needed; an un-awaited launch gives no completion ordering"
            )


def _ancestors(op: Operation) -> list[Operation]:
    result = []
    current = op.parent_op
    while current is not None:
        result.append(current)
        current = current.parent_op
    return result


# ---------------------------------------------------------------------------
# ACCFG002: double-await
# ---------------------------------------------------------------------------


@register_lint(
    "ACCFG002",
    "double-await",
    "a token is awaited twice on some execution path",
)
def _check_double_await(
    module: Operation, context: LintContext, engine: DiagnosticEngine
) -> None:
    for fn in _functions(module):
        analysis = context.analyses.awaited_tokens(fn)
        for op in fn.walk():
            if not isinstance(op, accfg.AwaitOp):
                continue
            already = analysis.input_states.get(op)
            if already is not None and op.token in already:
                engine.error(
                    "ACCFG002",
                    f"token of '{op.accelerator}' is awaited more than once "
                    "on some execution path",
                    op,
                ).with_note(
                    "a token is consumed by its first await; remove the "
                    "duplicate (or re-launch to obtain a fresh token)"
                )


# ---------------------------------------------------------------------------
# ACCFG003: use-after-reset
# ---------------------------------------------------------------------------


def _is_ordered_after(op: Operation, anchor: Operation) -> bool:
    """True when ``op`` (or an ancestor) follows ``anchor`` in its block."""
    current: Operation | None = op
    while current is not None:
        if current.parent is anchor.parent:
            return current is not anchor and anchor.is_before_in_block(current)
        current = current.parent_op
    return False


@register_lint(
    "ACCFG003",
    "use-after-reset",
    "a state value is read after accfg.reset destroyed it",
)
def _check_use_after_reset(
    module: Operation, context: LintContext, engine: DiagnosticEngine
) -> None:
    for reset in module.walk():
        if not isinstance(reset, accfg.ResetOp):
            continue
        state = reset.state
        state_type = state.type
        accelerator = (
            state_type.accelerator if isinstance(state_type, accfg.StateType) else "?"
        )
        for use in state.uses:
            user = use.operation
            if user is reset:
                continue
            if _is_ordered_after(user, reset):
                engine.error(
                    "ACCFG003",
                    f"state of '{accelerator}' is used after accfg.reset "
                    "destroyed it",
                    user,
                ).with_note(
                    "reset ends the state's lifetime; re-run accfg.setup to "
                    "obtain a fresh state before this use"
                )


# ---------------------------------------------------------------------------
# ACCFG004/ACCFG005: state-chain linearity; ACCFG009: unknown accelerator
# ---------------------------------------------------------------------------


@register_lint(
    "ACCFG004",
    "forked-state-chain",
    "two setups consume the same input state (forked chain)",
)
def _check_forked_chain(
    module: Operation, context: LintContext, engine: DiagnosticEngine
) -> None:
    linearity_diagnostics(module, engine)


@register_lint(
    "ACCFG005",
    "superseded-state-launch",
    "a launch reads a state an intervening setup superseded",
)
def _check_superseded_launch(
    module: Operation, context: LintContext, engine: DiagnosticEngine
) -> None:
    # ACCFG004's walk already emitted both codes, so re-walking here would
    # only produce duplicates for the engine to drop; run the walk only when
    # a `--filter ACCFG005` selection excludes ACCFG004.
    if context.codes is not None and "ACCFG004" not in context.codes:
        linearity_diagnostics(module, engine)


@register_lint(
    "ACCFG009",
    "unknown-accelerator",
    "an accfg op names an accelerator no backend registers",
)
def _check_unknown_accelerator(
    module: Operation, context: LintContext, engine: DiagnosticEngine
) -> None:
    unknown_accelerator_diagnostics(module, engine)


# ---------------------------------------------------------------------------
# ACCFG006: dead setup fields
# ---------------------------------------------------------------------------


@register_lint(
    "ACCFG006",
    "dead-setup-field",
    "a setup writes fields no launch can ever observe",
)
def _check_dead_setup_fields(
    module: Operation, context: LintContext, engine: DiagnosticEngine
) -> None:
    analysis = context.analyses.observed_fields(module)
    for op in module.walk():
        if not isinstance(op, accfg.SetupOp) or not op.fields:
            continue
        observed = analysis.observed(op.out_state)
        dead = [name for name in op.field_names if not observed.contains(name)]
        if dead:
            listing = ", ".join(f"'{name}'" for name in dead)
            engine.warning(
                "ACCFG006",
                f"setup on '{op.accelerator}' writes field(s) {listing} that "
                "are overwritten or never observed by any launch",
                op,
            ).with_note(
                "dead configuration writes cost host cycles for nothing; "
                "drop the field(s) or move them next to the launch that "
                "needs them"
            )


# ---------------------------------------------------------------------------
# ACCFG007: redundant setup fields (what dedup would remove)
# ---------------------------------------------------------------------------


@register_lint(
    "ACCFG007",
    "redundant-setup-field",
    "a setup rewrites a register with the value it already holds",
)
def _check_redundant_setup_fields(
    module: Operation, context: LintContext, engine: DiagnosticEngine
) -> None:
    for op in module.walk():
        if not isinstance(op, accfg.SetupOp) or op.in_state is None:
            continue
        analysis = context.analyses.known_fields(module, op.accelerator)
        known = analysis.known(op.in_state)
        redundant = [
            name for name, value in op.fields if known.fields.get(name) is value
        ]
        if redundant:
            listing = ", ".join(f"'{name}'" for name in redundant)
            engine.warning(
                "ACCFG007",
                f"setup on '{op.accelerator}' rewrites field(s) {listing} "
                "with the value the register already holds",
                op,
            ).with_note(
                "run `python -m repro opt --pipeline dedup` to remove "
                "redundant configuration writes (Section 5.4)"
            )


# ---------------------------------------------------------------------------
# ACCFG008: pessimistic clobbers
# ---------------------------------------------------------------------------


def _accfg_accelerators(op: Operation) -> set[str]:
    names: set[str] = set()
    if isinstance(op, (accfg.SetupOp, accfg.LaunchOp, accfg.AwaitOp)):
        names.add(op.accelerator)
    elif isinstance(op, accfg.ResetOp):
        state_type = op.state.type
        if isinstance(state_type, accfg.StateType):
            names.add(state_type.accelerator)
    return names


@register_lint(
    "ACCFG008",
    "pessimistic-clobber",
    "an op with unknown effects splits a configuration sequence",
)
def _check_pessimistic_clobber(
    module: Operation, context: LintContext, engine: DiagnosticEngine
) -> None:
    from ..passes.trace_states import op_preserves_state

    for fn in _functions(module):
        all_ops = list(fn.walk())
        used: set[str] = set()
        for op in all_ops:
            used |= _accfg_accelerators(op)
        if not used:
            continue
        # One bottom-up sweep marks every op whose subtree contains an accfg
        # op (walk() is pre-order, so reversed order sees children first) —
        # replacing the former per-op nested re-walks.
        has_accfg: dict[Operation, bool] = {}
        for op in reversed(all_ops):
            flag = bool(_accfg_accelerators(op))
            if not flag and op.regions:
                flag = any(
                    has_accfg.get(nested, False)
                    for region in op.regions
                    for block in region.blocks
                    for nested in block.ops
                )
            has_accfg[op] = flag
        for block_op in all_ops:
            for region in block_op.regions:
                for block in region.blocks:
                    ops = list(block.ops)
                    accfg_positions = [
                        i for i, op in enumerate(ops) if has_accfg.get(op, False)
                    ]
                    if len(accfg_positions) < 2:
                        continue
                    for i in range(accfg_positions[0] + 1, accfg_positions[-1]):
                        op = ops[i]
                        if op.name.startswith("accfg.") or op.regions:
                            continue
                        if accfg.get_effects(op) is not None:
                            continue
                        clobbered = sorted(
                            acc for acc in used if not op_preserves_state(op, acc)
                        )
                        if clobbered:
                            listing = ", ".join(f"'{a}'" for a in clobbered)
                            shown_name = getattr(op, "op_name", op.name)
                            engine.warning(
                                "ACCFG008",
                                f"'{shown_name}' sits between configuration ops "
                                f"but has unknown effects on {listing}; the "
                                "state tracer must assume it clobbers the "
                                "configuration",
                                op,
                            ).with_note(
                                "annotate it `{accfg.effects = \"none\"}` if "
                                "it cannot touch configuration registers, so "
                                "dedup and overlap can optimize across it"
                            )


# ---------------------------------------------------------------------------
# ACCFG011: retention hazards (reliance on device state across launches)
# ---------------------------------------------------------------------------


def _retention_hazards(fn: func.FuncOp) -> dict[Operation, set[str]]:
    """Which setup-written fields do launches rely on retaining?

    The lattice state maps ``(accelerator, field)`` to the set of
    ``(writer setup op, crossed)`` entries that may have last written the
    field, where ``crossed`` records that at least one launch boundary has
    passed since the write.  A launch reads the whole register file, so any
    ``crossed`` entry it sees is a retention reliance: the program only
    works because the device kept that register across a previous launch.
    That is exactly the assumption the dedup/hoist passes introduce — and
    exactly what a spontaneous device state loss breaks.  Returns writer
    setup op -> the field names relied on across a boundary.
    """
    from .dataflow import ForwardSolver

    hazards: dict[Operation, set[str]] = {}

    class Solver(ForwardSolver):
        def initial(self) -> object:
            return {}

        def join(self, a: object, b: object) -> object:
            assert isinstance(a, dict) and isinstance(b, dict)
            merged = dict(a)
            for key, entries in b.items():
                merged[key] = merged.get(key, frozenset()) | entries
            return merged

        def transfer(self, op: Operation, state: object) -> object:
            assert isinstance(state, dict)
            if isinstance(op, accfg.SetupOp):
                state = dict(state)
                for name in op.field_names:
                    state[(op.accelerator, name)] = frozenset({(op, False)})
                return state
            if isinstance(op, accfg.LaunchOp):
                accelerator = op.accelerator
                carried = {name for name, _ in op.fields}
                state = dict(state)
                for (acc, name), entries in list(state.items()):
                    if acc != accelerator:
                        continue
                    if name not in carried:
                        for writer, crossed in entries:
                            if crossed:
                                hazards.setdefault(writer, set()).add(name)
                    # This launch is a new boundary behind every surviving
                    # write; launch-carried fields are rewritten by the
                    # command itself and stop being setup-attributed.
                    if name in carried:
                        state.pop((acc, name))
                    else:
                        state[(acc, name)] = frozenset(
                            (writer, True) for writer, _ in entries
                        )
                return state
            if isinstance(op, accfg.ResetOp):
                state_type = op.state.type
                if isinstance(state_type, accfg.StateType):
                    accelerator = state_type.accelerator
                    state = {
                        key: entries
                        for key, entries in state.items()
                        if key[0] != accelerator
                    }
                return state
            if isinstance(op, func.CallOp):
                # The callee may launch or reset anything: assume every
                # tracked write is invalidated rather than guess.
                return {}
            return state

    solver = Solver()
    solver.run_block(fn.regions[0].block, solver.initial())
    return hazards


@register_lint(
    "ACCFG011",
    "retention-hazard",
    "a launch relies on setup fields retained across an earlier launch",
)
def _check_retention_hazard(
    module: Operation, context: LintContext, engine: DiagnosticEngine
) -> None:
    for fn in _functions(module):
        hazards = _retention_hazards(fn)
        for op in fn.walk():
            fields = hazards.get(op)
            if not fields:
                continue
            listing = ", ".join(f"'{name}'" for name in sorted(fields))
            engine.warning(
                "ACCFG011",
                f"setup on '{op.accelerator}' writes field(s) {listing} that "
                "later launches rely on across a launch boundary without an "
                "intervening write",
                op,
            ).with_note(
                "retained state is an optimization asset (dedup/hoisting "
                "depend on it) but a resilience hazard: a device power cycle "
                "between launches silently corrupts these fields unless a "
                "recovery runtime re-establishes them (see `python -m repro "
                "faults` and docs/ROBUSTNESS.md)"
            )


# Importing this module registers ACCFG001..ACCFG009 and ACCFG011; the
# roofline lint (ACCFG010) and the cost-engine opportunity lints
# (ACCFG012..ACCFG015) live in their own modules and register themselves
# on import.
from . import cost_lints, roofline_lint  # noqa: E402,F401
