"""ACCFG012–015 — opportunity lints on the static cost engine.

Where ACCFG001–009 flag *hazards* (programs that may be wrong), these four
flag *money left on the table*: configuration cost that is statically
provable to be removable by one of the shipped optimization passes.  Each
diagnostic names the pass (and ``--pipeline`` spelling) that eliminates the
cost it points at.

========= =========================== ========
ACCFG012  missed-dedup                warning
ACCFG013  loop-invariant-setup        warning
ACCFG014  serialized-setup            warning
ACCFG015  redundant-re-setup          warning
========= =========================== ========

All four are powered by the provenance the cost engine keeps per
setup/launch site (:class:`~repro.analysis.cost.CostSite`) and by the
shared :class:`~repro.analysis.dataflow.ForwardSolver` infrastructure.
"""

from __future__ import annotations

from ..dialects import accfg, arith, func, scf
from ..ir.block import Block
from ..ir.operation import Operation
from ..ir.ssa import OpResult, SSAValue
from .dataflow import ForwardSolver, defined_outside
from .diagnostics import DiagnosticEngine
from .lints import LintContext, _functions, register_lint


# ---------------------------------------------------------------------------
# ACCFG012: statically-provable missed dedup
# ---------------------------------------------------------------------------


def _chain_register_file(
    setup: accfg.SetupOp,
) -> dict[str, tuple[int, SSAValue]]:
    """What each register provably holds just before ``setup`` runs,
    following its ``in_state`` chain of earlier setups.

    Maps field name to ``(constant value, writing SSA value)``; a
    non-constant write to a field removes it (the contents are unknown).
    """
    chain: list[accfg.SetupOp] = []
    state = setup.in_state
    while isinstance(state, OpResult) and isinstance(state.op, accfg.SetupOp):
        chain.append(state.op)
        state = state.op.in_state
    held: dict[str, tuple[int, SSAValue]] = {}
    for earlier in reversed(chain):
        for name, value in earlier.fields:
            constant = arith.constant_value(value)
            if constant is None:
                held.pop(name, None)
            else:
                held[name] = (constant, value)
    return held


@register_lint(
    "ACCFG012",
    "missed-dedup",
    "a setup rewrites a register with a constant it provably already holds",
)
def _check_missed_dedup(
    module: Operation, context: LintContext, engine: DiagnosticEngine
) -> None:
    for op in module.walk():
        if not isinstance(op, accfg.SetupOp) or op.in_state is None:
            continue
        held = _chain_register_file(op)
        redundant = []
        for name, value in op.fields:
            previous = held.get(name)
            if previous is None:
                continue
            constant = arith.constant_value(value)
            if constant is None or constant != previous[0]:
                continue
            if previous[1] is value:
                # The very same SSA value: ACCFG007's (cheaper) territory.
                continue
            redundant.append(name)
        if redundant:
            listing = ", ".join(f"'{name}'" for name in redundant)
            engine.warning(
                "ACCFG012",
                f"setup on '{op.accelerator}' rewrites field(s) {listing} "
                "with constant value(s) the register provably already holds",
                op,
            ).with_note(
                "fix: `python -m repro opt --pipeline dedup` (DedupPass) "
                "folds constants through the state chain and drops "
                "register writes that cannot change the device (Section 5.4)"
            )


# ---------------------------------------------------------------------------
# ACCFG013: loop-invariant setup not hoisted
# ---------------------------------------------------------------------------


def _guarded_by_if_inside(op: Operation, loop: scf.ForOp) -> bool:
    """True when an ``scf.if`` sits between ``op`` and ``loop``."""
    current = op.parent_op
    while current is not None and current is not loop:
        if isinstance(current, scf.IfOp):
            return True
        current = current.parent_op
    return False


@register_lint(
    "ACCFG013",
    "loop-invariant-setup",
    "a setup inside a loop depends only on values defined outside it",
)
def _check_loop_invariant_setup(
    module: Operation, context: LintContext, engine: DiagnosticEngine
) -> None:
    analysis = context.analyses.cost(module)
    for summary in analysis.summaries():
        for site in summary.sites:
            if site.kind != "setup":
                continue
            loop = site.innermost_loop
            if loop is None:
                continue
            op = site.op
            assert isinstance(op, accfg.SetupOp)
            if _guarded_by_if_inside(op, loop):
                continue  # conditionally executed: hoisting changes behavior
            operands_invariant = all(
                defined_outside(value, loop) for value in op.field_values
            ) and (op.in_state is None or defined_outside(op.in_state, loop))
            if not operands_invariant:
                continue
            per_iteration = site.config_bytes
            engine.warning(
                "ACCFG013",
                f"setup on '{op.accelerator}' is loop-invariant: every "
                "operand is defined outside the enclosing loop, yet its "
                f"{per_iteration} configuration byte(s) are re-sent every "
                "iteration",
                op,
            ).with_note(
                f"this op repeats {site.trip_count} time(s) as written; "
                "fix: LICMPass hoists it above the loop so configuration "
                "is paid once (Section 5.3) — run `python -m repro opt "
                "--pipeline full`, which threads the state chain "
                "(TraceStatesPass) LICM needs, or `--pipeline licm` on "
                "already-threaded IR"
            )


# ---------------------------------------------------------------------------
# ACCFG014: overlappable setup serialized behind compute
# ---------------------------------------------------------------------------


def _block_accfg_sequence(
    block: Block,
) -> list[tuple[str, str, Operation]]:
    """The (kind, accelerator, op) sequence of direct accfg ops in a block."""
    sequence: list[tuple[str, str, Operation]] = []
    for op in block.ops:
        if isinstance(op, accfg.SetupOp):
            sequence.append(("setup", op.accelerator, op))
        elif isinstance(op, accfg.LaunchOp):
            sequence.append(("launch", op.accelerator, op))
        elif isinstance(op, accfg.AwaitOp):
            sequence.append(("await", op.accelerator, op))
    return sequence


@register_lint(
    "ACCFG014",
    "serialized-setup",
    "a setup waits for compute it could run concurrently with",
)
def _check_serialized_setup(
    module: Operation, context: LintContext, engine: DiagnosticEngine
) -> None:
    from ..backends.base import get_accelerator_or_none

    def concurrent(accelerator: str) -> bool:
        spec = get_accelerator_or_none(accelerator)
        return spec is not None and spec.concurrent_config

    for container in module.walk():
        blocks = [
            block for region in container.regions for block in region.blocks
        ]
        for block in blocks:
            sequence = _block_accfg_sequence(block)
            # Straight-line: await A ... setup A ... launch A.  The setup
            # only starts after the await drained the device, but a
            # concurrent-config interface accepts register writes while the
            # previous launch still computes.
            last_await: dict[str, int] = {}
            pending_setup: dict[str, tuple[int, Operation]] = {}
            for index, (kind, accelerator, op) in enumerate(sequence):
                if kind == "await":
                    last_await[accelerator] = index
                    pending_setup.pop(accelerator, None)
                elif kind == "setup":
                    if accelerator in last_await and concurrent(accelerator):
                        pending_setup[accelerator] = (index, op)
                elif kind == "launch":
                    pending = pending_setup.pop(accelerator, None)
                    if pending is not None:
                        _emit_serialized(engine, pending[1], accelerator)
            # Loop-carried: a loop body of the shape setup A ... launch A
            # ... await A re-configures at the top of the next iteration
            # only after this iteration's await — the same serialization,
            # wrapped around the back edge.
            parent = block.parent_op
            if isinstance(parent, scf.ForOp):
                kinds_by_acc: dict[str, list[str]] = {}
                ops_by_acc: dict[str, Operation] = {}
                for kind, accelerator, op in sequence:
                    kinds_by_acc.setdefault(accelerator, []).append(kind)
                    if kind == "setup":
                        ops_by_acc.setdefault(accelerator, op)
                for accelerator, kinds in kinds_by_acc.items():
                    if not concurrent(accelerator):
                        continue
                    try:
                        setup_at = kinds.index("setup")
                        launch_at = kinds.index("launch", setup_at)
                        kinds.index("await", launch_at)
                    except ValueError:
                        continue
                    _emit_serialized(
                        engine, ops_by_acc[accelerator], accelerator
                    )


def _emit_serialized(
    engine: DiagnosticEngine, op: Operation, accelerator: str
) -> None:
    engine.warning(
        "ACCFG014",
        f"setup on '{accelerator}' is serialized behind the previous "
        "launch's compute although the interface accepts configuration "
        "concurrently",
        op,
    ).with_note(
        "fix: `python -m repro opt --pipeline overlap` (OverlapPass) "
        "double-buffers the configuration stream behind the running "
        "launch, hiding it entirely when compute is long enough "
        "(Section 5.5)"
    )


# ---------------------------------------------------------------------------
# ACCFG015: redundant full re-setup where retention suffices
# ---------------------------------------------------------------------------


class _ConstantRegisterFile(ForwardSolver):
    """Forward lattice: which ``(accelerator, field)`` registers provably
    hold which constant at each program point.  Join is agreement."""

    def initial(self) -> object:
        return {}

    def join(self, a: object, b: object) -> object:
        assert isinstance(a, dict) and isinstance(b, dict)
        return {
            key: value
            for key, value in a.items()
            if b.get(key, object()) == value
        }

    def transfer(self, op: Operation, state: object) -> object:
        from ..passes.trace_states import op_preserves_state

        assert isinstance(state, dict)
        if isinstance(op, accfg.SetupOp):
            state = dict(state)
            for name, value in op.fields:
                constant = arith.constant_value(value)
                key = (op.accelerator, name)
                if constant is None:
                    state.pop(key, None)
                else:
                    state[key] = constant
            return state
        if isinstance(op, accfg.LaunchOp):
            state = dict(state)
            for name, value in op.fields:
                constant = arith.constant_value(value)
                key = (op.accelerator, name)
                if constant is None:
                    state.pop(key, None)
                else:
                    state[key] = constant
            return state
        if isinstance(op, accfg.ResetOp):
            state_type = op.state.type
            if isinstance(state_type, accfg.StateType):
                accelerator = state_type.accelerator
                return {
                    key: value
                    for key, value in state.items()
                    if key[0] != accelerator
                }
            return state
        if isinstance(op, accfg.AwaitOp):
            return state
        if isinstance(op, func.CallOp):
            return {}  # the callee may reconfigure anything
        touched = {acc for acc, _ in state}
        if touched:
            kept = {
                acc for acc in touched if op_preserves_state(op, acc)
            }
            if kept != touched:
                return {
                    key: value for key, value in state.items() if key[0] in kept
                }
        return state


@register_lint(
    "ACCFG015",
    "redundant-re-setup",
    "a full re-setup rewrites exactly what the device provably retains",
)
def _check_redundant_re_setup(
    module: Operation, context: LintContext, engine: DiagnosticEngine
) -> None:
    for fn in _functions(module):
        solver = _ConstantRegisterFile()
        solver.run_function(fn)
        for op in fn.walk():
            if (
                not isinstance(op, accfg.SetupOp)
                or op.in_state is not None
                or not op.fields
            ):
                continue
            held = solver.input_states.get(op)
            if not isinstance(held, dict) or not held:
                continue
            retained = []
            for name, value in op.fields:
                constant = arith.constant_value(value)
                if constant is None:
                    retained = []
                    break
                if held.get((op.accelerator, name)) != constant:
                    retained = []
                    break
                retained.append(name)
            if retained:
                engine.warning(
                    "ACCFG015",
                    f"full re-setup on '{op.accelerator}' rewrites the exact "
                    "register contents the device provably still holds — "
                    "retention makes every byte redundant",
                    op,
                ).with_note(
                    "fix: `python -m repro opt --pipeline full` "
                    "(TraceStatesPass threads the state chain, DedupPass "
                    "then drops the redundant writes); the device retains "
                    "configuration across launches (Section 5.4)"
                )
