"""State-chain linearity checks (paper, Section 5.1).

The accfg dialect requires that per accelerator only one state variable is
*live* at any program point: a state dies when a later setup for the same
accelerator supersedes it, so reading a superseded state — launching from
it, or forking two setups off the same input state — breaks the linear
chain.  This used to live inside ``passes/trace_states.py`` as a list of
strings; it now produces structured :class:`Diagnostic` objects (codes
ACCFG004/ACCFG005), and no longer passes silently over accelerator names
that are not registered with any backend (ACCFG009).
"""

from __future__ import annotations

from ..dialects import accfg, func, scf
from ..ir.operation import Operation
from ..ir.ssa import SSAValue
from .diagnostics import Diagnostic, DiagnosticEngine

FORKED_CHAIN = "ACCFG004"
SUPERSEDED_LAUNCH = "ACCFG005"
UNKNOWN_ACCELERATOR = "ACCFG009"


def _branch_path(op: Operation) -> list[tuple[Operation, int]]:
    """The ``scf.if`` ancestors of ``op``, each with which region holds it."""
    path: list[tuple[Operation, int]] = []
    current: Operation | None = op
    while current is not None:
        block = current.parent
        parent_op = block.parent_op if block is not None else None
        if isinstance(parent_op, scf.IfOp):
            region = block.parent
            index = next(
                i for i, r in enumerate(parent_op.regions) if r is region
            )
            path.append((parent_op, index))
        current = parent_op
    return path


def _mutually_exclusive(a: Operation, b: Operation) -> bool:
    """True when ``a`` and ``b`` sit in different branches of one ``scf.if``
    — no execution runs both, so they cannot conflict over a state."""
    branches_a = dict(_branch_path(a))
    return any(
        branches_a.get(ifop, index) != index for ifop, index in _branch_path(b)
    )


def linearity_diagnostics(
    module: Operation, engine: DiagnosticEngine | None = None
) -> list[Diagnostic]:
    """Errors for every break of the linear state chain.

    Untraced frontend output usually violates linearity trivially
    (disconnected setups have no ``in_state`` and never supersede anything);
    after ``accfg-trace-states`` the chain must be linear.
    """
    engine = engine or DiagnosticEngine()
    start = len(engine.diagnostics)

    def visit_function(fn: func.FuncOp) -> None:
        # state value -> the setups that superseded it.  Consumers on
        # mutually exclusive branches of one scf.if do not conflict: dedup's
        # hoist-into-branches deliberately clones a setup into both arms.
        superseders: dict[SSAValue, list[Operation]] = {}

        def conflicts(value: SSAValue, op: Operation) -> bool:
            return any(
                not _mutually_exclusive(prior, op)
                for prior in superseders.get(value, ())
            )

        for op in fn.walk():
            if isinstance(op, accfg.SetupOp):
                in_state = op.in_state
                if in_state is not None:
                    if conflicts(in_state, op):
                        engine.error(
                            FORKED_CHAIN,
                            f"setup for '{op.accelerator}' consumes an "
                            "already-superseded state (forked chain)",
                            op,
                        ).with_note(
                            "each setup supersedes its input state; thread the "
                            "newest state into every later setup"
                        )
                    superseders.setdefault(in_state, []).append(op)
            elif isinstance(op, accfg.LaunchOp):
                if conflicts(op.state, op):
                    engine.error(
                        SUPERSEDED_LAUNCH,
                        f"launch on '{op.accelerator}' reads a superseded state",
                        op,
                    ).with_note(
                        "the launch would observe stale configuration; launch "
                        "from the most recent setup's output state"
                    )

    for op in module.walk():
        if isinstance(op, func.FuncOp) and not op.is_declaration:
            visit_function(op)
    return engine.diagnostics[start:]


def unknown_accelerator_diagnostics(
    module: Operation, engine: DiagnosticEngine | None = None
) -> list[Diagnostic]:
    """Warnings for accfg ops naming accelerators no backend registers.

    Analyses and lowering silently skip such ops; surfacing the name
    mismatch here catches typos like ``"gemini"`` for ``"gemmini"``.
    """
    from ..backends.base import get_accelerator_or_none, registered_accelerators

    engine = engine or DiagnosticEngine()
    start = len(engine.diagnostics)
    reported: set[str] = set()
    for op in module.walk():
        name: str | None = None
        if isinstance(op, (accfg.SetupOp, accfg.LaunchOp, accfg.AwaitOp)):
            name = op.accelerator
        elif isinstance(op, accfg.ResetOp):
            state_type = op.state.type
            if isinstance(state_type, accfg.StateType):
                name = state_type.accelerator
        if name is None or name in reported:
            continue
        if get_accelerator_or_none(name) is None:
            reported.add(name)
            known = ", ".join(registered_accelerators())
            engine.warning(
                UNKNOWN_ACCELERATOR,
                f"accelerator '{name}' is not registered with any backend",
                op,
            ).with_note(f"registered accelerators: {known}")
    return engine.diagnostics[start:]
