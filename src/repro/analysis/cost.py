"""The static configuration-cost engine (paper, Section 4).

An abstract interpretation over accfg IR that predicts, per function, what
the co-simulator will charge — configuration instructions and bytes, launch
counts, host compute — *without running anything*.  Loop trip counts are
carried symbolically: constant-bound ``scf.for`` loops contribute exact
counts, loops bounded by a function argument contribute a polynomial in
that argument (``arg0``, ``arg1``, ...), and everything else widens to an
interval.  ``scf.if`` joins both arms into a min/max interval.

The cost domain is three-layered:

* :class:`SymExpr` — a polynomial with nonnegative integer coefficients
  over nonnegative parameters.  Parameters model loop trip counts, which
  are never negative (``argN`` binds to ``max(0, args[N])``), so addition
  and multiplication are monotone and termwise min/max of coefficients
  gives sound interval bounds.
* :class:`CostRange` — a ``[lo, hi]`` interval of :class:`SymExpr`, with
  ``hi = None`` meaning unbounded (a loop whose bound the analysis cannot
  see).  Exact programs keep ``lo == hi`` through every operation.
* :class:`CostVector` — per ``(accelerator, category)`` instruction-count
  ranges plus configuration bytes, launch counts, and static datapath ops.

Every setup/launch/await/reset contributes a :class:`CostSite` carrying
provenance: the op, its instruction stream, its enclosing loops and trip
counts, and whether it executes conditionally.  Sites power the opportunity
lints (ACCFG010, ACCFG012–015) and the ``python -m repro cost`` table.

The per-op charges mirror :mod:`repro.interp.interpreter` /
:mod:`repro.sim.cosim` exactly; the static-cost oracle
(:func:`compare_with_simulation`) holds the two sides together — on every
fuzzed program the prediction must bound (and, with concrete trip counts,
equal) what the simulator measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, TypeVar

from ..dialects import accfg, arith, func, scf
from ..ir.operation import Operation, UnregisteredOp
from ..ir.ssa import BlockArgument, SSAValue
from ..isa.instructions import Instr, InstrCategory

K = TypeVar("K")

if TYPE_CHECKING:  # pragma: no cover
    from ..backends.base import AcceleratorSpec
    from ..ir.block import Block
    from ..sim.cosim import CoSimulator

# A monomial: parameter names, sorted, with repetition for powers.
Monomial = tuple[str, ...]

#: Instruction-count key: ``(Instr.accelerator, Instr.category)`` — exactly
#: how charged instruction records are attributed (Gemmini's ``stage-rs``
#: staging writes carry ``accelerator=None``, so a per-accelerator-only
#: grouping would lose them).
InstrKey = tuple["str | None", InstrCategory]


# ---------------------------------------------------------------------------
# Symbolic domain
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SymExpr:
    """A polynomial over nonnegative integer parameters.

    ``terms`` maps each monomial to a positive integer coefficient; the
    empty monomial ``()`` is the constant term.  The zero polynomial has no
    terms.  Coefficients and parameters are nonnegative, so the polynomial
    is monotone in every parameter — the soundness basis for the interval
    arithmetic in :class:`CostRange`.
    """

    terms: tuple[tuple[Monomial, int], ...] = ()

    @staticmethod
    def _make(terms: Mapping[Monomial, int]) -> "SymExpr":
        return SymExpr(
            tuple(sorted((m, c) for m, c in terms.items() if c != 0))
        )

    @staticmethod
    def const(value: int) -> "SymExpr":
        if value < 0:
            raise ValueError(f"cost expressions are nonnegative, got {value}")
        return SymExpr._make({(): value})

    @staticmethod
    def param(name: str) -> "SymExpr":
        return SymExpr._make({(name,): 1})

    @property
    def is_zero(self) -> bool:
        return not self.terms

    def constant_value(self) -> int | None:
        """The polynomial's value when it has no parameters, else None."""
        if not self.terms:
            return 0
        if len(self.terms) == 1 and self.terms[0][0] == ():
            return self.terms[0][1]
        return None

    def parameters(self) -> frozenset[str]:
        return frozenset(name for mono, _ in self.terms for name in mono)

    def __add__(self, other: "SymExpr") -> "SymExpr":
        if not self.terms:
            return other
        if not other.terms:
            return self
        mine, theirs = self.terms, other.terms
        if len(mine) == 1 and len(theirs) == 1 and mine[0][0] == theirs[0][0]:
            # The overwhelmingly common case: const + const (or two like
            # monomials) — skip the dict round-trip.
            return SymExpr(((mine[0][0], mine[0][1] + theirs[0][1]),))
        merged = dict(mine)
        for mono, coeff in theirs:
            merged[mono] = merged.get(mono, 0) + coeff
        return SymExpr._make(merged)

    def __mul__(self, other: "SymExpr") -> "SymExpr":
        mine, theirs = self.terms, other.terms
        if len(mine) == 1 and len(theirs) == 1 and (
            not mine[0][0] or not theirs[0][0]
        ):
            # Trip-count scaling is overwhelmingly const × const or
            # const × monomial; coefficients are positive by invariant,
            # so the single product term needs no re-sorting or filtering.
            return SymExpr(
                ((mine[0][0] or theirs[0][0], mine[0][1] * theirs[0][1]),)
            )
        product: dict[Monomial, int] = {}
        for mono_a, coeff_a in self.terms:
            for mono_b, coeff_b in other.terms:
                mono = tuple(sorted(mono_a + mono_b))
                product[mono] = product.get(mono, 0) + coeff_a * coeff_b
        return SymExpr._make(product)

    def scaled(self, factor: int) -> "SymExpr":
        return SymExpr._make({mono: coeff * factor for mono, coeff in self.terms})

    def evaluate(self, bindings: Mapping[str, int]) -> int:
        """The polynomial's value under concrete parameter bindings."""
        total = 0
        for mono, coeff in self.terms:
            value = coeff
            for name in mono:
                value *= bindings[name]
            total += value
        return total

    def __str__(self) -> str:
        if not self.terms:
            return "0"
        parts: list[str] = []
        for mono, coeff in self.terms:
            if not mono:
                parts.append(str(coeff))
            else:
                factors = "*".join(mono)
                parts.append(factors if coeff == 1 else f"{coeff}*{factors}")
        return " + ".join(parts)


def _termwise(
    a: SymExpr, b: SymExpr, pick: Callable[[int, int], int]
) -> SymExpr:
    """Coefficient-wise combination of two polynomials (min or max).

    With nonnegative coefficients and parameters, the termwise minimum is a
    sound lower bound for ``min(a, b)`` and the termwise maximum a sound
    upper bound for ``max(a, b)`` at every parameter valuation.
    """
    terms_a = dict(a.terms)
    terms_b = dict(b.terms)
    return SymExpr._make(
        {
            mono: pick(terms_a.get(mono, 0), terms_b.get(mono, 0))
            for mono in set(terms_a) | set(terms_b)
        }
    )


_ZERO_EXPR = SymExpr.const(0)


@dataclass(frozen=True)
class CostRange:
    """An interval ``[lo, hi]`` of symbolic costs; ``hi = None`` = unbounded."""

    lo: SymExpr = _ZERO_EXPR
    hi: SymExpr | None = _ZERO_EXPR

    @staticmethod
    def exact(value: "SymExpr | int") -> "CostRange":
        expr = SymExpr.const(value) if isinstance(value, int) else value
        return CostRange(expr, expr)

    @property
    def is_exact(self) -> bool:
        return self.hi is not None and self.hi == self.lo

    @property
    def is_zero(self) -> bool:
        return self.lo.is_zero and self.hi is not None and self.hi.is_zero

    def __add__(self, other: "CostRange") -> "CostRange":
        hi = (
            None
            if self.hi is None or other.hi is None
            else self.hi + other.hi
        )
        return CostRange(self.lo + other.lo, hi)

    def times(self, other: "CostRange") -> "CostRange":
        """Interval product (e.g. trip count × per-iteration cost)."""
        lo = self.lo * other.lo
        if self.hi is not None and other.hi is not None:
            return CostRange(lo, self.hi * other.hi)
        # One side is unbounded: the product is too, unless the other side
        # is exactly zero (an unbounded loop around a free body costs 0).
        if (self.hi is not None and self.hi.is_zero) or (
            other.hi is not None and other.hi.is_zero
        ):
            return CostRange(lo, _ZERO_EXPR)
        return CostRange(lo, None)

    def join(self, other: "CostRange") -> "CostRange":
        """Interval hull: the range covering either alternative."""
        hi = (
            None
            if self.hi is None or other.hi is None
            else _termwise(self.hi, other.hi, max)
        )
        return CostRange(_termwise(self.lo, other.lo, min), hi)

    def substitute(self, mapping: Mapping[str, "CostRange"]) -> "CostRange":
        """Replace parameters by cost ranges (call-site inlining)."""
        lo = _substitute_bound(self.lo, mapping, upper=False)
        assert lo is not None
        hi = (
            None
            if self.hi is None
            else _substitute_bound(self.hi, mapping, upper=True)
        )
        return CostRange(lo, hi)

    def evaluate(self, bindings: Mapping[str, int]) -> tuple[int, int | None]:
        return (
            self.lo.evaluate(bindings),
            None if self.hi is None else self.hi.evaluate(bindings),
        )

    def __str__(self) -> str:
        if self.is_exact:
            return str(self.lo)
        hi = "inf" if self.hi is None else str(self.hi)
        return f"[{self.lo}, {hi}]"


def _substitute_bound(
    expr: SymExpr, mapping: Mapping[str, CostRange], upper: bool
) -> SymExpr | None:
    """One bound of ``expr`` after substituting parameter ranges.

    Monotonicity makes this simple: the lower bound substitutes every
    mapped parameter's ``lo``, the upper bound its ``hi`` (returning None —
    unbounded — as soon as an unbounded parameter appears with a nonzero
    coefficient).
    """
    total = _ZERO_EXPR
    for mono, coeff in expr.terms:
        term = SymExpr.const(coeff)
        for name in mono:
            replacement = mapping.get(name)
            if replacement is None:
                factor: SymExpr | None = SymExpr.param(name)
            elif upper:
                factor = replacement.hi
            else:
                factor = replacement.lo
            if factor is None:
                return None
            term = term * factor
        total = total + term
    return total


_ZERO_RANGE = CostRange()
_ONE_RANGE = CostRange.exact(1)

#: Unit cost vectors per instruction tuple (see ``CostVector.for_instrs``).
#: Bounded so adversarial inputs (e.g. fuzzed field-name combinations)
#: cannot grow it without limit; on overflow new tuples are simply not
#: memoized.
_FOR_INSTRS_MEMO: dict[tuple[Instr, ...], "CostVector"] = {}
_FOR_INSTRS_MEMO_CAP = 4096


# ---------------------------------------------------------------------------
# Cost vectors
# ---------------------------------------------------------------------------


def _merge(
    a: Mapping[K, CostRange],
    b: Mapping[K, CostRange],
    combine: Callable[[CostRange, CostRange], CostRange],
) -> dict[K, CostRange]:
    merged: dict[K, CostRange] = {}
    for key in set(a) | set(b):
        merged[key] = combine(
            a.get(key, _ZERO_RANGE), b.get(key, _ZERO_RANGE)
        )
    return {key: value for key, value in merged.items() if not value.is_zero}


def _iadd_map(
    target: dict[K, CostRange], source: Mapping[K, CostRange]
) -> None:
    """Pointwise-add ``source`` into ``target`` (see ``CostVector.iadd``)."""
    for key, value in source.items():
        current = target.get(key)
        target[key] = value if current is None else current + value


@dataclass
class CostVector:
    """Everything one program region is predicted to charge.

    ``instrs`` counts host instruction records per :data:`InstrKey`;
    ``config_bytes`` sums the configuration payload per accelerator;
    ``launches`` counts device launches; ``ops`` sums statically-known
    datapath operations per accelerator (``indeterminate_ops`` lists
    accelerators where some launch's op count is not statically known).
    ``unmodeled`` names ops the engine cannot cost — any entry voids the
    prediction (the oracle skips such programs).
    """

    instrs: dict[InstrKey, CostRange] = field(default_factory=dict)
    config_bytes: dict["str | None", CostRange] = field(default_factory=dict)
    launches: dict[str, CostRange] = field(default_factory=dict)
    ops: dict[str, CostRange] = field(default_factory=dict)
    indeterminate_ops: set[str] = field(default_factory=set)
    unmodeled: set[str] = field(default_factory=set)

    @staticmethod
    def zero() -> "CostVector":
        return CostVector()

    @staticmethod
    def for_instrs(
        instrs: Iterable[Instr], count: CostRange = _ONE_RANGE
    ) -> "CostVector":
        # The accumulation hot path: every accfg op in every walked function
        # converts an instruction list into a vector, and those lists are
        # the handful of per-spec cached streams (setup/launch/sync per
        # field-name combination), so the symbolic sums repeat endlessly.
        # Memoize the unit vector per instruction tuple and hand out copies
        # (callers mutate the result, e.g. `_launch_cost`).
        key = tuple(instrs)
        base = _FOR_INSTRS_MEMO.get(key)
        if base is None:
            base = CostVector()
            for instr in key:
                ikey: InstrKey = (instr.accelerator, instr.category)
                base.instrs[ikey] = base.instrs.get(ikey, _ZERO_RANGE) + _ONE_RANGE
                if instr.config_bytes:
                    bucket = instr.accelerator
                    base.config_bytes[bucket] = base.config_bytes.get(
                        bucket, _ZERO_RANGE
                    ) + CostRange.exact(instr.config_bytes)
            if len(_FOR_INSTRS_MEMO) < _FOR_INSTRS_MEMO_CAP:
                _FOR_INSTRS_MEMO[key] = base
        if count is _ONE_RANGE:
            return base.copy()
        return base.scale(count)

    def copy(self) -> "CostVector":
        """Shallow per-map copy (entries are immutable ranges)."""
        return CostVector(
            instrs=dict(self.instrs),
            config_bytes=dict(self.config_bytes),
            launches=dict(self.launches),
            ops=dict(self.ops),
            indeterminate_ops=set(self.indeterminate_ops),
            unmodeled=set(self.unmodeled),
        )

    @staticmethod
    def unmodeled_op(name: str) -> "CostVector":
        vector = CostVector()
        vector.unmodeled.add(name)
        return vector

    def iadd(self, other: "CostVector") -> None:
        """In-place pointwise sum into a privately-owned accumulator.

        ``block_cost`` folds one vector per op; rebuilding the merged maps
        per op (as ``__add__`` must) makes that fold quadratic in block
        length.  The accumulator is freshly created by its caller and never
        shared, so mutating it is safe; ``other`` is only read.
        """
        _iadd_map(self.instrs, other.instrs)
        _iadd_map(self.config_bytes, other.config_bytes)
        _iadd_map(self.launches, other.launches)
        _iadd_map(self.ops, other.ops)
        self.indeterminate_ops |= other.indeterminate_ops
        self.unmodeled |= other.unmodeled

    def __add__(self, other: "CostVector") -> "CostVector":
        # Pointwise sum; unlike the interval-hull join, a missing key is a
        # true zero under addition, so the plain dict merge is sound (and
        # much cheaper than _merge on this, the accumulation hot path).
        def add_maps(
            a: Mapping[K, CostRange], b: Mapping[K, CostRange]
        ) -> dict[K, CostRange]:
            if not b:
                return dict(a)
            if not a:
                return dict(b)
            merged = dict(a)
            for key, value in b.items():
                current = merged.get(key)
                merged[key] = value if current is None else current + value
            return merged

        return CostVector(
            instrs=add_maps(self.instrs, other.instrs),
            config_bytes=add_maps(self.config_bytes, other.config_bytes),
            launches=add_maps(self.launches, other.launches),
            ops=add_maps(self.ops, other.ops),
            indeterminate_ops=self.indeterminate_ops | other.indeterminate_ops,
            unmodeled=self.unmodeled | other.unmodeled,
        )

    def scale(self, trips: CostRange) -> "CostVector":
        """The cost of executing this vector ``trips`` times."""

        def times(mapping: Mapping[K, CostRange]) -> dict[K, CostRange]:
            scaled = {k: trips.times(v) for k, v in mapping.items()}
            # A zero trip count must leave no entries behind (the loop
            # body never runs), matching what the accumulation fast path
            # relies on: recorded entries are nonzero.
            return {k: v for k, v in scaled.items() if not v.is_zero}

        return CostVector(
            instrs=times(self.instrs),
            config_bytes=times(self.config_bytes),
            launches=times(self.launches),
            ops=times(self.ops),
            indeterminate_ops=set(self.indeterminate_ops),
            unmodeled=set(self.unmodeled),
        )

    def join(self, other: "CostVector") -> "CostVector":
        hull = lambda a, b: a.join(b)  # noqa: E731
        return CostVector(
            instrs=_merge(self.instrs, other.instrs, hull),
            config_bytes=_merge(self.config_bytes, other.config_bytes, hull),
            launches=_merge(self.launches, other.launches, hull),
            ops=_merge(self.ops, other.ops, hull),
            indeterminate_ops=self.indeterminate_ops | other.indeterminate_ops,
            unmodeled=self.unmodeled | other.unmodeled,
        )

    def substitute(self, mapping: Mapping[str, CostRange]) -> "CostVector":
        subst = lambda value: value.substitute(mapping)  # noqa: E731
        return CostVector(
            instrs={k: subst(v) for k, v in self.instrs.items()},
            config_bytes={k: subst(v) for k, v in self.config_bytes.items()},
            launches={k: subst(v) for k, v in self.launches.items()},
            ops={k: subst(v) for k, v in self.ops.items()},
            indeterminate_ops=set(self.indeterminate_ops),
            unmodeled=set(self.unmodeled),
        )

    def category_total(self, *categories: InstrCategory) -> CostRange:
        total = _ZERO_RANGE
        for (_, category), count in self.instrs.items():
            if category in categories:
                total = total + count
        return total

    def config_bytes_total(self) -> CostRange:
        total = _ZERO_RANGE
        for count in self.config_bytes.values():
            total = total + count
        return total

    @property
    def is_exact(self) -> bool:
        values: list[CostRange] = [
            *self.instrs.values(),
            *self.config_bytes.values(),
            *self.launches.values(),
        ]
        return all(value.is_exact for value in values) and not self.unmodeled


# ---------------------------------------------------------------------------
# Provenance
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CostSite:
    """One accfg op's contribution to the cost, with provenance.

    ``instrs``/``config_bytes``/``ops`` are per *single execution* of the
    op; ``trip_count`` is the (symbolic) number of executions implied by the
    enclosing loops, and ``conditional`` records whether an ``scf.if``
    guards the op (making the trip count an upper bound).
    """

    op: Operation
    kind: str  # "setup" | "launch" | "await" | "reset"
    accelerator: str
    instrs: tuple[Instr, ...]
    config_bytes: int
    trip_count: CostRange
    loops: tuple[scf.ForOp, ...]  # outermost → innermost
    conditional: bool
    ops: int | None = None  # launch datapath ops when statically known

    @property
    def loop_depth(self) -> int:
        return len(self.loops)

    @property
    def innermost_loop(self) -> "scf.ForOp | None":
        return self.loops[-1] if self.loops else None


def enclosing_loops(op: Operation) -> tuple[scf.ForOp, ...]:
    """The ``scf.for`` ops around ``op``, outermost first."""
    loops: list[scf.ForOp] = []
    current = op.parent_op
    while current is not None:
        if isinstance(current, scf.ForOp):
            loops.append(current)
        current = current.parent_op
    return tuple(reversed(loops))


def loop_depth(op: Operation) -> int:
    """How many ``scf.for`` loops enclose ``op``."""
    return len(enclosing_loops(op))


@dataclass
class FunctionCostSummary:
    """The cost analysis result for one function."""

    function: func.FuncOp
    total: CostVector
    sites: tuple[CostSite, ...]

    @property
    def name(self) -> str:
        return self.function.sym_name

    @property
    def is_modeled(self) -> bool:
        return not self.total.unmodeled

    def parameters(self) -> list[str]:
        names: set[str] = set()
        for count in self.total.instrs.values():
            names |= count.lo.parameters()
            if count.hi is not None:
                names |= count.hi.parameters()
        return sorted(names)

    def config_instrs(self) -> CostRange:
        """Configuration-stream instructions (register writes + launches)."""
        return self.total.category_total(
            InstrCategory.SETUP, InstrCategory.LAUNCH
        )

    def calc_instrs(self) -> CostRange:
        return self.total.category_total(InstrCategory.CALC)

    def config_cycles(
        self, cycles_per_category: Mapping[InstrCategory, float]
    ) -> tuple[float, float | None]:
        """Predicted config cycles (Eq. 4: setup + launch + calc) under
        concrete ``bindings``-free evaluation — exact only for parameterless
        functions; use :func:`compare_with_simulation` otherwise."""
        lo_total = 0.0
        hi_total: float | None = 0.0
        for (_, category), count in self.total.instrs.items():
            if category not in (
                InstrCategory.SETUP,
                InstrCategory.LAUNCH,
                InstrCategory.CALC,
            ):
                continue
            per = cycles_per_category[category]
            lo, hi = count.evaluate({})
            lo_total += lo * per
            if hi_total is not None:
                hi_total = None if hi is None else hi_total + hi * per
        return lo_total, hi_total


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


_CONTROL_INSTR = Instr("ctrl", InstrCategory.CONTROL)
_FOREIGN_INSTR = Instr("foreign", InstrCategory.COMPUTE)


class CostAnalysis:
    """Per-module static cost analysis.

    One instance is valid for one IR snapshot; the :class:`AnalysisManager`
    caches instances per module scope and drops them when a pass reports
    mutating the module.  Function summaries are computed on demand and
    memoized; calls inline the callee's summary with parameter
    substitution (recursion and declarations are unmodeled).
    """

    def __init__(self, module: Operation) -> None:
        from ..interp.interpreter import config_feeding_ops

        self.module = module
        self._functions: dict[str, func.FuncOp] = {}
        for op in module.walk():
            if isinstance(op, func.FuncOp):
                self._functions.setdefault(op.sym_name, op)
        self._feeding = config_feeding_ops(module)
        self._summaries: dict[str, FunctionCostSummary] = {}
        self._in_progress: set[str] = set()

    def functions(self) -> list[func.FuncOp]:
        return [fn for fn in self._functions.values() if not fn.is_declaration]

    def summary(self, fn: "func.FuncOp | str") -> FunctionCostSummary | None:
        """The cost summary for ``fn`` (None for unknown/declared names)."""
        if isinstance(fn, str):
            found = self._functions.get(fn)
            if found is None:
                return None
            fn = found
        if fn.is_declaration:
            return None
        name = fn.sym_name
        cached = self._summaries.get(name)
        if cached is not None and cached.function is fn:
            return cached
        self._in_progress.add(name)
        try:
            walker = _FunctionWalker(self, fn)
            total = walker.block_cost(fn.body)
            summary = FunctionCostSummary(
                function=fn, total=total, sites=tuple(walker.sites)
            )
        finally:
            self._in_progress.discard(name)
        self._summaries[name] = summary
        return summary

    def summaries(self) -> list[FunctionCostSummary]:
        result = []
        for fn in self.functions():
            summary = self.summary(fn)
            if summary is not None:
                result.append(summary)
        return result


class _FunctionWalker:
    """Structural walk of one function body, mirroring the interpreter's
    charging discipline op for op."""

    def __init__(self, analysis: CostAnalysis, fn: func.FuncOp) -> None:
        self.analysis = analysis
        self.fn = fn
        self.sites: list[CostSite] = []
        self._loops: list[scf.ForOp] = []
        self._trip_stack: list[CostRange] = []
        self._cond_depth = 0
        self._params: dict[SSAValue, str] = {
            arg: f"arg{i}" for i, arg in enumerate(fn.args)
        }

    # -- helpers ---------------------------------------------------------

    def _spec(self, accelerator: str) -> "AcceleratorSpec | None":
        from ..backends.base import get_accelerator_or_none

        return get_accelerator_or_none(accelerator)

    def _site_trips(self) -> CostRange:
        trips = _ONE_RANGE
        for loop_trips in self._trip_stack:
            trips = trips.times(loop_trips)
        return trips

    def _record_site(
        self,
        op: Operation,
        kind: str,
        accelerator: str,
        instrs: Iterable[Instr],
        ops: int | None = None,
    ) -> None:
        instr_tuple = tuple(instrs)
        self.sites.append(
            CostSite(
                op=op,
                kind=kind,
                accelerator=accelerator,
                instrs=instr_tuple,
                config_bytes=sum(i.config_bytes for i in instr_tuple),
                trip_count=self._site_trips(),
                loops=tuple(self._loops),
                conditional=self._cond_depth > 0,
                ops=ops,
            )
        )

    def _scalar_cost(self, op: Operation) -> CostVector:
        category = (
            InstrCategory.CALC
            if op in self.analysis._feeding
            else InstrCategory.COMPUTE
        )
        return CostVector.for_instrs([Instr("alu", category)])

    def trip_range(self, op: scf.ForOp) -> CostRange:
        """The symbolic iteration count of one ``scf.for``."""
        lb = arith.constant_value(op.lb)
        ub = arith.constant_value(op.ub)
        step = arith.constant_value(op.step)
        if lb is not None and ub is not None and step is not None and step > 0:
            return CostRange.exact(max(0, -((lb - ub) // step)))
        if (
            lb == 0
            and step == 1
            and isinstance(op.ub, BlockArgument)
            and self._params.get(op.ub) is not None
        ):
            # `for i = 0 to %argN step 1` runs max(0, argN) times — exactly
            # the value the parameter binds to.
            return CostRange.exact(SymExpr.param(self._params[op.ub]))
        return CostRange(_ZERO_EXPR, None)

    # -- the walk --------------------------------------------------------

    def block_cost(self, block: "Block") -> CostVector:
        total = CostVector.zero()
        for op in block.ops:
            total.iadd(self.op_cost(op))
        return total

    def op_cost(self, op: Operation) -> CostVector:
        if isinstance(
            op, (arith.ConstantOp, arith.BinaryOp, arith.CmpiOp, arith.SelectOp)
        ):
            return self._scalar_cost(op)
        if isinstance(op, scf.ForOp):
            trips = self.trip_range(op)
            self._loops.append(op)
            self._trip_stack.append(trips)
            try:
                body = self.block_cost(op.body)
            finally:
                self._loops.pop()
                self._trip_stack.pop()
            # Each iteration pays the back-edge's increment + compare&branch.
            per_iteration = body + CostVector.for_instrs(
                [_CONTROL_INSTR, _CONTROL_INSTR]
            )
            return per_iteration.scale(trips)
        if isinstance(op, scf.IfOp):
            self._cond_depth += 1
            try:
                then_cost = self.block_cost(op.then_block)
                else_cost = (
                    self.block_cost(op.else_block)
                    if op.has_else
                    else CostVector.zero()
                )
            finally:
                self._cond_depth -= 1
            branch = then_cost.join(else_cost)
            return CostVector.for_instrs([_CONTROL_INSTR]) + branch
        if isinstance(op, (scf.YieldOp, func.ReturnOp)):
            return CostVector.zero()
        if isinstance(op, func.CallOp):
            return self._call_cost(op)
        if isinstance(op, accfg.SetupOp):
            spec = self._spec(op.accelerator)
            if spec is None:
                return CostVector.unmodeled_op(
                    f"setup on unknown accelerator '{op.accelerator}'"
                )
            instrs = spec.setup_instrs_cached(tuple(op.field_names))
            self._record_site(op, "setup", op.accelerator, instrs)
            return CostVector.for_instrs(instrs)
        if isinstance(op, accfg.LaunchOp):
            return self._launch_cost(op)
        if isinstance(op, accfg.AwaitOp):
            spec = self._spec(op.accelerator)
            if spec is None:
                return CostVector.unmodeled_op(
                    f"await on unknown accelerator '{op.accelerator}'"
                )
            instrs = spec.sync_instrs_cached()
            self._record_site(op, "await", op.accelerator, instrs)
            return CostVector.for_instrs(instrs)
        if isinstance(op, accfg.ResetOp):
            state_type = op.state.type
            accelerator = (
                state_type.accelerator
                if isinstance(state_type, accfg.StateType)
                else "?"
            )
            self._record_site(op, "reset", accelerator, [_CONTROL_INSTR])
            return CostVector.for_instrs([_CONTROL_INSTR])
        # Extension point mirroring the interpreter's `interpret` hook: ops
        # that charge custom instruction streams advertise them statically
        # via `cost_instrs()`.
        cost_hook = getattr(op, "cost_instrs", None)
        if cost_hook is not None:
            return CostVector.for_instrs(cost_hook())
        if getattr(op, "interpret", None) is not None:
            return CostVector.unmodeled_op(
                f"'{op.name}' (interpret hook without cost_instrs)"
            )
        if isinstance(op, UnregisteredOp):
            if accfg.get_effects(op) is not None and not op.results:
                return CostVector.for_instrs([_FOREIGN_INSTR])
            return CostVector.unmodeled_op(f"'{op.op_name}'")
        return CostVector.unmodeled_op(f"'{op.name}'")

    def _launch_cost(self, op: accfg.LaunchOp) -> CostVector:
        spec = self._spec(op.accelerator)
        if spec is None:
            return CostVector.unmodeled_op(
                f"launch on unknown accelerator '{op.accelerator}'"
            )
        field_names = [name for name, _ in op.fields]
        instrs: list[Instr] = []
        if field_names:
            instrs.extend(spec.launch_field_instrs_cached(tuple(field_names)))
        instrs.extend(spec.launch_instrs_cached())
        from .roofline_lint import static_launch_config

        static_ops = spec.static_launch_ops(static_launch_config(op))
        self._record_site(op, "launch", op.accelerator, instrs, ops=static_ops)
        vector = CostVector.for_instrs(instrs)
        vector.launches[op.accelerator] = (
            vector.launches.get(op.accelerator, _ZERO_RANGE) + _ONE_RANGE
        )
        if static_ops is None:
            vector.indeterminate_ops.add(op.accelerator)
        else:
            vector.ops[op.accelerator] = vector.ops.get(
                op.accelerator, _ZERO_RANGE
            ) + CostRange.exact(static_ops)
        return vector

    def _call_cost(self, op: func.CallOp) -> CostVector:
        overhead = CostVector.for_instrs([_CONTROL_INSTR, _CONTROL_INSTR])
        callee = self.analysis._functions.get(op.callee)
        if callee is None or callee.is_declaration:
            return overhead + CostVector.unmodeled_op(
                f"call to unknown/declared '@{op.callee}'"
            )
        if op.callee in self.analysis._in_progress:
            return overhead + CostVector.unmodeled_op(
                f"recursive call to '@{op.callee}'"
            )
        summary = self.analysis.summary(callee)
        if summary is None:
            return overhead + CostVector.unmodeled_op(f"call '@{op.callee}'")
        mapping: dict[str, CostRange] = {}
        for index, operand in enumerate(op.operands):
            name = f"arg{index}"
            constant = arith.constant_value(operand)
            if constant is not None:
                # Callee parameters model trip counts, which clamp at zero.
                mapping[name] = CostRange.exact(max(0, constant))
            elif operand in self._params:
                mapping[name] = CostRange.exact(
                    SymExpr.param(self._params[operand])
                )
            else:
                mapping[name] = CostRange(_ZERO_EXPR, None)
        return overhead + summary.total.substitute(mapping)


# ---------------------------------------------------------------------------
# The static-cost oracle
# ---------------------------------------------------------------------------


def parameter_bindings(args: Iterable[int]) -> dict[str, int]:
    """Concrete values for the ``argN`` parameters of a ``main`` summary.

    Parameters stand for trip counts of ``for i = 0 to %argN step 1``
    loops, which clamp at zero for negative bounds.
    """
    return {f"arg{i}": max(0, int(value)) for i, value in enumerate(args)}


def _check_range(
    problems: list[str], label: str, count: CostRange, measured: int,
    bindings: Mapping[str, int],
) -> None:
    lo, hi = count.evaluate(bindings)
    if measured < lo or (hi is not None and measured > hi):
        predicted = str(lo) if lo == hi else f"[{lo}, {'inf' if hi is None else hi}]"
        problems.append(
            f"{label}: simulator measured {measured}, static model "
            f"predicts {predicted}"
        )


def compare_with_simulation(
    module: Operation,
    sim: "CoSimulator",
    args: Iterable[int] = (),
    function: str = "main",
) -> list[str]:
    """Mismatches between the static prediction and a finished fault-free
    simulation of ``function`` (empty = the prediction holds).

    Checks instruction counts per ``(accelerator, category)``, configuration
    bytes per accelerator, launch counts per device, and the resulting
    configuration cycles.  Programs containing unmodeled ops are skipped
    (returns ``[]``): the model makes no claim about them.
    """
    analysis = CostAnalysis(module)
    summary = analysis.summary(function)
    if summary is None or not summary.is_modeled:
        return []
    total = summary.total
    bindings = parameter_bindings(args)
    problems: list[str] = []

    measured_instrs: dict[InstrKey, int] = {}
    measured_bytes: dict["str | None", int] = {}
    for instr in sim.trace.instrs:
        key: InstrKey = (instr.accelerator, instr.category)
        measured_instrs[key] = measured_instrs.get(key, 0) + 1
        if instr.config_bytes:
            measured_bytes[instr.accelerator] = (
                measured_bytes.get(instr.accelerator, 0) + instr.config_bytes
            )

    for key in sorted(
        set(total.instrs) | set(measured_instrs),
        key=lambda k: (k[0] or "", k[1].value),
    ):
        _check_range(
            problems,
            f"instrs ({key[0] or 'host'}, {key[1].value})",
            total.instrs.get(key, _ZERO_RANGE),
            measured_instrs.get(key, 0),
            bindings,
        )
    for bucket in sorted(
        set(total.config_bytes) | set(measured_bytes), key=lambda b: b or ""
    ):
        _check_range(
            problems,
            f"config bytes on '{bucket or 'host'}'",
            total.config_bytes.get(bucket, _ZERO_RANGE),
            measured_bytes.get(bucket, 0),
            bindings,
        )
    measured_launches = {
        name: device.launch_count for name, device in sim.devices.items()
    }
    for name in sorted(set(total.launches) | set(measured_launches)):
        _check_range(
            problems,
            f"launches on '{name}'",
            total.launches.get(name, _ZERO_RANGE),
            measured_launches.get(name, 0),
            bindings,
        )

    # Config cycles (Eq. 4): implied by the per-category counts, checked
    # explicitly so the cycle-level guarantee is stated in cycle units.
    model = sim.cost_model
    config_categories = (
        InstrCategory.SETUP,
        InstrCategory.LAUNCH,
        InstrCategory.CALC,
    )
    lo_cycles, hi_cycles = 0.0, 0.0
    unbounded = False
    for (_, category), count in total.instrs.items():
        if category not in config_categories:
            continue
        per = model.category_overrides.get(category, model.cycles_per_instr)
        lo, hi = count.evaluate(bindings)
        lo_cycles += lo * per
        if hi is None:
            unbounded = True
        else:
            hi_cycles += hi * per
    measured_cycles = sum(
        model.category_overrides.get(i.category, model.cycles_per_instr)
        for i in sim.trace.instrs
        if i.category in config_categories
    )
    epsilon = 1e-6 * max(1.0, measured_cycles)
    if measured_cycles < lo_cycles - epsilon or (
        not unbounded and measured_cycles > hi_cycles + epsilon
    ):
        hi_text = "inf" if unbounded else f"{hi_cycles:.0f}"
        problems.append(
            f"config cycles: simulator measured {measured_cycles:.0f}, "
            f"static model predicts [{lo_cycles:.0f}, {hi_text}]"
        )
    return problems


# ---------------------------------------------------------------------------
# The `repro cost` report
# ---------------------------------------------------------------------------


def format_cost_table(analysis: CostAnalysis) -> str:
    """A per-function static roofline table for ``python -m repro cost``."""
    from ..backends.base import get_accelerator_or_none
    from ..core.analysis import roofline_for_spec
    from ..core.roofline import Boundness

    lines: list[str] = []
    for summary in analysis.summaries():
        params = summary.parameters()
        header = f"@{summary.name}"
        if params:
            header += f"  (parameters: {', '.join(params)})"
        lines.append(header)
        if not summary.is_modeled:
            for reason in sorted(summary.total.unmodeled):
                lines.append(f"  unmodeled: {reason}")
            lines.append("")
            continue
        lines.append(
            f"  host instrs : config {summary.config_instrs()}, "
            f"calc {summary.calc_instrs()}, "
            f"compute {summary.total.category_total(InstrCategory.COMPUTE)}, "
            f"control {summary.total.category_total(InstrCategory.CONTROL)}, "
            f"sync {summary.total.category_total(InstrCategory.SYNC)}"
        )
        lines.append(
            f"  config bytes: {summary.total.config_bytes_total()}"
        )
        accelerators = sorted(
            set(summary.total.launches)
            | (set(summary.total.config_bytes) - {None})
        )
        for name in accelerators:
            if name is None:
                continue
            launches = summary.total.launches.get(name, _ZERO_RANGE)
            bytes_range = summary.total.config_bytes.get(name, _ZERO_RANGE)
            line = (
                f"  {name:12s}: launches {launches}, config bytes {bytes_range}"
            )
            spec = get_accelerator_or_none(name)
            ops = summary.total.ops.get(name)
            if (
                spec is not None
                and ops is not None
                and name not in summary.total.indeterminate_ops
                and ops.is_exact
                and bytes_range.is_exact
            ):
                ops_value = ops.lo.constant_value()
                bytes_value = bytes_range.lo.constant_value()
                if ops_value and bytes_value:
                    i_oc = ops_value / bytes_value
                    roofline = roofline_for_spec(spec, spec.host_cost_model())
                    verdict = (
                        "CONFIG-BOUND"
                        if roofline.boundness(i_oc) is Boundness.CONFIG_BOUND
                        else "compute-bound"
                    )
                    line += (
                        f", ops {ops_value}, I_OC {i_oc:.2f} ops/B "
                        f"(ridge {roofline.knee_intensity:.2f}) -> {verdict}"
                    )
            elif name in summary.total.indeterminate_ops:
                line += ", ops indeterminate"
            lines.append(line)
        lines.append(f"  sites       : {len(summary.sites)}")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
