"""Diagnostics: structured findings with severities, codes, and locations.

A :class:`Diagnostic` ties a stable code (``ACCFG001`` ...) and severity to
the operation that triggered it, with optional follow-on notes (fix-its,
model numbers).  :class:`DiagnosticEngine` collects and deduplicates them and
renders the conventional compiler-style report::

    warning[ACCFG001]: launch on 'gemmini' is never awaited
      --> demo.mlir:4:5
      |  %t = accfg.launch(%s) : !accfg.state<"gemmini"> ...
      = note: insert `accfg.await` on the token, or drop the result if the
        launch is intentionally fire-and-forget
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..ir.location import SourceLoc
from ..ir.operation import Operation
from ..ir.printer import print_operation


class Severity(enum.IntEnum):
    """Ordered so that comparisons read naturally: ERROR > WARNING > NOTE."""

    NOTE = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass
class Diagnostic:
    """One finding, anchored to the operation that triggered it."""

    code: str
    severity: Severity
    message: str
    op: Operation | None = None
    notes: list[str] = field(default_factory=list)

    @property
    def loc(self) -> SourceLoc | None:
        return self.op.loc if self.op is not None else None

    def with_note(self, note: str) -> "Diagnostic":
        self.notes.append(note)
        return self

    def excerpt(self) -> str | None:
        """The first line of the offending op's textual form."""
        if self.op is None:
            return None
        text = print_operation(self.op)
        first = text.splitlines()[0] if text else ""
        return first.strip() or None

    def to_dict(self) -> dict[str, object]:
        """Machine-readable form — the ``repro lint --json`` schema."""
        fixit = next(
            (
                note
                for note in self.notes
                if note.startswith("fix:") or "--pipeline" in note
            ),
            None,
        )
        return {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "loc": str(self.loc) if self.loc is not None else None,
            "excerpt": self.excerpt(),
            "notes": list(self.notes),
            "fixit": fixit,
        }

    def format(self, show_excerpt: bool = True) -> str:
        lines = [f"{self.severity}[{self.code}]: {self.message}"]
        if self.loc is not None:
            lines.append(f"  --> {self.loc}")
        if show_excerpt:
            excerpt = self.excerpt()
            if excerpt is not None:
                lines.append(f"  |  {excerpt}")
        for note in self.notes:
            lines.append(f"  = note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()


class DiagnosticEngine:
    """Collects diagnostics, deduplicating repeats on the same op."""

    def __init__(self) -> None:
        self.diagnostics: list[Diagnostic] = []
        self._seen: set[tuple[str, int, str]] = set()

    def emit(self, diag: Diagnostic) -> Diagnostic:
        key = (diag.code, id(diag.op), diag.message)
        if key not in self._seen:
            self._seen.add(key)
            self.diagnostics.append(diag)
        return diag

    def error(self, code: str, message: str, op: Operation | None = None) -> Diagnostic:
        return self.emit(Diagnostic(code, Severity.ERROR, message, op))

    def warning(self, code: str, message: str, op: Operation | None = None) -> Diagnostic:
        return self.emit(Diagnostic(code, Severity.WARNING, message, op))

    def note(self, code: str, message: str, op: Operation | None = None) -> Diagnostic:
        return self.emit(Diagnostic(code, Severity.NOTE, message, op))

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity is severity)

    def format_all(self) -> str:
        return "\n\n".join(d.format() for d in self.diagnostics)


def error_code_counts(diagnostics: list[Diagnostic]) -> dict[str, int]:
    """Per-code tally of error-severity diagnostics (for before/after gates)."""
    counts: dict[str, int] = {}
    for diag in diagnostics:
        if diag.severity is Severity.ERROR:
            counts[diag.code] = counts.get(diag.code, 0) + 1
    return counts
