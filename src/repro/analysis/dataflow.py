"""Reusable dataflow analyses over the structured IR.

Three layers live here:

* :class:`ForwardSolver` — a generic forward worklist/fixpoint solver over
  the structured control flow the dialects use (``scf.for`` with a bounded
  back-edge fixpoint, ``scf.if`` with a branch join).  Lints subclass it
  with a lattice (``initial``/``join``/``transfer``).
* :class:`AwaitedTokensAnalysis` — token liveness: which launch tokens *may*
  already have been awaited at each program point (used by the double-await
  lint).
* :class:`KnownFieldsAnalysis` — the demand-driven "what does each
  configuration register hold" analysis the dedup pass is built on, lifted
  here so lints and passes share one implementation — plus
  :class:`ObservedFieldsAnalysis`, its dual: which fields written into a
  state may still be observed by a launch downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dialects import accfg, func, scf
from ..ir.block import Block
from ..ir.operation import Operation
from ..ir.ssa import BlockArgument, OpResult, SSAValue


def defined_outside(value: SSAValue, op: Operation) -> bool:
    """True when ``value``'s definition is not nested inside ``op``."""
    owner = value.owner
    if isinstance(owner, Block):
        block: Block | None = owner
        while block is not None:
            parent_op = block.parent_op
            if parent_op is op:
                return False
            block = parent_op.parent if parent_op is not None else None
        return True
    current: Operation | None = owner
    while current is not None:
        if current is op:
            return False
        current = current.parent_op
    return True


# ---------------------------------------------------------------------------
# Generic forward solver
# ---------------------------------------------------------------------------


class ForwardSolver:
    """Forward dataflow over single-block structured regions.

    Subclasses define the lattice: ``initial()`` (the state at function
    entry), ``join(a, b)`` (the merge at control-flow joins), and
    ``transfer(op, state)`` (the effect of one op).  ``back_edge`` filters
    the state carried around a loop (dropping facts about values that are
    redefined each iteration).  The solver records the *input* state of
    every op it visits in ``input_states``, joined over all paths, so
    clients can query "what may hold before this op".
    """

    #: bound on the loop fixpoint; lattices here are finite and shallow, so
    #: a handful of rounds always converges — the bound is a safety net
    max_loop_rounds = 8

    def __init__(self) -> None:
        self.input_states: dict[Operation, object] = {}

    # -- lattice hooks (subclass API) -----------------------------------

    def initial(self) -> object:
        raise NotImplementedError

    def join(self, a: object, b: object) -> object:
        raise NotImplementedError

    def transfer(self, op: Operation, state: object) -> object:
        return state

    def back_edge(self, loop: scf.ForOp, state: object) -> object:
        """Filter the state flowing around a loop's back edge."""
        return state

    # -- driver ----------------------------------------------------------

    def run_block(self, block: Block, state: object) -> object:
        for op in list(block.ops):
            state = self.run_op(op, state)
        return state

    def run_op(self, op: Operation, state: object) -> object:
        prev = self.input_states.get(op)
        self.input_states[op] = state if prev is None else self.join(prev, state)
        if isinstance(op, scf.ForOp):
            return self._run_loop(op, state)
        if isinstance(op, scf.IfOp):
            then_out = self.run_block(op.then_block, state)
            else_out = self.run_block(op.else_block, state) if op.has_else else state
            return self.transfer(op, self.join(then_out, else_out))
        if op.regions:
            # Unknown region-bearing op: analyze its interior from scratch,
            # assume nothing about what survives it.
            for region in op.regions:
                for block in region.blocks:
                    self.run_block(block, self.initial())
            return self.transfer(op, state)
        return self.transfer(op, state)

    def _run_loop(self, op: scf.ForOp, state: object) -> object:
        entry = state
        body_out = entry
        for _ in range(self.max_loop_rounds):
            body_out = self.run_block(op.body, entry)
            merged = self.join(entry, self.back_edge(op, body_out))
            if merged == entry:
                break
            entry = merged
        # The loop may run zero times, so the pre-loop state joins in.
        exit_state = self.join(state, self.back_edge(op, body_out))
        return self.transfer(op, exit_state)

    def run_function(self, fn: Operation) -> object:
        """Analyze one function body (any op with a single-block region)."""
        self.input_states.clear()
        return self.run_block(fn.regions[0].block, self.initial())


class AwaitedTokensAnalysis(ForwardSolver):
    """Which launch tokens *may* already have been awaited at each point.

    A may-analysis (union join): ``token in input_states[some_await]`` means
    there is a path on which that token was awaited before, i.e. the await
    is a double await on that path.  Tokens defined inside a loop body name
    a fresh launch each iteration, so they are dropped at the back edge.
    """

    def initial(self) -> frozenset[SSAValue]:
        return frozenset()

    def join(self, a: object, b: object) -> object:
        assert isinstance(a, frozenset) and isinstance(b, frozenset)
        return a | b

    def transfer(self, op: Operation, state: object) -> object:
        assert isinstance(state, frozenset)
        if isinstance(op, accfg.AwaitOp):
            return state | {op.token}
        return state

    def back_edge(self, loop: scf.ForOp, state: object) -> object:
        assert isinstance(state, frozenset)
        return frozenset(v for v in state if defined_outside(v, loop))


# ---------------------------------------------------------------------------
# Known-fields dataflow (shared with the dedup pass)
# ---------------------------------------------------------------------------


@dataclass
class KnownFields:
    """What the analysis knows about configuration register contents.

    ``is_top`` marks the optimistic lattice top used to break cycles through
    loop-carried states: "every field holds whatever you need, except the
    explicit overrides in ``fields``".  Concrete answers always have
    ``is_top=False``, with ``fields`` mapping field name -> SSA value.
    """

    is_top: bool = False
    fields: dict[str, SSAValue] = field(default_factory=dict)

    @staticmethod
    def top() -> "KnownFields":
        return KnownFields(is_top=True)

    @staticmethod
    def bottom() -> "KnownFields":
        return KnownFields()

    def updated(self, new_fields: dict[str, SSAValue]) -> "KnownFields":
        merged = dict(self.fields)
        merged.update(new_fields)
        return KnownFields(self.is_top, merged)


def intersect(a: KnownFields, b: KnownFields) -> KnownFields:
    if a.is_top and b.is_top:
        return KnownFields(
            True, {k: v for k, v in a.fields.items() if b.fields.get(k, v) is v}
        )
    if a.is_top:
        a, b = b, a
    if b.is_top:
        # b knows everything except where it overrides with a different value.
        return KnownFields(
            False,
            {k: v for k, v in a.fields.items() if b.fields.get(k, v) is v},
        )
    return KnownFields(
        False, {k: v for k, v in a.fields.items() if b.fields.get(k) is v}
    )


class KnownFieldsAnalysis:
    """Computes register contents represented by a state SSA value."""

    def __init__(self, accelerator: str) -> None:
        self.accelerator = accelerator
        self._cache: dict[SSAValue, KnownFields] = {}
        self._in_progress: set[SSAValue] = set()
        self._tainted = False

    def known(self, state: SSAValue | None) -> KnownFields:
        if state is None:
            return KnownFields.bottom()
        if state in self._cache:
            return self._cache[state]
        if state in self._in_progress:
            # Optimistic cycle break.  The answer below this point depends on
            # *which* value is currently being resolved, so it must not be
            # cached — a TOP-seeded partial result recorded globally would
            # poison later queries with a different recursion root.
            self._tainted = True
            return KnownFields.top()
        self._in_progress.add(state)
        outer_tainted = self._tainted
        self._tainted = False
        try:
            result = self._compute(state)
        finally:
            self._in_progress.discard(state)
        if not self._tainted:
            self._cache[state] = result
        self._tainted = self._tainted or outer_tainted
        return result

    def _compute(self, state: SSAValue) -> KnownFields:
        if isinstance(state, OpResult):
            op = state.op
            if isinstance(op, accfg.SetupOp):
                base = self.known(op.in_state)
                return base.updated(dict(op.fields))
            if isinstance(op, scf.IfOp):
                index = state.index
                then_yield = op.then_block.terminator
                else_yield = op.else_block.terminator if op.has_else else None
                if not isinstance(then_yield, scf.YieldOp) or not isinstance(
                    else_yield, scf.YieldOp
                ):
                    return KnownFields.bottom()
                return intersect(
                    self.known(then_yield.operands[index]),
                    self.known(else_yield.operands[index]),
                )
            if isinstance(op, scf.ForOp):
                index = state.index
                return intersect(
                    self.known(op.iter_inits[index]),
                    self.known(op.yield_op.operands[index]),
                )
            return KnownFields.bottom()
        if isinstance(state, BlockArgument):
            block = state.block
            parent = block.parent_op
            if isinstance(parent, scf.ForOp) and block is parent.body:
                if state.index == 0:
                    return KnownFields.bottom()  # induction variable, not state
                iter_index = state.index - 1
                return intersect(
                    self.known(parent.iter_inits[iter_index]),
                    self.known(parent.yield_op.operands[iter_index]),
                )
            return KnownFields.bottom()
        return KnownFields.bottom()


# ---------------------------------------------------------------------------
# Observed-fields dataflow (dead-field detection)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FieldSet:
    """A set of field names, closed under complement of a finite set.

    Finite sets (``is_top=False``) list the names they contain.  Co-finite
    sets (``is_top=True``) contain *all* fields except ``names`` — this is
    what masking produces: a launch observes everything (TOP), a setup in
    between masks exactly the fields it rewrites (TOP minus those names).
    """

    is_top: bool = False
    names: frozenset[str] = frozenset()

    @staticmethod
    def top() -> "FieldSet":
        return FieldSet(is_top=True)

    @staticmethod
    def bottom() -> "FieldSet":
        return FieldSet()

    def union(self, other: "FieldSet") -> "FieldSet":
        if self.is_top and other.is_top:
            return FieldSet(True, self.names & other.names)
        if self.is_top:
            return FieldSet(True, self.names - other.names)
        if other.is_top:
            return FieldSet(True, other.names - self.names)
        return FieldSet(False, self.names | other.names)

    def minus(self, names: set[str]) -> "FieldSet":
        if self.is_top:
            return FieldSet(True, self.names | frozenset(names))
        return FieldSet(False, self.names - frozenset(names))

    def contains(self, name: str) -> bool:
        if self.is_top:
            return name not in self.names
        return name in self.names


class RegisterLivenessAnalysis:
    """Backward may-read-before-overwrite liveness of the *register file*.

    :class:`ObservedFieldsAnalysis` reasons along one SSA state chain; this
    analysis reasons about the shared physical register file of one
    accelerator, which *every* chain on that accelerator reads and writes.
    That distinction matters for programs that open fresh state chains
    (``accfg.setup`` with no input state) and still rely on registers a
    previous chain wrote — the register-retention idiom that makes partial
    configuration pay off (paper Section 5.4), and exactly what must be
    re-issued when a device loses state.

    ``live_in[op]`` answers: which fields may some later launch of this
    accelerator read before any rewrite, as of the program point *just
    before* ``op``?  A launch reads the entire register file (``TOP``) except
    the launch-carried fields it writes itself; a setup kills the fields it
    writes; ``accfg.reset`` kills everything (contents are declared
    undefined); calls and unknown region ops are conservatively ``TOP``.
    ``live_in`` is joined (union) over loop-fixpoint rounds, so it is a
    may-result: a field it excludes is provably rewritten on every path
    before any launch can read it.
    """

    max_loop_rounds = 8

    def __init__(self, accelerator: str) -> None:
        self.accelerator = accelerator
        self.live_in: dict[Operation, FieldSet] = {}

    def run_function(self, fn: Operation) -> FieldSet:
        """Analyze one function body; returns liveness at function entry."""
        return self.run_block(fn.regions[0].block, FieldSet.bottom())

    def run_block(self, block: Block, live: FieldSet) -> FieldSet:
        for op in reversed(list(block.ops)):
            live = self.run_op(op, live)
        return live

    def run_op(self, op: Operation, live: FieldSet) -> FieldSet:
        if isinstance(op, scf.IfOp):
            then_live = self.run_block(op.then_block, live)
            else_live = (
                self.run_block(op.else_block, live) if op.has_else else live
            )
            result = then_live.union(else_live)
        elif isinstance(op, scf.ForOp):
            entry = live  # zero-trip: the loop may contribute nothing
            for _ in range(self.max_loop_rounds):
                merged = entry.union(self.run_block(op.body, entry))
                if merged == entry:
                    break
                entry = merged
            result = entry
        elif isinstance(op, accfg.SetupOp):
            if op.accelerator == self.accelerator:
                result = live.minus(set(op.field_names))
            else:
                result = live
        elif isinstance(op, accfg.LaunchOp):
            if op.accelerator == self.accelerator:
                # The launch commits its carried fields, then reads the
                # whole register file.
                result = FieldSet.top().minus({name for name, _ in op.fields})
            else:
                result = live
        elif isinstance(op, accfg.ResetOp):
            state_type = op.state.type
            if getattr(state_type, "accelerator", None) == self.accelerator:
                result = FieldSet.bottom()
            else:
                result = live
        elif op.regions or isinstance(op, func.CallOp):
            # Unknown region-bearing ops and calls may do anything.
            result = FieldSet.top()
        else:
            result = live
        previous = self.live_in.get(op)
        self.live_in[op] = result if previous is None else result.union(previous)
        return result


class ObservedFieldsAnalysis:
    """Which fields carried by a state value may still be *observed*.

    A field write is observed when some launch can read it before another
    setup overwrites it.  Walks the def-use chain forward from a state
    value; any escape (a launch, a call, an unknown consumer) observes
    everything (TOP), a consuming setup masks the fields it rewrites, and a
    reset observes nothing.  Cycles through loop-carried states resolve to
    TOP, which is the safe direction for a lint: never call a field dead
    unless it provably is.
    """

    def __init__(self) -> None:
        self._cache: dict[SSAValue, FieldSet] = {}
        self._in_progress: set[SSAValue] = set()

    def observed(self, state: SSAValue) -> FieldSet:
        if state in self._cache:
            return self._cache[state]
        if state in self._in_progress:
            return FieldSet.top()
        self._in_progress.add(state)
        try:
            result = self._compute(state)
        finally:
            self._in_progress.discard(state)
        self._cache[state] = result
        return result

    def _compute(self, state: SSAValue) -> FieldSet:
        result = FieldSet.bottom()
        for use in state.uses:
            user = use.operation
            if isinstance(user, accfg.SetupOp):
                downstream = self.observed(user.out_state)
                result = result.union(downstream.minus(set(user.field_names)))
            elif isinstance(user, accfg.ResetOp):
                continue
            elif isinstance(user, scf.YieldOp):
                parent = user.parent_op
                if isinstance(parent, scf.IfOp):
                    result = result.union(self.observed(parent.results[use.index]))
                elif isinstance(parent, scf.ForOp):
                    result = result.union(self.observed(parent.results[use.index]))
                    result = result.union(
                        self.observed(parent.body.args[use.index + 1])
                    )
                else:
                    return FieldSet.top()
            elif isinstance(user, scf.ForOp):
                if use.index < 3:
                    return FieldSet.top()  # a loop bound?! — escape
                iter_index = use.index - 3
                result = result.union(self.observed(user.results[iter_index]))
                result = result.union(self.observed(user.body.args[iter_index + 1]))
            else:
                # Launches, calls, returns, unknown ops: everything escapes.
                return FieldSet.top()
            if result.is_top and not result.names:
                return result  # already "everything": no use can add more
        return result
