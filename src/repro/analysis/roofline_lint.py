"""ACCFG010 — the static configuration-roofline lint (paper, Section 4).

For every ``scf.for`` body that launches accelerator work, compute the
*static* operation-to-configuration intensity

    I_OC = datapath ops per iteration / configuration bytes per iteration

from the IR alone (constant-folding setup/launch fields through the state
chain), place it against the target's theoretical configuration roofline
(``BW_config`` from the spec's instruction costs, Eq. 2/3), and warn when
the loop sits left of the ridge point — i.e. the kernel is provably
configuration-bound no matter how fast the datapath is.  This reproduces
the paper's Example 4.6 verdict for a tiny-tile Gemmini matmul without
running anything.
"""

from __future__ import annotations

from ..dialects import accfg, arith, scf
from ..ir.operation import Operation
from ..ir.ssa import OpResult
from .diagnostics import DiagnosticEngine
from .lints import LintContext, register_lint


def static_launch_config(launch: accfg.LaunchOp) -> dict[str, int]:
    """Constant configuration fields visible to a launch: the chain of
    setups feeding its state, overlaid with its own launch-semantic fields.
    Non-constant fields are simply absent."""
    config: dict[str, int] = {}
    chain: list[accfg.SetupOp] = []
    state = launch.state
    while isinstance(state, OpResult) and isinstance(state.op, accfg.SetupOp):
        chain.append(state.op)
        state = state.op.in_state
    for setup in reversed(chain):
        for name, value in setup.fields:
            constant = arith.constant_value(value)
            if constant is not None:
                config[name] = constant
    for name, value in launch.fields:
        constant = arith.constant_value(value)
        if constant is not None:
            config[name] = constant
    return config


@register_lint(
    "ACCFG010",
    "config-roofline",
    "a loop's static I_OC sits left of the configuration ridge point",
)
def _check_config_roofline(
    module: Operation, context: LintContext, engine: DiagnosticEngine
) -> None:
    from ..backends.base import get_accelerator_or_none
    from ..core.analysis import roofline_for_spec
    from ..core.roofline import Boundness
    from .cost import CostSite

    # Cost-engine sites grouped by their innermost enclosing loop: that is
    # exactly "the accfg ops of one iteration of this loop, nested ifs
    # included, nested loops assessed on their own".
    analysis = context.analyses.cost(module)
    by_loop: dict[int, dict[str, list[CostSite]]] = {}
    for summary in analysis.summaries():
        for site in summary.sites:
            loop = site.innermost_loop
            if loop is None or site.kind == "reset":
                continue
            by_loop.setdefault(id(loop), {}).setdefault(
                site.accelerator, []
            ).append(site)
    for loop in module.walk():
        if not isinstance(loop, scf.ForOp):
            continue
        groups = by_loop.get(id(loop))
        if not groups:
            continue
        for accelerator, sites in sorted(groups.items()):
            if context.target is not None and accelerator != context.target:
                continue
            spec = get_accelerator_or_none(accelerator)
            if spec is None:
                continue
            launches = [site for site in sites if site.kind == "launch"]
            if not launches:
                continue
            if any(site.ops is None for site in launches):
                continue  # some launch's op count is not statically known
            config_bytes = sum(site.config_bytes for site in sites)
            total_ops = sum(site.ops or 0 for site in launches)
            if config_bytes <= 0 or total_ops <= 0:
                continue
            i_oc = total_ops / config_bytes
            roofline = roofline_for_spec(spec, spec.host_cost_model())
            if roofline.boundness(i_oc) is not Boundness.CONFIG_BOUND:
                continue
            knee = roofline.knee_intensity
            engine.warning(
                "ACCFG010",
                f"loop body is configuration-bound on '{accelerator}': "
                f"static I_OC ≈ {i_oc:.1f} ops/byte is left of the "
                f"ridge point ≈ {knee:.1f} ops/byte (Eq. 2/3)",
                loop,
            ).with_note(
                f"per iteration: {total_ops} datapath ops against "
                f"{config_bytes} configuration bytes; at BW_config ≈ "
                f"{roofline.config_bandwidth:.2f} B/cycle the datapath can "
                "never be kept busy"
            ).with_note(
                "raise work per configuration (larger tiles), or shrink and "
                "hide the configuration stream with `--pipeline dedup` / "
                "`--pipeline overlap`"
            )
