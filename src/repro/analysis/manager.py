"""Analysis caching across passes.

The dataflow analyses in :mod:`.dataflow` (known fields, awaited tokens,
observed fields) are demand-driven and internally memoized, but historically
every pass and every lint built its own instance — recompute-per-pass.  The
:class:`AnalysisManager` caches analysis instances keyed on the IR scope
they were computed over (a function, or a whole module), so consecutive
passes that leave a scope untouched share one computation.

Invalidation is driven by the :class:`~repro.passes.PassManager`: a pass
reports what it mutated (nothing / everything / a specific set of
functions), and only entries whose scope overlaps the mutated ops are
dropped.  Analyses cache facts about concrete ``Operation``/``SSAValue``
objects, so an entry is only ever valid for the exact op identity it was
keyed on — cloned or re-parsed modules always miss.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable, Iterable

from ..ir.operation import Operation

if TYPE_CHECKING:  # pragma: no cover
    from .cost import CostAnalysis
from .dataflow import (
    AwaitedTokensAnalysis,
    KnownFieldsAnalysis,
    ObservedFieldsAnalysis,
)


def _is_related(a: Operation, b: Operation) -> bool:
    """True when one op is (or contains) the other."""
    current: Operation | None = a
    while current is not None:
        if current is b:
            return True
        current = current.parent_op
    current = b
    while current is not None:
        if current is a:
            return True
        current = current.parent_op
    return False


class AnalysisManager:
    """Per-scope cache of dataflow analysis instances.

    Cache bookkeeping is lock-guarded so one manager can serve concurrent
    server requests (:mod:`repro.serve`).  The lock is held across a cold
    ``factory()`` call on purpose: two threads asking for the same analysis
    must not both build it (analyses memoize per op identity, so a lost
    duplicate build is wasted work and a torn counter).  Passes mutating IR
    still need external coordination — the manager protects itself, not the
    modules it analyzed.
    """

    def __init__(self) -> None:
        #: (id(scope op), kind) -> analysis instance
        self._entries: dict[tuple[int, object], object] = {}
        #: id(scope op) -> scope op (pins identity so ids stay unique)
        self._scopes: dict[int, Operation] = {}
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(
        self, scope: Operation, kind: object, factory: Callable[[], object]
    ) -> object:
        """The cached analysis for ``(scope, kind)``, building on first use."""
        key = (id(scope), kind)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                entry = factory()
                self._entries[key] = entry
                self._scopes[id(scope)] = scope
            else:
                self.hits += 1
            return entry

    # -- the analyses the passes and lints share -------------------------

    def known_fields(self, scope: Operation, accelerator: str) -> KnownFieldsAnalysis:
        return self.get(
            scope,
            ("known-fields", accelerator),
            lambda: KnownFieldsAnalysis(accelerator),
        )

    def awaited_tokens(self, fn: Operation) -> AwaitedTokensAnalysis:
        def build() -> AwaitedTokensAnalysis:
            analysis = AwaitedTokensAnalysis()
            analysis.run_function(fn)
            return analysis

        return self.get(fn, "awaited-tokens", build)

    def observed_fields(self, scope: Operation) -> ObservedFieldsAnalysis:
        return self.get(scope, "observed-fields", ObservedFieldsAnalysis)

    def cost(self, scope: Operation) -> "CostAnalysis":
        """The static configuration-cost engine over ``scope`` (a module)."""
        from .cost import CostAnalysis

        return self.get(scope, "cost", lambda: CostAnalysis(scope))

    # -- invalidation ----------------------------------------------------

    def invalidate(self, mutated: Iterable[Operation] | None = None) -> None:
        """Drop entries made stale by mutating ``mutated`` (all, if None).

        An entry is stale when its scope contains, or is contained in, a
        mutated op — a module-scoped analysis dies when any of its functions
        changes, and a function-scoped analysis dies when the whole module
        is rewritten.
        """
        with self._lock:
            if mutated is None:
                self._entries.clear()
                self._scopes.clear()
                return
            mutated = list(mutated)
            if not mutated:
                return
            # Defensive: a detached op (no parent chain) can no longer be
            # matched to the scope that used to contain it, so ancestry-based
            # matching would silently keep that scope's stale entries alive.
            # The only safe answer for an unattributable mutation is to drop
            # everything.  (Module roots also have no parent; mutating one
            # invalidates all cached scopes anyway, so the conservative
            # branch is exact there.)
            if any(
                op.parent is None and id(op) not in self._scopes
                for op in mutated
            ):
                self.invalidate()
                return
            stale_scopes = {
                scope_id
                for scope_id, scope in self._scopes.items()
                if any(_is_related(scope, op) for op in mutated)
            }
            if not stale_scopes:
                return
            self._entries = {
                key: entry
                for key, entry in self._entries.items()
                if key[0] not in stale_scopes
            }
            for scope_id in stale_scopes:
                del self._scopes[scope_id]
