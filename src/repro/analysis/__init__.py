"""repro.analysis — static diagnostics for configuration-wall hazards.

Three pieces:

* :mod:`repro.analysis.diagnostics` — ``Diagnostic``/``DiagnosticEngine``,
  structured findings with codes, severities and source locations;
* :mod:`repro.analysis.dataflow` — the reusable dataflow layer (forward
  solver, token liveness, known/observed configuration fields) shared with
  the optimization passes;
* :mod:`repro.analysis.cost` — the static configuration-cost engine:
  symbolic per-function cost summaries (``python -m repro cost``) and the
  static-cost oracle that pins the model to the simulator;
* :mod:`repro.analysis.lints` (+ :mod:`repro.analysis.roofline_lint`,
  :mod:`repro.analysis.cost_lints`, :mod:`repro.analysis.linearity`) — the
  ACCFG001..ACCFG015 lint suite, run via :func:`run_lints` or
  ``python -m repro lint``.

:mod:`repro.analysis.manager` adds :class:`AnalysisManager`, the per-scope
analysis cache the pass manager and lints share (recomputation happens only
when a pass reports mutating the analyzed scope).
"""

from .cost import (
    CostAnalysis,
    CostRange,
    CostSite,
    CostVector,
    FunctionCostSummary,
    SymExpr,
    compare_with_simulation,
    format_cost_table,
)
from .dataflow import (
    AwaitedTokensAnalysis,
    FieldSet,
    ForwardSolver,
    KnownFields,
    KnownFieldsAnalysis,
    ObservedFieldsAnalysis,
    RegisterLivenessAnalysis,
    intersect,
)
from .diagnostics import (
    Diagnostic,
    DiagnosticEngine,
    Severity,
    error_code_counts,
)
from .linearity import linearity_diagnostics, unknown_accelerator_diagnostics
from .lints import LINT_RULES, LintContext, LintRule, register_lint, run_lints
from .manager import AnalysisManager

__all__ = [
    "AnalysisManager",
    "CostAnalysis",
    "CostRange",
    "CostSite",
    "CostVector",
    "FunctionCostSummary",
    "SymExpr",
    "compare_with_simulation",
    "format_cost_table",
    "AwaitedTokensAnalysis",
    "FieldSet",
    "ForwardSolver",
    "KnownFields",
    "KnownFieldsAnalysis",
    "ObservedFieldsAnalysis",
    "RegisterLivenessAnalysis",
    "intersect",
    "Diagnostic",
    "DiagnosticEngine",
    "Severity",
    "error_code_counts",
    "linearity_diagnostics",
    "unknown_accelerator_diagnostics",
    "LINT_RULES",
    "LintContext",
    "LintRule",
    "register_lint",
    "run_lints",
]
