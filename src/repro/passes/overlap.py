"""Configuration–computation overlap (paper, Section 5.5).

Only valid for accelerators with *concurrent configuration* capability
(Section 2.2): staging registers let the host write the next configuration
while the accelerator is still computing.

Two rewrites:

* **Loop pipelining** — rotate a ``setup → launch → await`` loop body by one
  iteration: a copy of the setup sequence runs before the loop with the
  induction variable replaced by the lower bound; inside the loop the launch
  fires immediately from the incoming (already configured) state, the setup
  for iteration ``i+1`` runs while the accelerator is busy, and only then the
  await blocks (Figure 9, third block).

* **Straight-line overlap** — a setup whose input state was launched and
  awaited earlier in the same block is moved (together with the pure ops
  computing its fields) up in front of the await, hiding the configuration
  latency behind the accelerator's run time.
"""

from __future__ import annotations

from ..dialects import accfg, arith, scf
from ..ir.operation import Operation
from ..ir.rewriter import Rewriter, Worklist, enclosing_scope
from ..ir.ssa import BlockArgument, SSAValue
from .pass_manager import ModulePass, register_pass, report_scopes


def _is_concurrent(accelerator: str, concurrent: set[str] | None) -> bool:
    if concurrent is not None:
        return accelerator in concurrent
    from ..backends.base import get_accelerator_or_none

    spec = get_accelerator_or_none(accelerator)
    return spec is not None and spec.concurrent_config


def _pure_slice_in_block(values, block) -> list[Operation] | None:
    """The backward slice of ``values`` restricted to ops in ``block``.

    Returns ops in block order, or None when the slice contains an impure op
    (a partial move would be needed, which is not implemented — Section 5.5).
    """
    slice_ops: set[Operation] = set()
    worklist = list(values)
    while worklist:
        value = worklist.pop()
        owner = value.owner
        if not isinstance(owner, Operation) or owner.parent is not block:
            continue
        if owner in slice_ops:
            continue
        if not owner.is_pure or owner.regions:
            return None
        slice_ops.add(owner)
        worklist.extend(owner.operands)
    return sorted(slice_ops, key=block.index_of)


def pipeline_loop(loop: scf.ForOp, concurrent: set[str] | None) -> bool:
    """Apply the rotate-by-one software pipelining to one loop."""
    # Identify the state iter-arg and the setup/launch/await triple.
    state_arg: BlockArgument | None = None
    state_arg_index = -1
    for i, arg in enumerate(loop.iter_args):
        if isinstance(arg.type, accfg.StateType):
            if state_arg is not None:
                return False  # multiple accelerators in one loop: unsupported
            state_arg = arg
            state_arg_index = i
    if state_arg is None:
        return False
    state_type = state_arg.type
    assert isinstance(state_type, accfg.StateType)
    if not _is_concurrent(state_type.accelerator, concurrent):
        return False

    body = loop.body
    setups = [
        op
        for op in body.ops
        if isinstance(op, accfg.SetupOp) and op.accelerator == state_type.accelerator
    ]
    launches = [
        op
        for op in body.ops
        if isinstance(op, accfg.LaunchOp) and op.accelerator == state_type.accelerator
    ]
    awaits = [
        op
        for op in body.ops
        if isinstance(op, accfg.AwaitOp) and op.accelerator == state_type.accelerator
    ]
    if len(setups) != 1 or len(launches) != 1 or len(awaits) != 1:
        return False
    setup, launch, await_op = setups[0], launches[0], awaits[0]
    if setup.in_state is not state_arg:
        return False
    if launch.state is not setup.out_state or launch.fields:
        return False
    if await_op.token is not launch.token:
        return False
    yielded = loop.yield_op.operands[state_arg_index]
    if yielded is not setup.out_state:
        return False
    if not setup.is_before_in_block(launch) or not launch.is_before_in_block(await_op):
        return False

    slice_ops = _pure_slice_in_block([v for _, v in setup.fields], body)
    if slice_ops is None:
        return False
    # The slice may not depend on the state arg or on loop results.
    for op in slice_ops:
        for operand in op.operands:
            if operand is state_arg:
                return False

    # 1. Preamble: clone slice + setup before the loop, iv -> lb.  When the
    # loop might run zero times, the preamble is guarded by `lb < ub`
    # (unconditionally writing iteration-0 configuration would be observable
    # by later launches of the carried state).
    from .dedup import _loop_certainly_runs

    value_map: dict[SSAValue, SSAValue] = {
        loop.induction_var: loop.lb,
        state_arg: loop.iter_inits[state_arg_index],
    }
    assert loop.parent is not None
    if _loop_certainly_runs(loop):
        for op in slice_ops:
            clone = op.clone(value_map)
            loop.parent.insert_op_before(loop, clone)
        pre_setup = setup.clone(value_map)
        assert isinstance(pre_setup, accfg.SetupOp)
        loop.parent.insert_op_before(loop, pre_setup)
        loop.set_operand(3 + state_arg_index, pre_setup.out_state)
    else:
        cond = arith.CmpiOp.create("ult", loop.lb, loop.ub)
        loop.parent.insert_op_before(loop, cond)
        if_op = scf.IfOp.create(cond.result, [state_type])
        for op in slice_ops:
            if_op.then_block.add_op(op.clone(value_map))
        pre_setup = setup.clone(value_map)
        assert isinstance(pre_setup, accfg.SetupOp)
        if_op.then_block.add_op(pre_setup)
        if_op.then_block.add_op(scf.YieldOp.create([pre_setup.out_state]))
        if_op.else_block.add_op(
            scf.YieldOp.create([loop.iter_inits[state_arg_index]])
        )
        loop.parent.insert_op_before(loop, if_op)
        loop.set_operand(3 + state_arg_index, if_op.results[0])

    # 2. Launch first, from the incoming (pre-configured) state.
    launch.set_operand(0, state_arg)
    Rewriter.move_op_before(launch, body.ops[0])

    # 3. Setup for the next iteration, placed before the await.
    iv_next = arith.AddiOp.create(loop.induction_var, loop.step)
    iv_next.result.name_hint = "i_next"
    body.insert_op_before(await_op, iv_next)
    next_map: dict[SSAValue, SSAValue] = {loop.induction_var: iv_next.result}
    for op in slice_ops:
        clone = op.clone(next_map)
        body.insert_op_before(await_op, clone)
    next_setup = setup.clone(next_map)
    assert isinstance(next_setup, accfg.SetupOp)
    body.insert_op_before(await_op, next_setup)

    # 4. Reroute: the loop now carries the next-iteration state.
    setup.out_state.replace_all_uses_with(next_setup.out_state)
    setup.erase()

    # 5. When the state flowing out of the loop is observed afterwards
    # (register retention: a later launch sees whatever the last setup
    # wrote), the rotated setup must not run in the final iteration — it
    # would commit the configuration of an iteration that never executes.
    # Peel that iteration: shorten the loop by one trip and launch/await the
    # final (already configured) state after the loop.  Peeling keeps the
    # loop body free of per-iteration guard code; when the result is unused
    # we keep the paper's plain rotation (Figure 9) with its harmless
    # trailing write.
    if loop.results[state_arg_index].has_uses:
        new_ub = arith.SubiOp.create(loop.ub, loop.step)
        new_ub.result.name_hint = "ub_main"
        loop.parent.insert_op_before(loop, new_ub)
        final_state = loop.results[state_arg_index]
        tail_launch = accfg.LaunchOp.create(final_state)
        tail_await = accfg.AwaitOp.create(tail_launch.token)
        if _loop_certainly_runs(loop):
            loop.parent.insert_op_after(loop, tail_launch)
            loop.parent.insert_op_after(tail_launch, tail_await)
        else:
            ran = arith.CmpiOp.create("ult", loop.lb, loop.ub)
            loop.parent.insert_op_after(loop, ran)
            tail = scf.IfOp.create(ran.result)
            tail.then_block.add_op(tail_launch)
            tail.then_block.add_op(tail_await)
            tail.then_block.add_op(scf.YieldOp.create())
            loop.parent.insert_op_after(ran, tail)
        loop.set_operand(1, new_ub.result)
    return True


def _try_overlap_setup(op: accfg.SetupOp, concurrent: set[str] | None) -> bool:
    """Move one setup above the await of the launch that consumed its input
    state (the block-level rewrite of Section 5.5)."""
    if op.parent is None:
        return False
    if not _is_concurrent(op.accelerator, concurrent):
        return False
    in_state = op.in_state
    if in_state is None:
        return False
    block = op.parent
    # Find the LAST launch of this accelerator before the setup: moving
    # the setup above any earlier launch would change which launch
    # commits its (staged) writes.
    op_index = block.index_of(op)
    launch: accfg.LaunchOp | None = None
    for candidate in block.ops[:op_index]:
        if (
            isinstance(candidate, accfg.LaunchOp)
            and candidate.accelerator == op.accelerator
        ):
            launch = candidate
    if launch is None or launch.state is not in_state:
        return False
    # The await of that launch, between it and the setup.
    await_op: accfg.AwaitOp | None = None
    for candidate in block.ops[block.index_of(launch) + 1 : op_index]:
        if (
            isinstance(candidate, accfg.AwaitOp)
            and candidate.token is launch.token
        ):
            await_op = candidate
            break
    if await_op is None:
        return False
    # Move the whole setup sequence (pure producers between the await
    # and the setup) in front of the await.
    await_index = block.index_of(await_op)
    pending = [v for _, v in op.fields]
    slice_ops: list[Operation] = []
    seen: set[Operation] = set()
    while pending:
        value = pending.pop()
        owner = value.owner
        if not isinstance(owner, Operation) or owner.parent is not block:
            continue
        if block.index_of(owner) <= await_index or owner in seen:
            continue
        if not owner.is_pure or owner.regions:
            return False
        seen.add(owner)
        slice_ops.append(owner)
        pending.extend(owner.operands)
    for slice_op in sorted(slice_ops, key=block.index_of):
        Rewriter.move_op_before(slice_op, await_op)
    Rewriter.move_op_before(op, await_op)
    return True


def overlap_straight_line(root: Operation, concurrent: set[str] | None) -> bool:
    """Drive :func:`_try_overlap_setup` over every setup under ``root``.

    Worklist-driven: moving one setup up can expose the launch/await shape
    for setups later in the same block, so a successful move re-enqueues the
    block's remaining setups instead of rescanning the whole tree.  Each
    move strictly decreases a setup's block index, so the drain terminates.
    """
    worklist = Worklist()
    for op in root.walk_list():
        if isinstance(op, accfg.SetupOp):
            worklist.push(op)
    changed = False
    while worklist:
        op = worklist.pop()
        if not isinstance(op, accfg.SetupOp) or op.parent is None:
            continue
        if not _try_overlap_setup(op, concurrent):
            continue
        changed = True
        for sibling in op.parent.ops:
            if isinstance(sibling, accfg.SetupOp) and sibling is not op:
                worklist.push(sibling)
    return changed


@register_pass
class OverlapPass(ModulePass):
    """Configuration overlap (step 4 of the flow, Figure 8)."""

    name = "accfg-overlap"

    def __init__(self, concurrent: set[str] | None = None) -> None:
        self.concurrent = concurrent

    def apply(self, module: Operation, analyses=None):
        scopes: dict[Operation, None] = {}
        root_level = False
        changed_any = False
        loops = [op for op in module.walk_list() if isinstance(op, scf.ForOp)]
        for loop in reversed(loops):
            if loop.parent is None:
                continue
            if pipeline_loop(loop, self.concurrent):
                changed_any = True
                scope = enclosing_scope(module, loop)
                if scope is None:
                    root_level = True
                else:
                    scopes[scope] = None
        for top in [
            op
            for region in module.regions
            for block in region.blocks
            for op in block.ops
        ]:
            if overlap_straight_line(top, self.concurrent):
                changed_any = True
                scopes[top] = None
        return report_scopes(changed_any, scopes, root_level)
