"""State tracing (paper, Section 5.3).

Establishes the order of accelerator configuration events by threading an SSA
*state* variable through the program, inspired by memory SSA: every
``accfg.setup`` receives the previous live state as an input, which lets
later passes compute setup deltas.  Handled control flow:

* straight-line code — setups chain directly;
* ``scf.for`` — the state becomes a loop-carried ``iter_args`` entry
  (Figure 9, first transition); an empty anchor setup is materialized before
  the loop when no state exists yet;
* ``scf.if`` — branches receive the incoming state; when no branch clobbers,
  both branches yield their final state and the join becomes a new if result.

Unknown operations are treated pessimistically: any op the pass cannot prove
state-preserving (foreign calls, unregistered ops) clobbers the state unless
annotated ``#accfg.effects<none>``; ``#accfg.effects<all>`` forces a clobber.
"""

from __future__ import annotations

from ..dialects import accfg, func, scf
from ..ir.block import Block
from ..ir.operation import Operation, UnregisteredOp
from ..ir.ssa import OpResult, SSAValue
from .pass_manager import ModulePass, register_pass

_KNOWN_SAFE_DIALECTS = ("arith.", "scf.", "accfg.", "builtin.")


def _callee_effects(op: func.CallOp) -> str | None:
    """Effects declared on the called function, if it is visible.

    Addresses the paper's outlook on "declaring effects to reason about
    accelerator state across function call boundaries": a function
    annotated ``accfg.effects = "none"`` promises to leave every
    accelerator's configuration untouched, so calls to it are not
    optimization barriers.
    """
    current = op.parent_op
    while current is not None and current.name != "builtin.module":
        current = current.parent_op
    if current is None:
        return None
    for candidate in current.regions[0].block.ops:
        if isinstance(candidate, func.FuncOp) and candidate.sym_name == op.callee:
            return accfg.get_effects(candidate)
    return None


#: classes whose preserves-state answer is instance-independent (no effects
#: annotation consulted, no per-instance state/callee to inspect): the
#: generic dialect-prefix verdict, cached per class
_GENERIC_PRESERVES: dict[type, bool] = {}


def op_preserves_state(op: Operation, accelerator: str) -> bool:
    """Whether ``op`` itself (ignoring regions) leaves the configuration
    registers of ``accelerator`` untouched."""
    effects = accfg.get_effects(op)
    if effects == "none":
        return True
    if effects == "all":
        return False
    cached = _GENERIC_PRESERVES.get(type(op))
    if cached is not None:
        return cached
    if isinstance(op, accfg.ResetOp):
        state_type = op.state.type
        assert isinstance(state_type, accfg.StateType)
        return state_type.accelerator != accelerator
    if isinstance(op, (accfg.SetupOp, accfg.LaunchOp, accfg.AwaitOp)):
        return True  # modeled explicitly, not a clobber
    if isinstance(op, UnregisteredOp):
        return False
    if isinstance(op, func.CallOp):
        return _callee_effects(op) == "none"
    if isinstance(op, func.FuncOp):
        return False
    preserves = (
        any(op.name.startswith(prefix) for prefix in _KNOWN_SAFE_DIALECTS)
        or op.name.startswith("func.")  # return
    )
    _GENERIC_PRESERVES[type(op)] = preserves
    return preserves


def region_clobbers(block: Block, accelerator: str) -> bool:
    """True if anything in ``block`` (recursively) may clobber the state, or
    resets it, making state threading across the region unsound."""
    for op in block.ops:
        if isinstance(op, accfg.ResetOp):
            state_type = op.state.type
            assert isinstance(state_type, accfg.StateType)
            if state_type.accelerator == accelerator:
                return True
            continue
        if not op_preserves_state(op, accelerator):
            return True
        for region in op.regions:
            for nested in region.blocks:
                if region_clobbers(nested, accelerator):
                    return True
    return False


def accelerators_in(block: Block) -> list[str]:
    """All accelerator names configured anywhere inside ``block``."""
    names: list[str] = []
    # Pre-order, like Operation.walk: discovery order decides which
    # accelerator is traced (and anchored) first, so it must stay stable.
    stack: list[Operation] = list(reversed(block.ops))
    while stack:
        op = stack.pop()
        if isinstance(op, accfg.SetupOp):
            if op.accelerator not in names:
                names.append(op.accelerator)
        elif op.regions:
            children: list[Operation] = []
            for region in op.regions:
                for nested in region.blocks:
                    children.extend(nested.ops)
            children.reverse()
            stack.extend(children)
    return names


def _block_mentions(block: Block, accelerator: str) -> bool:
    stack: list[Operation] = list(block.ops)
    while stack:
        op = stack.pop()
        if isinstance(op, accfg.SetupOp):
            if op.accelerator == accelerator:
                return True
        elif op.regions:
            for region in op.regions:
                for nested in region.blocks:
                    stack.extend(nested.ops)
    return False


class StateTracer:
    """Threads one accelerator's state through one function body."""

    def __init__(self, accelerator: str) -> None:
        self.accelerator = accelerator

    def trace_block(self, block: Block, live: SSAValue | None) -> SSAValue | None:
        """Process ``block`` with incoming state ``live``; returns the state
        live at the end of the block (None = unknown/clobbered)."""
        for op in list(block.ops):
            live = self._trace_op(op, live)
        return live

    def _trace_op(self, op: Operation, live: SSAValue | None) -> SSAValue | None:
        if isinstance(op, accfg.SetupOp):
            if op.accelerator != self.accelerator:
                return live
            if op.in_state is None and live is not None:
                op.set_in_state(live)
            return op.out_state
        if isinstance(op, accfg.ResetOp):
            state_type = op.state.type
            assert isinstance(state_type, accfg.StateType)
            if state_type.accelerator == self.accelerator:
                return None
            return live
        if isinstance(op, scf.ForOp):
            return self._trace_for(op, live)
        if isinstance(op, scf.IfOp):
            return self._trace_if(op, live)
        if isinstance(op, (accfg.LaunchOp, accfg.AwaitOp)):
            return live
        if op_preserves_state(op, self.accelerator):
            # Known-safe op: nested regions of safe ops other than for/if
            # (there are none in our dialects) would need handling here.
            return live
        return None

    def _materialize_anchor(self, before: Operation) -> SSAValue:
        """Create an empty setup right before ``before`` to anchor a state
        chain (Figure 9: ``%state = accfg.setup to ()``)."""
        anchor = accfg.SetupOp.create(self.accelerator, [])
        assert before.parent is not None
        before.parent.insert_op_before(before, anchor)
        return anchor.out_state

    def _trace_for(self, op: scf.ForOp, live: SSAValue | None) -> SSAValue | None:
        body = op.body
        if not _block_mentions(body, self.accelerator):
            # No setups inside; the loop preserves state iff nothing clobbers.
            if region_clobbers(body, self.accelerator):
                return None
            return live
        if region_clobbers(body, self.accelerator):
            # Cannot thread; still trace the interior pessimistically so
            # setups chain within one iteration where possible.
            self.trace_block(body, None)
            return None
        # Check whether a state iter-arg already exists (pass idempotency).
        for arg, init in zip(op.iter_args, op.iter_inits):
            if (
                isinstance(arg.type, accfg.StateType)
                and arg.type.accelerator == self.accelerator
            ):
                self.trace_block(body, arg)
                index = list(op.iter_args).index(arg)
                return op.results[index]
        if live is None:
            live = self._materialize_anchor(op)
        arg, result = op.add_iter_arg(live, name_hint="state")
        final = self.trace_block(body, arg)
        if final is None:
            raise AssertionError(
                "state threading failed inside a loop pre-checked as clobber-free"
            )
        op.yield_op.set_operands([*op.yield_op.operands, final])
        return result

    def _trace_if(self, op: scf.IfOp, live: SSAValue | None) -> SSAValue | None:
        then_mentions = _block_mentions(op.then_block, self.accelerator)
        else_mentions = op.has_else and _block_mentions(
            op.else_block, self.accelerator
        )
        clobbers = region_clobbers(op.then_block, self.accelerator) or (
            op.has_else and region_clobbers(op.else_block, self.accelerator)
        )
        if not then_mentions and not else_mentions:
            return None if clobbers else live
        if clobbers:
            self.trace_block(op.then_block, live)
            if op.has_else:
                self.trace_block(op.else_block, live)
            return None
        # Already threaded? (idempotency)
        for result in op.results:
            if (
                isinstance(result.type, accfg.StateType)
                and result.type.accelerator == self.accelerator
            ):
                self.trace_block(op.then_block, live)
                if op.has_else:
                    self.trace_block(op.else_block, live)
                return result
        if live is None:
            live = self._materialize_anchor(op)
        then_final = self.trace_block(op.then_block, live)
        if not op.has_else:
            op.regions[1].add_block(Block([scf.YieldOp.create([])]))
        else_final = self.trace_block(op.else_block, live)
        assert then_final is not None and else_final is not None
        result = OpResult(
            accfg.state_type(self.accelerator), op, len(op.results), "state"
        )
        op.results.append(result)
        then_yield = op.then_block.terminator
        else_yield = op.else_block.terminator
        assert isinstance(then_yield, scf.YieldOp)
        assert isinstance(else_yield, scf.YieldOp)
        then_yield.set_operands([*then_yield.operands, then_final])
        else_yield.set_operands([*else_yield.operands, else_final])
        return result


def state_linearity_diagnostics(module: Operation) -> list[str]:
    """Check the paper's IR constraint: per accelerator, only one state
    variable is *live* at any program point (Section 5.1).

    Backward-compatible shim: the implementation moved to
    :mod:`repro.analysis.linearity`, which produces structured diagnostics
    (codes ACCFG004/ACCFG005) and — unlike the original — also flags
    accelerator names no backend registers (ACCFG009) instead of passing
    silently over them.  This wrapper returns the legacy ``list[str]``.
    """
    from ..analysis.linearity import (
        linearity_diagnostics,
        unknown_accelerator_diagnostics,
    )

    found = linearity_diagnostics(module)
    found += unknown_accelerator_diagnostics(module)
    return [diag.message for diag in found]


@register_pass
class TraceStatesPass(ModulePass):
    """Connect setup clusters by threading accelerator state (step 2 of the
    compilation flow, Figure 8)."""

    name = "accfg-trace-states"

    def apply(self, module: Operation, analyses=None) -> bool:
        traced: list[Operation] = []
        for op in module.walk_list():
            if isinstance(op, func.FuncOp) and not op.is_declaration:
                accelerators = list(accelerators_in(op.body))
                for accelerator in accelerators:
                    StateTracer(accelerator).trace_block(op.body, None)
                if accelerators:
                    traced.append(op)
        return traced if traced else False
