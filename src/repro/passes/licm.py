"""Loop-invariant code motion.

Hoists pure ops out of ``scf.for`` bodies when every operand is defined
outside the loop.  Runs innermost-first so invariants bubble all the way out
of loop nests.  This is one of the stock optimizations the paper notes accfg
code benefits from once configuration computation is visible IR instead of
volatile inline assembly (Section 5.2); the accfg-specific variant that
hoists *individual setup fields* lives in :mod:`repro.passes.dedup`.
"""

from __future__ import annotations

from ..dialects import scf
from ..ir.block import Block
from ..ir.operation import Operation
from ..ir.rewriter import Rewriter
from ..ir.ssa import SSAValue
from .pass_manager import ModulePass, register_pass


def is_defined_outside(value: SSAValue, loop: scf.ForOp) -> bool:
    """True when ``value`` does not depend on the loop body (or the loop)."""
    owner = value.owner
    if isinstance(owner, Block):
        # A block argument: outside unless it belongs to a block nested in
        # (or equal to) the loop body.
        block: Block | None = owner
        while block is not None:
            if block is loop.body:
                return False
            parent_op = block.parent_op
            block = parent_op.parent if parent_op is not None else None
        return True
    current: Operation | None = owner
    while current is not None:
        if current is loop:
            return False
        current = current.parent_op
    return True


def hoistable_ops(loop: scf.ForOp) -> list[Operation]:
    """Pure region-free body ops whose operands are all loop-invariant."""
    result = []
    for op in loop.body.ops:
        if not op.is_pure or op.regions or op.is_terminator:
            continue
        if all(is_defined_outside(operand, loop) for operand in op.operands):
            result.append(op)
    return result


@register_pass
class LICMPass(ModulePass):
    """Hoist loop-invariant pure computation out of scf.for bodies."""

    name = "licm"

    def apply(self, module: Operation, analyses=None) -> bool:
        # Collect loops innermost-first: a post-order over the walk.
        loops = [op for op in module.walk() if isinstance(op, scf.ForOp)]
        hoisted_any = False
        for loop in reversed(loops):
            hoisted_any |= self._hoist_from(loop)
        return hoisted_any

    def _hoist_from(self, loop: scf.ForOp) -> bool:
        hoisted = False
        changed = True
        while changed:
            changed = False
            if loop.parent is None:
                return hoisted
            for op in hoistable_ops(loop):
                Rewriter.move_op_before(op, loop)
                changed = True
                hoisted = True
        return hoisted
