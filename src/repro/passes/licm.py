"""Loop-invariant code motion.

Hoists pure ops out of ``scf.for`` bodies when every operand is defined
outside the loop.  Runs innermost-first so invariants bubble all the way out
of loop nests.  This is one of the stock optimizations the paper notes accfg
code benefits from once configuration computation is visible IR instead of
volatile inline assembly (Section 5.2); the accfg-specific variant that
hoists *individual setup fields* lives in :mod:`repro.passes.dedup`.

Per loop, a FIFO worklist seeded in body order replaces the
rescan-until-fixpoint rounds: hoisting an op re-enqueues only the in-body
users of its results, which are the only ops the hoist can newly make
invariant.  Insertion is always directly before the loop, so any hoist
order is dominance-safe.
"""

from __future__ import annotations

from ..dialects import scf
from ..ir.block import Block
from ..ir.operation import Operation
from ..ir.rewriter import Rewriter, Worklist, enclosing_scope
from ..ir.ssa import SSAValue
from .pass_manager import ModulePass, register_pass, report_scopes


def is_defined_outside(value: SSAValue, loop: scf.ForOp) -> bool:
    """True when ``value`` does not depend on the loop body (or the loop)."""
    owner = value.owner
    if isinstance(owner, Block):
        # A block argument: outside unless it belongs to a block nested in
        # (or equal to) the loop body.
        block: Block | None = owner
        while block is not None:
            if block is loop.body:
                return False
            parent_op = block.parent_op
            block = parent_op.parent if parent_op is not None else None
        return True
    current: Operation | None = owner
    while current is not None:
        if current is loop:
            return False
        current = current.parent_op
    return True


def hoistable_ops(loop: scf.ForOp) -> list[Operation]:
    """Pure region-free body ops whose operands are all loop-invariant."""
    result = []
    for op in loop.body.ops:
        if not op.is_pure or op.regions or op.is_terminator:
            continue
        if all(is_defined_outside(operand, loop) for operand in op.operands):
            result.append(op)
    return result


def hoist_from_loop(loop: scf.ForOp) -> bool:
    """Hoist every (transitively) invariant pure op out of one loop."""
    if loop.parent is None:
        return False
    worklist = Worklist()
    for op in loop.body.ops:
        worklist.push(op)
    hoisted = False
    while worklist:
        op = worklist.pop()
        if op.parent is not loop.body:
            continue  # already hoisted (or erased)
        if not op.is_pure or op.regions or op.is_terminator:
            continue
        if not all(is_defined_outside(operand, loop) for operand in op.operands):
            continue
        users = [
            user
            for result in op.results
            for user in result.users()
            if user.parent is loop.body
        ]
        Rewriter.move_op_before(op, loop)
        hoisted = True
        for user in users:
            worklist.push(user)
    return hoisted


@register_pass
class LICMPass(ModulePass):
    """Hoist loop-invariant pure computation out of scf.for bodies."""

    name = "licm"

    def apply(self, module: Operation, analyses=None):
        # Collect loops innermost-first: a post-order over the walk.
        loops = [op for op in module.walk_list() if isinstance(op, scf.ForOp)]
        scopes: dict[Operation, None] = {}
        root_level = False
        hoisted_any = False
        for loop in reversed(loops):
            if loop.parent is None:
                continue
            if hoist_from_loop(loop):
                hoisted_any = True
                scope = enclosing_scope(module, loop)
                if scope is None:
                    root_level = True
                else:
                    scopes[scope] = None
        return report_scopes(hoisted_any, scopes, root_level)
