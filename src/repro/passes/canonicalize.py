"""Canonicalization: constant folding, algebraic identities, dead-code
elimination of pure ops, and structural simplification of scf ops.

The paper (Section 5.2) notes that representing configuration explicitly in
the IR lets ordinary compiler optimizations — constant folding, CSE, LICM —
attack configuration-parameter computation "for free"; this pass implements
the folding part.  Bit-packing expressions such as ``(K << 32) | (J << 16) |
I`` (Listing 1) collapse to constants whenever the operands are static, which
directly raises the effective configuration bandwidth (Section 4.4).

Patterns carry indexing hints for the worklist driver: scf-structural
patterns name their root op class (``root_ops``), and the wildcard patterns
narrow themselves per op *class* through ``applies_to`` (an op type without
a ``fold`` override can never fold; an impure op class can never be dead).
"""

from __future__ import annotations

from ..dialects import arith, scf
from ..ir.attributes import Attribute
from ..ir.operation import Operation
from ..ir.rewriter import (
    PatternRewriter,
    RewritePattern,
    apply_patterns_greedily,
    drive_patterns,
)
from ..ir.ssa import SSAValue
from ..ir.traits import Pure
from .pass_manager import ModulePass, register_pass

_PURE = Pure()


class FoldPattern(RewritePattern):
    """Apply each op's ``fold`` hook, materializing attribute results."""

    @classmethod
    def applies_to(cls, op_type: type) -> bool:
        # Only op classes overriding the fold hook can ever fold.
        return op_type.fold is not Operation.fold

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        folded = op.fold()
        if folded is None:
            return False
        if op.parent is None:
            return False
        replacements: list[SSAValue] = []
        for entry in folded:
            if isinstance(entry, Attribute):
                constant = arith.materialize_attr(entry)
                rewriter.insert_op_before(op, constant)
                replacements.append(constant.result)
            else:
                replacements.append(entry)
        rewriter.replace_values(op, replacements)
        return True


class DeadPureOpPattern(RewritePattern):
    """Erase pure ops none of whose results are used."""

    @classmethod
    def applies_to(cls, op_type: type) -> bool:
        return _PURE in op_type.traits

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        if not op.is_pure or op.is_terminator or op.parent is None:
            return False
        if op.regions:
            return False
        if any(result.has_uses for result in op.results):
            return False
        rewriter.erase_op(op)
        return True


class SimplifyConstantIfPattern(RewritePattern):
    """Replace ``scf.if`` on a constant condition with the taken branch."""

    root_ops = (scf.IfOp,)

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        if not isinstance(op, scf.IfOp) or op.parent is None:
            return False
        cond = arith.constant_value(op.condition)
        if cond is None:
            return False
        if cond:
            block = op.then_block
        else:
            if not op.has_else:
                rewriter.erase_op(op)
                return True
            block = op.else_block
        terminator = block.terminator
        yielded: list[SSAValue] = []
        if isinstance(terminator, scf.YieldOp):
            yielded = list(terminator.operands)
            rewriter.erase_op(terminator)
        rewriter.inline_block_before(block, op, [])
        rewriter.replace_values(op, yielded)
        return True


class SimplifyTrivialLoopPattern(RewritePattern):
    """Drop ``scf.for`` loops that execute zero times (constant bounds)."""

    root_ops = (scf.ForOp,)

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        if not isinstance(op, scf.ForOp) or op.parent is None:
            return False
        lb = arith.constant_value(op.lb)
        ub = arith.constant_value(op.ub)
        if lb is None or ub is None or lb < ub:
            return False
        rewriter.replace_values(op, list(op.iter_inits))
        return True


class DedupConstantPattern(RewritePattern):
    """Merge identical constants within one block (local constant uniquing).

    A memo of the representative constant per ``(block, value, type)`` lives
    on the rewriter.  Under the sweep driver the rewriter (and memo) is
    recreated every sweep and ops are visited in block order, so the first
    constant seen is the earliest.  The worklist driver's rewriter *outlives*
    any single pass over the IR and pops in worklist (not block) order, so
    the memo must be validated on every hit: a memoized constant that was
    erased or moved away no longer counts, and when both constants are live
    the *earlier one in the block* survives regardless of visit order —
    which is both the dominance-safe choice and the sweep driver's normal
    form.
    """

    root_ops = (arith.ConstantOp,)

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        if not isinstance(op, arith.ConstantOp) or op.parent is None:
            return False
        memo: dict = rewriter._constant_memo
        key = (op.parent, op.value, op.results[0].type)
        memoized = memo.get(key)
        if memoized is None or memoized is op or memoized.parent is not op.parent:
            memo[key] = op  # first live constant seen (or stale entry fixed)
            return False
        if memoized.is_before_in_block(op):
            survivor, duplicate = memoized, op
        else:
            survivor, duplicate = op, memoized
        memo[key] = survivor
        rewriter.replace_values(duplicate, [survivor.result])
        return True


DEFAULT_PATTERNS: tuple[RewritePattern, ...] = (
    FoldPattern(),
    DeadPureOpPattern(),
    SimplifyConstantIfPattern(),
    SimplifyTrivialLoopPattern(),
    DedupConstantPattern(),
)


@register_pass
class CanonicalizePass(ModulePass):
    """Greedy application of folding + cleanup patterns to fixpoint."""

    name = "canonicalize"

    def apply(self, module: Operation, analyses=None):
        return drive_patterns(module, DEFAULT_PATTERNS).report()


__all__ = [
    "FoldPattern",
    "DeadPureOpPattern",
    "SimplifyConstantIfPattern",
    "SimplifyTrivialLoopPattern",
    "DedupConstantPattern",
    "DEFAULT_PATTERNS",
    "CanonicalizePass",
    "apply_patterns_greedily",
]
