"""Canonicalization: constant folding, algebraic identities, dead-code
elimination of pure ops, and structural simplification of scf ops.

The paper (Section 5.2) notes that representing configuration explicitly in
the IR lets ordinary compiler optimizations — constant folding, CSE, LICM —
attack configuration-parameter computation "for free"; this pass implements
the folding part.  Bit-packing expressions such as ``(K << 32) | (J << 16) |
I`` (Listing 1) collapse to constants whenever the operands are static, which
directly raises the effective configuration bandwidth (Section 4.4).
"""

from __future__ import annotations

from ..dialects import arith, scf
from ..ir.attributes import Attribute
from ..ir.operation import Operation
from ..ir.rewriter import (
    PatternRewriter,
    RewritePattern,
    apply_patterns_greedily,
)
from ..ir.ssa import SSAValue
from .pass_manager import ModulePass, register_pass


class FoldPattern(RewritePattern):
    """Apply each op's ``fold`` hook, materializing attribute results."""

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        folded = op.fold()
        if folded is None:
            return False
        replacements: list[SSAValue] = []
        new_ops: list[Operation] = []
        for entry in folded:
            if isinstance(entry, Attribute):
                constant = arith.materialize_attr(entry)
                new_ops.append(constant)
                replacements.append(constant.result)
            else:
                replacements.append(entry)
        block = op.parent
        if block is None:
            return False
        for new_op in new_ops:
            block.insert_op_before(op, new_op)
        rewriter.replace_values(op, replacements)
        return True


class DeadPureOpPattern(RewritePattern):
    """Erase pure ops none of whose results are used."""

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        if not op.is_pure or op.is_terminator or op.parent is None:
            return False
        if op.regions:
            return False
        if any(result.has_uses for result in op.results):
            return False
        rewriter.erase_op(op)
        return True


class SimplifyConstantIfPattern(RewritePattern):
    """Replace ``scf.if`` on a constant condition with the taken branch."""

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        if not isinstance(op, scf.IfOp) or op.parent is None:
            return False
        cond = arith.constant_value(op.condition)
        if cond is None:
            return False
        if cond:
            block = op.then_block
        else:
            if not op.has_else:
                rewriter.erase_op(op)
                return True
            block = op.else_block
        terminator = block.terminator
        yielded: list[SSAValue] = []
        if isinstance(terminator, scf.YieldOp):
            yielded = list(terminator.operands)
            terminator.erase()
        rewriter.inline_block_before(block, op, [])
        rewriter.replace_values(op, yielded)
        return True


class SimplifyTrivialLoopPattern(RewritePattern):
    """Drop ``scf.for`` loops that execute zero times (constant bounds)."""

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        if not isinstance(op, scf.ForOp) or op.parent is None:
            return False
        lb = arith.constant_value(op.lb)
        ub = arith.constant_value(op.ub)
        if lb is None or ub is None or lb < ub:
            return False
        rewriter.replace_values(op, list(op.iter_inits))
        return True


class DedupConstantPattern(RewritePattern):
    """Merge identical constants within one block (local constant uniquing).

    The sweep visits each block's ops in order, so a per-sweep memo (stashed
    on the rewriter, which the driver recreates every sweep) of the first
    constant seen per ``(block, value, type)`` replaces the former rescan of
    all earlier block ops.  Constants materialized mid-sweep (by folding) are
    not in the memo; the following sweep dedups them — same fixpoint.
    """

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        if not isinstance(op, arith.ConstantOp) or op.parent is None:
            return False
        memo: dict = rewriter.__dict__.setdefault("_constant_memo", {})
        key = (op.parent, op.value, op.result.type)
        earlier = memo.get(key)
        # No canonicalization pattern moves an op later in its block, so a
        # memoized constant still attached to this block precedes ``op``.
        if earlier is not None and earlier is not op and earlier.parent is op.parent:
            rewriter.replace_values(op, [earlier.result])
            return True
        memo[key] = op
        return False


DEFAULT_PATTERNS: tuple[RewritePattern, ...] = (
    FoldPattern(),
    DeadPureOpPattern(),
    SimplifyConstantIfPattern(),
    SimplifyTrivialLoopPattern(),
    DedupConstantPattern(),
)


@register_pass
class CanonicalizePass(ModulePass):
    """Greedy application of folding + cleanup patterns to fixpoint."""

    name = "canonicalize"

    def apply(self, module: Operation, analyses=None) -> bool:
        return apply_patterns_greedily(module, DEFAULT_PATTERNS)
