"""convert-linalg-to-accfg: step 1 of the compilation flow (Figure 8).

Lowers named high-level computations into tiled setup/launch/await clusters
for a chosen accelerator.  This is the *only* accelerator-specific
transformation on the input side of the pipeline: everything downstream
(tracing, dedup, overlap) is shared across targets, which is the paper's
central engineering claim.

The lowering is deliberately naive — every invocation writes every field —
because that is what a stateless rewrite produces; making it efficient is
the optimizer's job, not the frontend's.
"""

from __future__ import annotations

from ..backends import opengemm as opengemm_backend
from ..backends.gemmini import (
    ARRAY_DIM,
    OP_COMPUTE,
    OP_MVIN,
    OP_MVOUT,
    OP_PRELOAD,
)
from ..dialects import linalg
from ..ir.builder import Builder, InsertPoint
from ..ir.operation import Operation
from ..workloads.irgen import IRGen
from .pass_manager import ModulePass, register_pass

#: Which accelerator each linalg op lowers to by default.
DEFAULT_TARGETS = {
    "linalg.matmul": "opengemm",
    "linalg.elementwise": "toyvec",
}


class LoweringError(Exception):
    """Raised when an op cannot be lowered to the requested target."""


def lower_matmul_to_opengemm(
    op: linalg.MatmulOp,
    tile_m: int | None = None,
    tile_n: int | None = None,
) -> None:
    """Tile a matmul into ``tile_m x K x tile_n`` OpenGeMM invocations (one
    per output tile; 8 x K x 8 by default, mirroring the paper's OpenGeMM
    evaluation workload).  The inner dimension is never tiled: OpenGeMM's
    execute overwrites C, so there is no accumulation across invocations.
    Per-op ``tile_m``/``tile_n`` attributes override the arguments."""
    mesh = opengemm_backend.MESH
    m, k, n = op.dim("m"), op.dim("k"), op.dim("n")
    tile_m = op.tile("tile_m") or tile_m or mesh
    tile_n = op.tile("tile_n") or tile_n or mesh
    if m % mesh or n % mesh:
        raise LoweringError(f"matmul dims must be multiples of {mesh} for opengemm")
    if tile_m % mesh or tile_n % mesh:
        raise LoweringError(f"opengemm tiles must be multiples of {mesh}")
    if m % tile_m or n % tile_n:
        raise LoweringError(
            f"tile {tile_m}x{tile_n} must divide matmul dims {m}x{n}"
        )
    gen = IRGen(Builder(InsertPoint.before(op)))
    zero = gen.const(0)
    one = gen.const(1)
    m_tiles = gen.const(m // tile_m)
    n_tiles = gen.const(n // tile_n)
    with gen.loop(zero, m_tiles, one) as (_, ti):
        with gen.loop(zero, n_tiles, one) as (_, tj):
            tm_c = gen.const(tile_m)
            tn_c = tm_c if tile_n == tile_m else gen.const(tile_n)
            k_c = gen.const(k)
            n_c = gen.const(n)
            row = gen.mul(ti, tm_c)
            col = gen.mul(tj, tn_c)
            ptr_a = gen.add(op.a, gen.mul(row, k_c))
            ptr_b = gen.add(op.b, col)
            c_elems = gen.add(gen.mul(row, n_c), col)
            ptr_c = gen.add(op.c, gen.mul(c_elems, gen.const(4)))
            state = gen.setup(
                "opengemm",
                [
                    ("M", tm_c),
                    ("K", k_c),
                    ("N", tn_c),
                    ("ptr_A", ptr_a),
                    ("ptr_B", ptr_b),
                    ("ptr_C", ptr_c),
                    ("stride_A", k_c),
                    ("stride_B", n_c),
                    ("stride_C", n_c),
                    ("subtractions", gen.const(0)),
                ],
            )
            gen.await_(gen.launch(state))
    op.erase()


def lower_matmul_to_gemmini(op: linalg.MatmulOp) -> None:
    """Tile a matmul into Gemmini's fine-grained weight-stationary flow."""
    dim = ARRAY_DIM
    m, k, n = op.dim("m"), op.dim("k"), op.dim("n")
    if m % dim or k % dim or n % dim:
        raise LoweringError(f"matmul dims must be multiples of {dim} for gemmini")
    gen = IRGen(Builder(InsertPoint.before(op)))
    zero = gen.const(0)
    one = gen.const(1)
    dim_c = gen.const(dim)
    four = gen.const(4)
    k_c = gen.const(k)
    n_c = gen.const(n)

    state = gen.setup(
        "gemmini",
        [("stride_A", k_c), ("stride_B", n_c), ("stride_C", n_c)],
    )

    def tile_addr(base, trow, tcol, row_len, elem_bytes=None):
        row = gen.mul(trow, dim_c)
        col = gen.mul(tcol, dim_c)
        elems = gen.add(gen.mul(row, row_len), col)
        if elem_bytes is not None:
            elems = gen.mul(elems, elem_bytes)
        return gen.add(base, elems)

    op_mvin = gen.const(OP_MVIN)
    op_preload = gen.const(OP_PRELOAD)
    op_compute = gen.const(OP_COMPUTE)
    op_mvout = gen.const(OP_MVOUT)
    m_tiles = gen.const(m // dim)
    k_tiles = gen.const(k // dim)
    n_tiles = gen.const(n // dim)
    with gen.loop(zero, k_tiles, one) as (_, tk):
        with gen.loop(zero, n_tiles, one) as (_, tj):
            gen.launch(
                state,
                [("op", op_mvin), ("ld_addr", tile_addr(op.b, tk, tj, n_c))],
            )
    with gen.loop(zero, m_tiles, one) as (_, ti):
        with gen.loop(zero, k_tiles, one) as (_, tk):
            gen.launch(
                state,
                [("op", op_mvin), ("ld_addr", tile_addr(op.a, ti, tk, k_c))],
            )
    with gen.loop(zero, m_tiles, one) as (_, ti):
        with gen.loop(zero, n_tiles, one) as (_, tj):
            with gen.loop(zero, k_tiles, one) as (_, tk):
                acc = gen.select(gen.cmp("eq", tk, zero), zero, one)
                gen.launch(
                    state,
                    [
                        ("op", op_preload),
                        ("preload_addr", tile_addr(op.b, tk, tj, n_c)),
                        ("st_addr", tile_addr(op.c, ti, tj, n_c, four)),
                        ("acc", acc),
                    ],
                )
                token = gen.launch(
                    state,
                    [("op", op_compute), ("ld_addr", tile_addr(op.a, ti, tk, k_c))],
                )
                gen.await_(token)
            gen.launch(
                state,
                [("op", op_mvout), ("ld_addr", tile_addr(op.c, ti, tj, n_c, four))],
            )
    op.erase()


_ELEMENTWISE_OPCODES = {"add": 0, "mul": 1, "max": 2}


def lower_elementwise_to_toyvec(
    op: linalg.ElementwiseOp, chunk: int = 64
) -> None:
    """Chunk an elementwise op over the 8-lane vector engine."""
    n = op.n
    gen = IRGen(Builder(InsertPoint.before(op)))
    zero = gen.const(0)
    one = gen.const(1)
    full_chunks, tail = divmod(n, chunk)
    opcode = gen.const(_ELEMENTWISE_OPCODES[op.kind])
    if full_chunks:
        chunks_c = gen.const(full_chunks)
        with gen.loop(zero, chunks_c, one) as (_, i):
            bytes_off = gen.mul(gen.mul(i, gen.const(chunk)), gen.const(4))
            state = gen.setup(
                "toyvec",
                [
                    ("ptr_x", gen.add(op.x, bytes_off)),
                    ("ptr_y", gen.add(op.y, bytes_off)),
                    ("ptr_out", gen.add(op.out, bytes_off)),
                    ("n", gen.const(chunk)),
                    ("op", opcode),
                ],
            )
            gen.await_(gen.launch(state))
    if tail:
        tail_off = gen.const(full_chunks * chunk * 4)
        state = gen.setup(
            "toyvec",
            [
                ("ptr_x", gen.add(op.x, tail_off)),
                ("ptr_y", gen.add(op.y, tail_off)),
                ("ptr_out", gen.add(op.out, tail_off)),
                ("n", gen.const(tail)),
                ("op", opcode),
            ],
        )
        gen.await_(gen.launch(state))
    op.erase()


_MATMUL_LOWERINGS = {
    "opengemm": lower_matmul_to_opengemm,
    "gemmini": lower_matmul_to_gemmini,
}


@register_pass
class ConvertLinalgToAccfgPass(ModulePass):
    """Lower every linalg op to accfg clusters on its assigned target.

    The per-op-name ``targets`` dict gives the default assignment; an
    individual op's ``target`` attribute (e.g. a per-layer accelerator
    choice made by the network builder or the autotuner) overrides it.
    ``elementwise_chunk`` sets the vector-engine chunk length.
    """

    name = "convert-linalg-to-accfg"

    def __init__(
        self,
        targets: dict[str, str] | None = None,
        elementwise_chunk: int = 64,
    ) -> None:
        self.targets = dict(DEFAULT_TARGETS)
        if targets:
            self.targets.update(targets)
        self.elementwise_chunk = elementwise_chunk

    def apply(self, module: Operation, analyses=None) -> bool:
        changed = False
        for op in list(module.walk()):
            if isinstance(op, linalg.MatmulOp):
                target = op.target or self.targets["linalg.matmul"]
                lowering = _MATMUL_LOWERINGS.get(target)
                if lowering is None:
                    raise LoweringError(
                        f"no matmul lowering for target '{target}'"
                    )
                lowering(op)
                changed = True
            elif isinstance(op, linalg.ElementwiseOp):
                target = self.targets["linalg.elementwise"]
                if target != "toyvec":
                    raise LoweringError(
                        f"no elementwise lowering for target '{target}'"
                    )
                lower_elementwise_to_toyvec(op, self.elementwise_chunk)
                changed = True
        return changed
