"""The fused ``canonicalize + cse + dce`` cleanup driver.

The default pipelines used to ping-pong whole-module passes
(``canonicalize`` then ``cse`` then ``dce``, each walking and re-walking
the module, each followed by a verifier run).  This pass reaches the joint
fixpoint in one pass slot:

* the canonicalization patterns (which subsume DCE: ``DeadPureOpPattern``
  erases exactly what ``DCEPass`` erases) are driven to fixpoint by the
  worklist driver;
* CSE then runs once, threading a :class:`PatternRewriter` so the users of
  every replaced value are recorded;
* those touched ops *reseed* the worklist driver — no full re-walk — and
  the two steps alternate until CSE finds nothing, which (with the pattern
  fixpoint reached inside each driver run) is the joint fixpoint.

Under ``REPRO_REWRITE_DRIVER=sweep`` the same joint fixpoint is reached by
alternating full sweeps, which keeps the legacy driver usable as a
differential oracle for the whole pipeline.
"""

from __future__ import annotations

from ..ir.operation import Operation
from ..ir.rewriter import (
    GreedyPatternDriver,
    PatternRewriter,
    active_driver,
    drive_patterns,
    enclosing_scope,
)
from .canonicalize import DEFAULT_PATTERNS
from .cse import cse_root
from .pass_manager import ModulePass, register_pass, report_scopes

#: alternations of pattern-fixpoint + CSE before giving up; CSE can only
#: enable more dedup/folding a bounded number of times, so this is a
#: safety net, not an expected stop
MAX_CLEANUP_ROUNDS = 50

_PATTERN_DRIVER = GreedyPatternDriver(DEFAULT_PATTERNS)


@register_pass
class CleanupPass(ModulePass):
    """Fused canonicalize+cse+dce to a joint fixpoint (one pass slot)."""

    name = "cleanup"

    def apply(self, module: Operation, analyses=None):
        if active_driver() == "sweep":
            return self._apply_sweep(module)
        scopes: dict[Operation, None] = {}
        root_level = False
        changed_any = False

        def record(result) -> None:
            nonlocal root_level, changed_any
            if not result.changed:
                return
            changed_any = True
            if result.scopes is None:
                root_level = True
            else:
                scopes.update(result.scopes)

        rewriter = PatternRewriter()
        record(_PATTERN_DRIVER.run(module, rewriter=rewriter))
        for _ in range(MAX_CLEANUP_ROUNDS):
            cse_rewriter = PatternRewriter()

            def on_erase(op: Operation) -> None:
                nonlocal root_level
                scope = enclosing_scope(module, op)
                if scope is None:
                    root_level = True
                else:
                    scopes[scope] = None

            if not cse_root(module, rewriter=cse_rewriter, on_erase=on_erase):
                break
            changed_any = True
            # Only the neighbourhood CSE touched can enable new pattern
            # matches; reseed the worklist driver with it.
            seeds = [
                op
                for op in cse_rewriter.touched
                if op.parent is not None
            ]
            record(_PATTERN_DRIVER.run(module, seeds=seeds, rewriter=rewriter))
        return report_scopes(changed_any, scopes, root_level)

    def _apply_sweep(self, module: Operation):
        """Legacy-driver variant: alternate full sweeps to the same joint
        fixpoint (no scope tracking — sweeps do not report scopes)."""
        changed_any = drive_patterns(
            module, DEFAULT_PATTERNS, driver="sweep"
        ).changed
        for _ in range(MAX_CLEANUP_ROUNDS):
            if not cse_root(module):
                break
            changed_any = True
            drive_patterns(module, DEFAULT_PATTERNS, driver="sweep")
        return True if changed_any else False
