"""Dead-code elimination for pure ops.

Removes pure operations whose results are all unused, iterating until
fixpoint so chains of dead computation disappear.  A reverse walk makes most
chains die in a single sweep.
"""

from __future__ import annotations

from ..ir.operation import Operation
from .pass_manager import ModulePass, register_pass


@register_pass
class DCEPass(ModulePass):
    """Erase pure operations whose results are never used."""

    name = "dce"

    def apply(self, module: Operation, analyses=None) -> bool:
        erased_any = False
        changed = True
        while changed:
            changed = False
            for op in list(module.walk(reverse=True)):
                if op is module or op.parent is None:
                    continue
                if not op.is_pure or op.is_terminator or op.regions:
                    continue
                if any(result.has_uses for result in op.results):
                    continue
                op.erase()
                changed = True
                erased_any = True
        return erased_any
