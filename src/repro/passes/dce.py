"""Dead-code elimination for pure ops.

Removes pure operations whose results are all unused.  Worklist-driven: one
reverse walk seeds the queue (so most use-chains die the first time they are
visited, leaf first), and erasing an op re-enqueues exactly the definers of
its operands — the only ops an erasure can newly make dead — instead of
re-walking the whole module until fixpoint.
"""

from __future__ import annotations

from ..ir.operation import Operation
from ..ir.rewriter import Worklist, enclosing_scope
from .pass_manager import ModulePass, register_pass, report_scopes


@register_pass
class DCEPass(ModulePass):
    """Erase pure operations whose results are never used."""

    name = "dce"

    def apply(self, module: Operation, analyses=None):
        worklist = Worklist()
        for op in module.walk(reverse=True):
            worklist.push(op)
        erased_any = False
        root_level = False
        scopes: dict[Operation, None] = {}
        while worklist:
            op = worklist.pop()
            if op is module or op.parent is None:
                continue
            if not op.is_pure or op.is_terminator or op.regions:
                continue
            if any(result.has_uses for result in op.results):
                continue
            scope = enclosing_scope(module, op)
            definers = [
                operand.owner
                for operand in op.operands
                if isinstance(operand.owner, Operation)
            ]
            op.erase()
            erased_any = True
            for definer in definers:
                worklist.push(definer)
            if scope is None or scope is op:
                root_level = True
            else:
                scopes[scope] = None
        return report_scopes(erased_any, scopes, root_level)
