"""Optimization passes: generic cleanups plus the accfg-specific rewrites
from the paper (state tracing, configuration deduplication, configuration
overlap)."""

from .canonicalize import CanonicalizePass
from .cleanup import CleanupPass
from .cse import CSEPass, cse_root
from .dce import DCEPass
from .dedup import (
    DedupPass,
    KnownFields,
    KnownFieldsAnalysis,
    eliminate_redundant_fields,
    hoist_invariant_setup_fields,
    hoist_setups_into_branches,
    merge_consecutive_setups,
    remove_empty_setups,
)
from .inline import InlinePass
from .licm import LICMPass
from .lint import LintPass
from .lower_linalg import ConvertLinalgToAccfgPass, LoweringError
from .overlap import OverlapPass, overlap_straight_line, pipeline_loop
from .pass_manager import (
    PASS_REGISTRY,
    ModulePass,
    PassManager,
    PassStatistics,
    register_pass,
    report_scopes,
)
from .pipeline import (
    PIPELINES,
    baseline_pipeline,
    none_pipeline,
    volatile_baseline_pipeline,
    licm_pipeline,
    unroll_pipeline,
    dedup_pipeline,
    full_pipeline,
    overlap_pipeline,
    unroll_full_pipeline,
    pipeline_by_name,
)
from .unroll import UnrollPass
from .trace_states import (
    StateTracer,
    TraceStatesPass,
    state_linearity_diagnostics,
)

__all__ = [
    "CanonicalizePass",
    "CleanupPass",
    "CSEPass",
    "cse_root",
    "DCEPass",
    "DedupPass",
    "KnownFields",
    "KnownFieldsAnalysis",
    "eliminate_redundant_fields",
    "hoist_invariant_setup_fields",
    "hoist_setups_into_branches",
    "merge_consecutive_setups",
    "remove_empty_setups",
    "LICMPass",
    "LintPass",
    "InlinePass",
    "ConvertLinalgToAccfgPass",
    "LoweringError",
    "OverlapPass",
    "overlap_straight_line",
    "pipeline_loop",
    "PASS_REGISTRY",
    "ModulePass",
    "PassManager",
    "PassStatistics",
    "register_pass",
    "report_scopes",
    "PIPELINES",
    "baseline_pipeline",
    "none_pipeline",
    "volatile_baseline_pipeline",
    "licm_pipeline",
    "unroll_pipeline",
    "dedup_pipeline",
    "full_pipeline",
    "overlap_pipeline",
    "unroll_full_pipeline",
    "pipeline_by_name",
    "StateTracer",
    "TraceStatesPass",
    "state_linearity_diagnostics",
    "UnrollPass",
]
