"""Pass management.

A :class:`ModulePass` transforms a ``builtin.module`` in place.  The
:class:`PassManager` runs an ordered list of passes and optionally verifies
the module between passes, which catches IR corruption right where it is
introduced.  Passes self-register by name so pipelines can be described as
comma-separated strings (``"canonicalize,cse,accfg-dedup"``), mirroring
``mlir-opt``.

Change reporting and analysis caching
-------------------------------------

Modern passes take an optional second ``analyses`` argument (an
:class:`~repro.analysis.AnalysisManager`) and *report what they mutated*
from ``apply``:

* ``False``     — the module is untouched: cached analyses stay valid and
  the post-pass re-verification is skipped (nothing can have broken);
* ``True``/``None`` — the module (may have) changed anywhere: every cached
  analysis is invalidated and the module re-verified;
* an iterable of ops (usually ``func.func`` ops) — only those scopes
  changed: analyses over unrelated scopes survive.

Passes with the legacy single-argument ``apply(self, module)`` signature
keep working unchanged (their return value, conventionally ``None``, means
"assume everything changed").  The signature is inspected once per pass
class, never guessed per call.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass

from ..ir.operation import Operation
from ..ir.verifier import verify_operation

PASS_REGISTRY: dict[str, type["ModulePass"]] = {}

#: pass class -> whether its ``apply`` accepts an ``analyses`` argument
_APPLY_ACCEPTS_ANALYSES: dict[type, bool] = {}


def _accepts_analyses(cls: type) -> bool:
    cached = _APPLY_ACCEPTS_ANALYSES.get(cls)
    if cached is None:
        try:
            params = list(inspect.signature(cls.apply).parameters.values())
        except (TypeError, ValueError):
            params = []
        positional = [
            p
            for p in params
            if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
        ]
        cached = len(positional) >= 3 or any(
            p.kind is p.VAR_POSITIONAL for p in params
        )
        _APPLY_ACCEPTS_ANALYSES[cls] = cached
    return cached


def register_pass(cls: type["ModulePass"]) -> type["ModulePass"]:
    """Class decorator adding a pass to the pipeline registry."""
    if not cls.name:
        raise ValueError(f"pass class {cls.__name__} has no name")
    existing = PASS_REGISTRY.get(cls.name)
    if existing is not None and existing is not cls:
        raise ValueError(f"pass name '{cls.name}' registered twice")
    PASS_REGISTRY[cls.name] = cls
    return cls


def report_scopes(changed: bool, scopes, root_level: bool = False):
    """Build a pass change report from per-scope bookkeeping.

    ``scopes`` is an iterable of the top-level ops (usually ``func.func``)
    whose subtrees were mutated.  Falls back to the conservative ``True``
    when a change happened at root level, when scope tracking was
    unavailable, or when a reported scope was itself detached (its analyses
    could not be matched by ancestry anymore).
    """
    if not changed:
        return False
    if root_level or scopes is None:
        return True
    scopes = list(scopes)
    if any(scope.parent is None for scope in scopes):
        return True
    return scopes


class ModulePass:
    """Base class for module-level transformations.

    Subclasses implement either the legacy ``apply(self, module)`` or the
    modern ``apply(self, module, analyses=None)`` signature; modern passes
    report what they mutated (see the module docstring).
    """

    name: str = ""

    def apply(self, module: Operation) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<pass {self.name}>"


@dataclass(frozen=True)
class PassStatistics:
    """What one pass did to the module: wall time and op-count delta."""

    pass_name: str
    seconds: float
    ops_before: int
    ops_after: int

    @property
    def ops_delta(self) -> int:
        return self.ops_after - self.ops_before


class PassManager:
    """Runs a pipeline of passes over a module.

    With ``instrument=True``, per-pass wall time and IR-size deltas are
    collected in :attr:`statistics` (like ``mlir-opt -pass-statistics``).
    """

    def __init__(
        self,
        passes: list[ModulePass] | None = None,
        verify_each: "bool | str" = True,
        instrument: bool = False,
        lint: bool = False,
        analyses: "AnalysisManager | None" = None,
    ) -> None:
        self.passes: list[ModulePass] = list(passes or [])
        #: ``True`` — verify on entry and after every changed pass (catches
        #: corruption right where it is introduced; the debugging default).
        #: ``"final"`` — verify the whole module once, after the pipeline
        #: (the preset-pipeline policy: same soundness guarantee for the
        #: pipeline's *output*, one traversal instead of one per pass).
        #: ``False`` — no verification.
        if verify_each not in (True, False, "final"):
            raise ValueError(
                f"verify_each must be True, False or 'final', got {verify_each!r}"
            )
        self.verify_each = verify_each
        self.instrument = instrument
        #: with ``lint=True``, the accfg lint suite runs before and after
        #: the pipeline; a pipeline that *introduces* error-severity
        #: diagnostics fails the run (optimizations must not create hazards)
        self.lint = lint
        self.statistics: list[PassStatistics] = []
        #: per-pipeline analysis cache handed to passes that accept it;
        #: invalidated according to each pass's change report
        if analyses is None:
            from ..analysis.manager import AnalysisManager

            analyses = AnalysisManager()
        self.analyses = analyses

    @staticmethod
    def from_pipeline(pipeline: str, verify_each: bool = True) -> "PassManager":
        """Build a pass manager from ``"name1,name2,..."``."""
        passes: list[ModulePass] = []
        for name in pipeline.split(","):
            name = name.strip()
            if not name:
                continue
            cls = PASS_REGISTRY.get(name)
            if cls is None:
                known = ", ".join(sorted(PASS_REGISTRY))
                raise ValueError(f"unknown pass '{name}' (known: {known})")
            passes.append(cls())
        return PassManager(passes, verify_each)

    def add(self, pass_: ModulePass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def run(self, module: Operation) -> Operation:
        """Apply every pass in order; returns the module for chaining."""
        if self.verify_each is True:
            verify_operation(module)
        baseline_errors: dict[str, int] | None = None
        if self.lint:
            from ..analysis import error_code_counts, run_lints

            baseline_errors = error_code_counts(
                run_lints(module, analyses=self.analyses)
            )
        # Op counts chain from pass to pass: nothing mutates the module
        # between passes, so pass N's after-count is pass N+1's before-count,
        # and a pass reporting ``changed is False`` reuses its before-count —
        # one walk per *changing* pass instead of two walks per pass.
        op_count = sum(1 for _ in module.walk()) if self.instrument else 0
        for pass_ in self.passes:
            ops_before = op_count
            started = time.perf_counter() if self.instrument else 0.0
            if _accepts_analyses(type(pass_)):
                changed = pass_.apply(module, self.analyses)
            else:
                changed = pass_.apply(module)
            if self.instrument:
                if changed is not False:
                    op_count = sum(1 for _ in module.walk())
                self.statistics.append(
                    PassStatistics(
                        pass_name=pass_.name,
                        seconds=time.perf_counter() - started,
                        ops_before=ops_before,
                        ops_after=op_count,
                    )
                )
            if changed is False:
                # Untouched module: cached analyses stay valid, and the
                # pre-pass verification still covers the current IR.
                continue
            scopes: list[Operation] | None
            if changed is True or changed is None:
                scopes = None
                self.analyses.invalidate()
            else:
                scopes = list(changed)
                self.analyses.invalidate(scopes)
            if self.verify_each is True:
                # Scope-granular re-verification: a pass that reported the
                # exact functions it mutated only pays for verifying those.
                targets = [module]
                if scopes is not None and all(
                    scope.parent is not None for scope in scopes
                ):
                    targets = scopes
                try:
                    for target in targets:
                        verify_operation(target)
                except Exception as error:
                    raise RuntimeError(
                        f"IR verification failed after pass '{pass_.name}': {error}"
                    ) from error
        if self.verify_each == "final":
            try:
                verify_operation(module)
            except Exception as error:
                raise RuntimeError(
                    f"IR verification failed after pipeline: {error}"
                ) from error
        if baseline_errors is not None:
            from ..analysis import error_code_counts, run_lints

            after = error_code_counts(run_lints(module, analyses=self.analyses))
            introduced = {
                code: count - baseline_errors.get(code, 0)
                for code, count in after.items()
                if count > baseline_errors.get(code, 0)
            }
            if introduced:
                detail = ", ".join(
                    f"{code} (+{delta})" for code, delta in sorted(introduced.items())
                )
                raise RuntimeError(
                    f"pipeline introduced lint errors: {detail}"
                )
        return module

    def format_statistics(self) -> str:
        """Human-readable per-pass report (requires ``instrument=True``)."""
        if not self.statistics:
            return "(no pass statistics collected)"
        lines = [f"{'pass':<24}{'time':>10}{'ops':>8}{'delta':>8}"]
        for stat in self.statistics:
            lines.append(
                f"{stat.pass_name:<24}{stat.seconds * 1e3:>8.2f}ms"
                f"{stat.ops_after:>8}{stat.ops_delta:>+8}"
            )
        return "\n".join(lines)
