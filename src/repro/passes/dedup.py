"""Configuration deduplication (paper, Section 5.4).

Removes setup-field writes the compiler can prove redundant: a write of the
same value to a register that already holds it.  SSA-value identity is the
proxy for runtime-value equality — an SSA value cannot be reassigned, so two
reads of the same SSA value always see the same runtime value (and values
defined inside a loop body can never alias across iterations, because a
previous iteration's activation is a different SSA scope).

The pass pipeline inside ``accfg-dedup`` follows Section 5.4.1:

1. *hoist into branches* — sink a post-``scf.if`` setup into both branches so
   each branch regains a linear setup chain;
2. *loop-invariant setup-field hoisting* — move fields that stay constant for
   the whole loop into a fresh setup right before the loop (Figure 9, second
   block);
3. *redundant-field elimination* — drop fields whose known register value is
   the same SSA value, using a known-fields dataflow over the state chain;
4. *cleanups* — erase empty setups and merge launch-free consecutive setups.
"""

from __future__ import annotations

import warnings

from ..analysis.dataflow import KnownFields, KnownFieldsAnalysis, intersect
from ..dialects import accfg, scf
from ..ir.operation import Operation
from ..ir.ssa import OpResult, SSAValue
from .licm import is_defined_outside
from .pass_manager import ModulePass, register_pass, report_scopes

# The known-fields dataflow (KnownFields / intersect / KnownFieldsAnalysis)
# moved to repro.analysis.dataflow so the lint suite shares it; the names
# above stay importable from this module for backward compatibility.
__all__ = [
    "KnownFields",
    "KnownFieldsAnalysis",
    "intersect",
    "DedupPass",
    "hoist_setups_into_branches",
    "hoist_invariant_setup_fields",
    "eliminate_redundant_fields",
    "merge_consecutive_setups",
    "remove_empty_setups",
]


# ---------------------------------------------------------------------------
# Rewrites
# ---------------------------------------------------------------------------


def _defined_before(value: SSAValue, op: Operation) -> bool:
    """True when ``value`` is available right before ``op``'s position."""
    owner = value.owner
    if isinstance(owner, Operation):
        current: Operation | None = op
        while current is not None:
            if current.parent is owner.parent:
                return owner.is_before_in_block(current)
            current = current.parent_op
        return False
    # Block argument: visible if op is nested under the defining block.
    current = op
    while current is not None:
        if current.parent is owner:
            return True
        current = current.parent_op
    return False


def hoist_setups_into_branches(root: Operation) -> bool:
    """Sink a setup whose input state is an ``scf.if`` result into both
    branches, restoring linear setup chains (Section 5.4.1)."""
    changed = False
    for op in root.walk_list():
        if not isinstance(op, accfg.SetupOp) or op.parent is None:
            continue
        in_state = op.in_state
        if not isinstance(in_state, OpResult) or not isinstance(
            in_state.op, scf.IfOp
        ):
            continue
        if_op = in_state.op
        if if_op.parent is not op.parent:
            continue
        # The state between the if and the setup must not be observed by
        # anything else, and all field values must dominate the if.
        if len(in_state.uses) != 1 or not if_op.has_else:
            continue
        if not all(_defined_before(v, if_op) for _, v in op.fields):
            continue
        state_index = in_state.index
        for branch in (if_op.then_block, if_op.else_block):
            terminator = branch.terminator
            assert isinstance(terminator, scf.YieldOp)
            branch_state = terminator.operands[state_index]
            clone = accfg.SetupOp.create(
                op.accelerator, list(op.fields), branch_state
            )
            branch.insert_op_before(terminator, clone)
            terminator.set_operand(state_index, clone.out_state)
        op.out_state.replace_all_uses_with(in_state)
        op.erase()
        changed = True
    return changed


def _top_level_setups(loop: scf.ForOp, accelerator: str) -> list[accfg.SetupOp]:
    return [
        op
        for op in loop.body.ops
        if isinstance(op, accfg.SetupOp) and op.accelerator == accelerator
    ]


def _loop_certainly_runs(loop: scf.ForOp) -> bool:
    """True when the loop provably executes at least one iteration."""
    from ..dialects import arith

    lb = arith.constant_value(loop.lb)
    ub = arith.constant_value(loop.ub)
    return lb is not None and ub is not None and lb < ub


def _insert_guarded_setup(
    loop: scf.ForOp,
    accelerator: str,
    fields: list[tuple[str, SSAValue]],
    init: SSAValue,
) -> SSAValue:
    """Insert a setup before ``loop``, guarded by ``lb < ub`` when the loop
    might run zero times (writing registers the original program never wrote
    would be observable by later launches)."""
    from ..dialects import arith

    assert loop.parent is not None
    if _loop_certainly_runs(loop):
        pre = accfg.SetupOp.create(accelerator, fields, init)
        loop.parent.insert_op_before(loop, pre)
        return pre.out_state
    cond = arith.CmpiOp.create("ult", loop.lb, loop.ub)
    loop.parent.insert_op_before(loop, cond)
    state_type = accfg.state_type(accelerator)
    if_op = scf.IfOp.create(cond.result, [state_type])
    guarded = accfg.SetupOp.create(accelerator, fields, init)
    if_op.then_block.add_op(guarded)
    if_op.then_block.add_op(scf.YieldOp.create([guarded.out_state]))
    if_op.else_block.add_op(scf.YieldOp.create([init]))
    loop.parent.insert_op_before(loop, if_op)
    return if_op.results[0]


def hoist_invariant_setup_fields(root: Operation) -> bool:
    """Move loop-invariant setup fields out of ``scf.for`` bodies.

    A field can be hoisted when (a) its value is defined outside the loop,
    (b) it is written by exactly one top-level setup in the body (two
    launches with different parameters forbid hoisting, Section 5.4.1), and
    (c) the loop threads the accelerator state through ``iter_args`` so the
    pre-loop write is visible to every iteration.
    """
    changed = False
    loops = [op for op in root.walk_list() if isinstance(op, scf.ForOp)]
    for loop in reversed(loops):  # innermost first
        changed |= _hoist_fields_from_loop(loop)
    return changed


def _hoist_fields_from_loop(loop: scf.ForOp) -> bool:
    changed = False
    # Find state iter-args of this loop.
    for arg_index, (arg, init) in enumerate(zip(loop.iter_args, loop.iter_inits)):
        if not isinstance(arg.type, accfg.StateType):
            continue
        accelerator = arg.type.accelerator
        setups = _top_level_setups(loop, accelerator)
        if not setups:
            continue
        # Program order over the whole body (nested regions included):
        # register retention means soundness is about *when* writes execute,
        # not about the SSA chain alone.
        order = {op: i for i, op in enumerate(loop.walk_list())}
        first_launch = min(
            (
                order[op]
                for op in order
                if isinstance(op, accfg.LaunchOp) and op.accelerator == accelerator
            ),
            default=None,
        )
        field_writers: dict[str, list[accfg.SetupOp]] = {}
        for op in order:
            if isinstance(op, accfg.SetupOp) and op.accelerator == accelerator:
                for name, _ in op.fields:
                    field_writers.setdefault(name, []).append(op)
        hoisted: list[tuple[str, SSAValue]] = []
        for setup in setups:
            # A write moved to before the loop is only equivalent if every
            # launch in the body already observed it in its own iteration —
            # i.e. the writer precedes the first launch.  A writer after a
            # launch supplies the *next* iteration, so iteration 0 must keep
            # seeing the pre-loop register contents.
            executes_before_launches = (
                first_launch is None or order[setup] < first_launch
            )
            keep: list[tuple[str, SSAValue]] = []
            setup_fields = setup.fields
            for name, value in setup_fields:
                if (
                    len(field_writers[name]) == 1
                    and executes_before_launches
                    and is_defined_outside(value, loop)
                ):
                    hoisted.append((name, value))
                else:
                    keep.append((name, value))
            if len(keep) != len(setup_fields):
                setup.set_fields(keep)
                changed = True
        if hoisted:
            new_init = _insert_guarded_setup(loop, accelerator, hoisted, init)
            loop.set_operand(3 + arg_index, new_init)
    return changed


def eliminate_redundant_fields(root: Operation, manager=None) -> bool:
    """Drop setup fields whose register already holds the same SSA value.

    ``manager`` is an optional :class:`~repro.analysis.AnalysisManager`; when
    given (and still valid for ``root``), its cached per-accelerator
    known-fields analyses are reused instead of rebuilt from scratch.
    """
    changed = False
    local: dict[str, KnownFieldsAnalysis] = {}
    for op in root.walk_list():
        if not isinstance(op, accfg.SetupOp) or op.parent is None:
            continue
        if op.in_state is None:
            continue
        if manager is not None:
            analysis = manager.known_fields(root, op.accelerator)
        else:
            analysis = local.setdefault(
                op.accelerator, KnownFieldsAnalysis(op.accelerator)
            )
        known = analysis.known(op.in_state)
        fields = op.fields
        keep = [
            (name, value)
            for name, value in fields
            if known.fields.get(name) is not value
        ]
        if len(keep) != len(fields):
            # The cached analysis stays valid: every dropped field wrote the
            # exact SSA value the register already held, so the state after
            # this setup — and everything downstream — is unchanged.
            op.set_fields(keep)
            changed = True
    return changed


def remove_empty_setups(root: Operation) -> bool:
    """Erase setups that write nothing: forward their input state (or drop
    result-free anchors entirely when unused)."""
    changed = False
    for op in root.walk_list():
        if not isinstance(op, accfg.SetupOp) or op.parent is None:
            continue
        if op.fields:
            continue
        in_state = op.in_state
        if in_state is not None:
            op.out_state.replace_all_uses_with(in_state)
            op.erase()
            changed = True
        elif not op.out_state.has_uses:
            op.erase()
            changed = True
    return changed


def merge_consecutive_setups(root: Operation) -> bool:
    """Merge a setup chain ``s1 -> s2`` when nothing else observes ``s1``."""
    changed = False
    for op in root.walk_list():
        if not isinstance(op, accfg.SetupOp) or op.parent is None:
            continue
        in_state = op.in_state
        if not isinstance(in_state, OpResult):
            continue
        producer = in_state.op
        if not isinstance(producer, accfg.SetupOp):
            continue
        if producer.parent is not op.parent:
            continue
        if len(in_state.uses) != 1:
            continue  # a launch or another op observes the intermediate state
        overridden = set(op.field_names)
        merged_fields = [
            (name, value)
            for name, value in producer.fields
            if name not in overridden
        ] + list(op.fields)
        merged = accfg.SetupOp.create(
            op.accelerator, merged_fields, producer.in_state
        )
        assert op.parent is not None
        op.parent.insert_op_before(op, merged)
        op.out_state.replace_all_uses_with(merged.out_state)
        op.erase()
        producer.erase()
        changed = True
    return changed


#: rounds of the five-phase flow per function before giving up (a phase can
#: enable another, but chains are short in practice)
MAX_DEDUP_ROUNDS = 20


def _dedup_root(root: Operation, analyses=None) -> bool:
    """Run the five-phase dedup flow over one root until fixpoint."""
    changed_any = False
    for _ in range(MAX_DEDUP_ROUNDS):
        structural = hoist_setups_into_branches(root)
        structural |= hoist_invariant_setup_fields(root)
        # The shared analysis cache is only trustworthy while this pass
        # has not yet mutated this scope; after the first change, fall
        # back to a private (freshly built) analysis.
        shared = analyses if not (structural or changed_any) else None
        eliminated = eliminate_redundant_fields(root, shared)
        structural |= merge_consecutive_setups(root)
        structural |= remove_empty_setups(root)
        if structural or eliminated:
            changed_any = True
        # Field elimination cannot enable any phase by itself: a removed
        # field was a no-op write, so the known-fields map, setup
        # adjacency, and loop invariance are all unchanged.  Only the
        # structural phases force another round.
        if not structural:
            return changed_any
    warnings.warn(
        f"accfg-dedup did not converge within {MAX_DEDUP_ROUNDS} rounds",
        RuntimeWarning,
        stacklevel=2,
    )
    return changed_any


@register_pass
class DedupPass(ModulePass):
    """Configuration deduplication (step 3 of the flow, Figure 8).

    Runs the round loop *per function* rather than over the whole module:
    setup chains never cross function boundaries, so one function reaching
    its fixpoint never needs to be rescanned because another changed — and
    the change report names exactly the functions that were mutated.
    """

    name = "accfg-dedup"

    def apply(self, module: Operation, analyses=None):
        from ..dialects import func

        tops = [
            op
            for region in module.regions
            for block in region.blocks
            for op in block.ops
        ]
        if not all(isinstance(op, func.FuncOp) for op in tops):
            # Setups directly at module level (hand-written tests): phases
            # can reach across tops, so fall back to whole-module rounds.
            return True if _dedup_root(module, analyses) else False
        scopes: dict[Operation, None] = {}
        for fn in tops:
            if fn.is_declaration:
                continue
            if not any(isinstance(op, accfg.SetupOp) for op in fn.walk_list()):
                continue
            if _dedup_root(fn, analyses):
                scopes[fn] = None
        return report_scopes(bool(scopes), scopes)
