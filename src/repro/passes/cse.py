"""Common sub-expression elimination.

Scoped by region nesting: an op inside a loop body may be replaced by an
identical op in an enclosing block (the enclosing value is visible inside the
region), but not vice versa.  Only pure, region-free ops participate.

The paper leans on CSE as a correctness amplifier for configuration
deduplication (Section 5.4): dedup compares setup fields by SSA-value
identity, and CSE is what makes "same computed value" become "same SSA
value".
"""

from __future__ import annotations

from collections import ChainMap

from ..ir.attributes import Attribute
from ..ir.block import Block
from ..ir.operation import Operation
from ..ir.rewriter import Rewriter
from .pass_manager import ModulePass, register_pass


def _op_key(op: Operation) -> tuple | None:
    """A hashable structural key; None when the op cannot be CSE'd."""
    if not op.is_pure or op.regions or op.is_terminator:
        return None
    attrs: list[tuple[str, Attribute]] = sorted(op.attributes.items())
    return (
        op.name,
        tuple(id(operand) for operand in op.operands),
        tuple(attrs),
        tuple(result.type for result in op.results),
    )


@register_pass
class CSEPass(ModulePass):
    """Eliminate structurally identical pure ops within nested scopes."""

    name = "cse"

    def apply(self, module: Operation, analyses=None) -> bool:
        changed = False
        for region in module.regions:
            for block in region.blocks:
                changed |= self._process_block(block, ChainMap())
        return changed

    def _process_block(self, block: Block, known: ChainMap) -> bool:
        changed = False
        for op in list(block.ops):
            key = _op_key(op)
            if key is not None:
                existing = known.get(key)
                if existing is not None:
                    Rewriter.replace_values(op, list(existing.results))
                    changed = True
                    continue
                known[key] = op
            for region in op.regions:
                for nested in region.blocks:
                    changed |= self._process_block(nested, known.new_child())
        return changed
