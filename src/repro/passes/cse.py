"""Common sub-expression elimination.

Scoped by region nesting: an op inside a loop body may be replaced by an
identical op in an enclosing block (the enclosing value is visible inside the
region), but not vice versa.  Only pure, region-free ops participate.

The paper leans on CSE as a correctness amplifier for configuration
deduplication (Section 5.4): dedup compares setup fields by SSA-value
identity, and CSE is what makes "same computed value" become "same SSA
value".

:func:`cse_root` is the reusable core: it optionally threads a
:class:`~repro.ir.rewriter.PatternRewriter` so callers (the fused cleanup
driver) learn which ops were touched, and reports the erased duplicates so
the pass can attribute changes to functions.
"""

from __future__ import annotations

from typing import Callable

from ..ir.attributes import Attribute
from ..ir.block import Block
from ..ir.operation import Operation
from ..ir.rewriter import Rewriter, enclosing_scope
from .pass_manager import ModulePass, register_pass, report_scopes


def _op_key(op: Operation) -> tuple | None:
    """A hashable structural key; None when the op cannot be CSE'd."""
    if not op.is_pure or op.regions or op.is_terminator:
        return None
    attributes = op.attributes
    attrs: tuple[tuple[str, Attribute], ...] = (
        tuple(sorted(attributes.items())) if attributes else ()
    )
    return (
        op.name,
        tuple(id(operand) for operand in op._operands),
        attrs,
        tuple(result.type for result in op.results),
    )


def cse_root(
    root: Operation,
    rewriter: Rewriter | None = None,
    on_erase: Callable[[Operation], None] | None = None,
) -> bool:
    """One CSE pass over everything nested in ``root``.

    ``rewriter`` routes the replacements (a :class:`PatternRewriter` records
    the touched users for worklist reseeding); ``on_erase`` observes each
    duplicate right *before* it is erased, while its parent chain is intact.
    """
    if rewriter is None:
        rewriter = Rewriter()
    changed = False
    for region in root.regions:
        for block in region.blocks:
            changed |= _process_block(block, {}, rewriter, on_erase)
    return changed


def _process_block(
    block: Block,
    known: dict,
    rewriter: Rewriter,
    on_erase: Callable[[Operation], None] | None,
) -> bool:
    changed = False
    for op in list(block.ops):
        key = _op_key(op)
        if key is not None:
            existing = known.get(key)
            if existing is not None:
                if on_erase is not None:
                    on_erase(op)
                rewriter.replace_values(op, list(existing.results))
                changed = True
                continue
            known[key] = op
        for region in op.regions:
            for nested in region.blocks:
                # Copy-on-descend scoping: entries added inside the nested
                # block must not leak back out, and a flat dict copy beats a
                # ChainMap's per-lookup chain walk at our shallow nestings.
                changed |= _process_block(
                    nested, dict(known), rewriter, on_erase
                )
    return changed


@register_pass
class CSEPass(ModulePass):
    """Eliminate structurally identical pure ops within nested scopes."""

    name = "cse"

    def apply(self, module: Operation, analyses=None):
        scopes: dict[Operation, None] = {}
        root_level = False

        def record(op: Operation) -> None:
            nonlocal root_level
            scope = enclosing_scope(module, op)
            if scope is None:
                root_level = True
            else:
                scopes[scope] = None

        changed = cse_root(module, on_erase=record)
        return report_scopes(changed, scopes, root_level)
