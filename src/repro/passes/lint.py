"""A pass wrapper around the accfg lint suite.

Lets pipelines embed a diagnostics gate, e.g.
``PassManager.from_pipeline("accfg-trace-states,accfg-dedup,accfg-lint")``:
the pass fails the pipeline on any error-severity diagnostic and stores the
full list on itself for inspection.
"""

from __future__ import annotations

from ..ir.operation import Operation
from .pass_manager import ModulePass, register_pass


@register_pass
class LintPass(ModulePass):
    """Run the ACCFG lint suite; fail on error-severity diagnostics."""

    name = "accfg-lint"

    def __init__(self, target: str | None = None) -> None:
        self.target = target
        self.diagnostics = []

    def apply(self, module: Operation, analyses=None) -> bool:
        from ..analysis import Severity, run_lints

        self.diagnostics = run_lints(module, target=self.target, analyses=analyses)
        errors = [d for d in self.diagnostics if d.severity is Severity.ERROR]
        if errors:
            summary = "\n\n".join(d.format() for d in errors)
            raise RuntimeError(
                f"accfg-lint found {len(errors)} error(s):\n{summary}"
            )
        return False  # read-only: never mutates the module
