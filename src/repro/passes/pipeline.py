"""Preset pass pipelines for the five-step compilation flow (Figure 8).

Step 1 (frontend conversion to accfg clusters) and step 5 (target lowering)
are accelerator specific and live in :mod:`repro.backends`; the pipelines
here cover the shared middle: state tracing (2), deduplication (3), and
overlap (4), bracketed by the standard cleanups accfg unlocks.
"""

from __future__ import annotations

from .canonicalize import CanonicalizePass
from .cleanup import CleanupPass
from .dce import DCEPass
from .dedup import DedupPass
from .licm import LICMPass
from .overlap import OverlapPass
from .pass_manager import PassManager
from .trace_states import TraceStatesPass
from .unroll import UnrollPass


def cleanup_pipeline() -> list:
    """The stock optimizations accfg code benefits from "for free".

    ``cleanup`` is the fused canonicalize+cse+dce driver (one pass slot to
    their joint fixpoint, instead of three whole-module passes), followed by
    LICM.  No trailing DCE is needed: hoisting creates no dead ops.
    """
    return [CleanupPass(), LICMPass()]


def baseline_pipeline() -> PassManager:
    """The paper's OpenGeMM base configuration: compiled through the same
    MLIR flow (generic cleanups apply) but with no configuration
    deduplication and no configuration overlap (Section 6.2)."""
    return PassManager(cleanup_pipeline(), verify_each="final")


def volatile_baseline_pipeline() -> PassManager:
    """The paper's Gemmini baseline: C code with volatile inline assembly
    compiled by GCC at ``-O2``.

    Scalar folding and CSE still happen, but the volatile RoCC sequences
    (emitted with "memory" clobbers) pin the surrounding code in place —
    Section 3.1: volatile asm "fully prevents the compiler from optimizing
    any accelerator configuration code" — which we model by withholding
    loop-invariant code motion from configuration-parameter computation.
    """
    return PassManager([CleanupPass()], verify_each="final")


def none_pipeline() -> PassManager:
    """Run nothing at all (the IR exactly as the frontend emitted it)."""
    return PassManager([], verify_each="final")


def licm_pipeline() -> PassManager:
    """Loop-invariant code motion alone (plus the folding it needs and the
    dead code it leaves) — isolates the hoisting leg of the cleanups."""
    return PassManager(
        [CanonicalizePass(), LICMPass(), DCEPass()], verify_each="final"
    )


def unroll_pipeline() -> PassManager:
    """Full unrolling of small constant-trip loops, then the cleanups —
    exposes cross-iteration redundancy to CSE without dedup's help."""
    return PassManager(
        [UnrollPass(), *cleanup_pipeline()], verify_each="final"
    )


def dedup_pipeline() -> PassManager:
    """Cleanups + state tracing + configuration deduplication."""
    return PassManager(
        [
            *cleanup_pipeline(),
            TraceStatesPass(),
            DedupPass(),
            *cleanup_pipeline(),
        ],
        verify_each="final",
    )


def overlap_pipeline(concurrent: set[str] | None = None) -> PassManager:
    """Cleanups + state tracing + configuration overlap (no dedup)."""
    return PassManager(
        [
            *cleanup_pipeline(),
            TraceStatesPass(),
            OverlapPass(concurrent),
            *cleanup_pipeline(),
        ],
        verify_each="final",
    )


def full_pipeline(concurrent: set[str] | None = None) -> PassManager:
    """The complete accfg optimization pipeline: dedup then overlap."""
    return PassManager(
        [
            *cleanup_pipeline(),
            TraceStatesPass(),
            DedupPass(),
            OverlapPass(concurrent),
            *cleanup_pipeline(),
        ],
        verify_each="final",
    )


def unroll_full_pipeline(concurrent: set[str] | None = None) -> PassManager:
    """Unrolling in front of the complete accfg pipeline.

    Fully unrolled constant-trip tile loops turn per-invocation parameter
    calculation into constants (the Section 4.6 story) and expose
    cross-invocation field redundancy to dedup as straight-line code.  This
    is the pipeline the autotuner's size-specialized schedules want: plain
    ``full`` never sees the redundancy because it lives across loop
    iterations of different depths.
    """
    return PassManager(
        [
            UnrollPass(),
            *cleanup_pipeline(),
            TraceStatesPass(),
            DedupPass(),
            OverlapPass(concurrent),
            *cleanup_pipeline(),
        ],
        verify_each="final",
    )


PIPELINES = {
    "none": none_pipeline,
    "baseline": baseline_pipeline,
    "volatile-baseline": volatile_baseline_pipeline,
    "licm": licm_pipeline,
    "unroll": unroll_pipeline,
    "dedup": dedup_pipeline,
    "overlap": overlap_pipeline,
    "full": full_pipeline,
    "unroll-full": unroll_full_pipeline,
}


def pipeline_by_name(name: str) -> PassManager:
    """Look up one of the evaluation's four optimization levels."""
    try:
        factory = PIPELINES[name]
    except KeyError:
        raise ValueError(
            f"unknown pipeline '{name}' (expected one of {sorted(PIPELINES)})"
        ) from None
    return factory()
