"""Function inlining.

Calls are optimization barriers for accelerator state (unless annotated);
inlining removes the barrier altogether, letting state tracing and
deduplication see through what used to be a function boundary — the
practical counterpart to the paper's outlook on cross-function effects
(Section 8).

Only direct calls to same-module, non-recursive function definitions are
inlined; declarations and (mutually) recursive calls are left in place.

The pass drives a worklist of call sites: inlining one call enqueues only
the calls cloned out of the callee body, instead of re-walking the module
for up to ``max_rounds`` rounds.  The function map and recursive-function
set are computed once — inlining can only shrink the call graph's edge set
toward its transitive closure, so no new cycles can appear mid-run.
"""

from __future__ import annotations

import warnings

from ..dialects import func
from ..dialects.builtin import ModuleOp
from ..ir.operation import Operation
from ..ir.rewriter import Rewriter, Worklist, enclosing_scope
from ..ir.ssa import SSAValue
from .pass_manager import ModulePass, register_pass, report_scopes


def _function_map(module: ModuleOp) -> dict[str, func.FuncOp]:
    return {
        op.sym_name: op
        for op in module.body_block.ops
        if isinstance(op, func.FuncOp)
    }


def _calls_in(fn: func.FuncOp) -> set[str]:
    return {
        op.callee for op in fn.walk() if isinstance(op, func.CallOp)
    }


def _recursive_functions(functions: dict[str, func.FuncOp]) -> set[str]:
    """Functions on a call cycle (including self-recursion)."""
    edges = {
        name: (_calls_in(fn) if not fn.is_declaration else set())
        for name, fn in functions.items()
    }
    def reaches(start: str, target: str, seen: set[str]) -> bool:
        if start in seen:
            return False
        seen.add(start)
        for callee in edges.get(start, ()):
            if callee == target or reaches(callee, target, seen):
                return True
        return False

    return {name for name in functions if reaches(name, name, set())}


def inline_call(
    call: func.CallOp,
    callee: func.FuncOp,
    cloned: list[Operation] | None = None,
) -> None:
    """Replace ``call`` with a clone of ``callee``'s body.

    ``cloned`` (when given) collects the inserted body clones so the caller
    can find the call sites they contain without a re-walk.
    """
    value_map: dict[SSAValue, SSAValue] = dict(
        zip(callee.args, call.operands)
    )
    block = call.parent
    assert block is not None
    index = block.index_of(call)
    returned: list[SSAValue] = []
    for op in callee.body.ops:
        if isinstance(op, func.ReturnOp):
            returned = [value_map.get(v, v) for v in op.operands]
            break
        clone = op.clone(value_map)
        block.insert_op_at(index, clone)
        index += 1
        if cloned is not None:
            cloned.append(clone)
    Rewriter.replace_values(call, returned)


@register_pass
class InlinePass(ModulePass):
    """Inline direct calls to local, non-recursive function definitions."""

    name = "inline"

    def __init__(self, max_rounds: int = 8) -> None:
        self.max_rounds = max_rounds

    def apply(self, module: Operation, analyses=None):
        assert isinstance(module, ModuleOp)
        functions = _function_map(module)
        recursive = _recursive_functions(functions)
        worklist = Worklist()
        for op in module.walk():
            if isinstance(op, func.CallOp):
                worklist.push(op)
        #: matches the legacy bound of max_rounds full-module sweeps
        budget = self.max_rounds * max(len(worklist), 1)
        inlined = 0
        scopes: dict[Operation, None] = {}
        while worklist:
            op = worklist.pop()
            if not isinstance(op, func.CallOp) or op.parent is None:
                continue
            callee = functions.get(op.callee)
            if (
                callee is None
                or callee.is_declaration
                or op.callee in recursive
            ):
                continue
            if inlined >= budget:
                warnings.warn(
                    f"inline stopped after {inlined} call sites "
                    f"(budget {budget}); remaining calls left in place",
                    RuntimeWarning,
                    stacklevel=2,
                )
                break
            scope = enclosing_scope(module, op)
            cloned: list[Operation] = []
            inline_call(op, callee, cloned)
            inlined += 1
            if scope is not None:
                scopes[scope] = None
            for clone in cloned:
                if isinstance(clone, func.CallOp):
                    worklist.push(clone)
                elif clone.regions:
                    for nested in clone.walk():
                        if isinstance(nested, func.CallOp):
                            worklist.push(nested)
        return report_scopes(inlined > 0, scopes)
