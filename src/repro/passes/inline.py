"""Function inlining.

Calls are optimization barriers for accelerator state (unless annotated);
inlining removes the barrier altogether, letting state tracing and
deduplication see through what used to be a function boundary — the
practical counterpart to the paper's outlook on cross-function effects
(Section 8).

Only direct calls to same-module, non-recursive function definitions are
inlined; declarations and (mutually) recursive calls are left in place.
"""

from __future__ import annotations

from ..dialects import func
from ..dialects.builtin import ModuleOp
from ..ir.operation import Operation
from ..ir.rewriter import Rewriter
from ..ir.ssa import SSAValue
from .pass_manager import ModulePass, register_pass


def _function_map(module: ModuleOp) -> dict[str, func.FuncOp]:
    return {
        op.sym_name: op
        for op in module.body_block.ops
        if isinstance(op, func.FuncOp)
    }


def _calls_in(fn: func.FuncOp) -> set[str]:
    return {
        op.callee for op in fn.walk() if isinstance(op, func.CallOp)
    }


def _recursive_functions(functions: dict[str, func.FuncOp]) -> set[str]:
    """Functions on a call cycle (including self-recursion)."""
    edges = {
        name: (_calls_in(fn) if not fn.is_declaration else set())
        for name, fn in functions.items()
    }
    def reaches(start: str, target: str, seen: set[str]) -> bool:
        if start in seen:
            return False
        seen.add(start)
        for callee in edges.get(start, ()):
            if callee == target or reaches(callee, target, seen):
                return True
        return False

    return {name for name in functions if reaches(name, name, set())}


def inline_call(call: func.CallOp, callee: func.FuncOp) -> None:
    """Replace ``call`` with a clone of ``callee``'s body."""
    value_map: dict[SSAValue, SSAValue] = dict(
        zip(callee.args, call.operands)
    )
    block = call.parent
    assert block is not None
    index = block.index_of(call)
    returned: list[SSAValue] = []
    for op in callee.body.ops:
        if isinstance(op, func.ReturnOp):
            returned = [value_map.get(v, v) for v in op.operands]
            break
        clone = op.clone(value_map)
        block.insert_op_at(index, clone)
        index += 1
    Rewriter.replace_values(call, returned)


@register_pass
class InlinePass(ModulePass):
    """Inline direct calls to local, non-recursive function definitions."""

    name = "inline"

    def __init__(self, max_rounds: int = 8) -> None:
        self.max_rounds = max_rounds

    def apply(self, module: Operation, analyses=None) -> bool:
        assert isinstance(module, ModuleOp)
        inlined_any = False
        for _ in range(self.max_rounds):
            functions = _function_map(module)
            recursive = _recursive_functions(functions)
            changed = False
            for op in list(module.walk()):
                if not isinstance(op, func.CallOp) or op.parent is None:
                    continue
                callee = functions.get(op.callee)
                if (
                    callee is None
                    or callee.is_declaration
                    or op.callee in recursive
                ):
                    continue
                inline_call(op, callee)
                changed = True
                inlined_any = True
            if not changed:
                break
        return inlined_any
