"""Loop unrolling.

Fully unrolls ``scf.for`` loops with small constant trip counts.  The paper
attributes part of the Gemmini uplift to "better constant folding and loop
unrolling" (Section 6.1): unrolled iterations become straight-line code
where per-iteration setup fields turn into constants and cross-iteration
redundancy becomes visible to configuration deduplication without needing
the loop-hoisting machinery.

Loop-carried values (including traced accelerator state) are threaded
through the unrolled copies, so the pass composes with ``accfg-trace-states``
in either order.
"""

from __future__ import annotations

from ..dialects import arith, scf
from ..ir.operation import Operation
from ..ir.ssa import SSAValue
from .pass_manager import ModulePass, register_pass

DEFAULT_MAX_TRIPS = 8


def constant_trip_count(loop: scf.ForOp) -> int | None:
    """The loop's trip count when lb/ub/step are all constants."""
    lb = arith.constant_value(loop.lb)
    ub = arith.constant_value(loop.ub)
    step = arith.constant_value(loop.step)
    if lb is None or ub is None or step is None or step <= 0:
        return None
    if ub <= lb:
        return 0
    return -(-(ub - lb) // step)


def unroll_loop(loop: scf.ForOp, max_trips: int = DEFAULT_MAX_TRIPS) -> bool:
    """Fully unroll ``loop`` if its trip count is constant and small."""
    trips = constant_trip_count(loop)
    if trips is None or trips > max_trips or trips == 0:
        return False
    block = loop.parent
    if block is None:
        return False
    lb = arith.constant_value(loop.lb)
    step = arith.constant_value(loop.step)
    assert lb is not None and step is not None

    carried: list[SSAValue] = list(loop.iter_inits)
    insert_index = block.index_of(loop)
    for trip in range(trips):
        iv_value = lb + trip * step
        iv_const = arith.ConstantOp.create(iv_value, loop.induction_var.type)
        block.insert_op_at(insert_index, iv_const)
        insert_index += 1
        value_map: dict[SSAValue, SSAValue] = {
            loop.induction_var: iv_const.result
        }
        for arg, value in zip(loop.iter_args, carried):
            value_map[arg] = value
        yielded: list[SSAValue] = []
        for op in loop.body.ops:
            if isinstance(op, scf.YieldOp):
                yielded = [value_map.get(v, v) for v in op.operands]
                continue
            clone = op.clone(value_map)
            block.insert_op_at(insert_index, clone)
            insert_index += 1
        carried = yielded
    for result, value in zip(loop.results, carried):
        result.replace_all_uses_with(value)
    loop.erase()
    return True


@register_pass
class UnrollPass(ModulePass):
    """Fully unroll small constant-trip-count loops (innermost first)."""

    name = "unroll"

    def __init__(self, max_trips: int = DEFAULT_MAX_TRIPS) -> None:
        self.max_trips = max_trips

    def apply(self, module: Operation, analyses=None) -> bool:
        unrolled_any = False
        changed = True
        while changed:
            changed = False
            loops = [op for op in module.walk() if isinstance(op, scf.ForOp)]
            for loop in reversed(loops):  # innermost first
                if loop.parent is not None and unroll_loop(loop, self.max_trips):
                    changed = True
                    unrolled_any = True
        return unrolled_any
