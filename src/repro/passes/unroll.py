"""Loop unrolling.

Fully unrolls ``scf.for`` loops with small constant trip counts.  The paper
attributes part of the Gemmini uplift to "better constant folding and loop
unrolling" (Section 6.1): unrolled iterations become straight-line code
where per-iteration setup fields turn into constants and cross-iteration
redundancy becomes visible to configuration deduplication without needing
the loop-hoisting machinery.

Loop-carried values (including traced accelerator state) are threaded
through the unrolled copies, so the pass composes with ``accfg-trace-states``
in either order.

The pass drives a worklist of loops (seeded innermost-first) instead of
re-walking the module until fixpoint: :func:`unroll_loop` reports the ops it
cloned, and only the loops nested inside those clones are new work.
"""

from __future__ import annotations

from ..dialects import arith, scf
from ..ir.operation import Operation
from ..ir.rewriter import Worklist, enclosing_scope
from ..ir.ssa import SSAValue
from .pass_manager import ModulePass, register_pass, report_scopes

DEFAULT_MAX_TRIPS = 8


def constant_trip_count(loop: scf.ForOp) -> int | None:
    """The loop's trip count when lb/ub/step are all constants."""
    lb = arith.constant_value(loop.lb)
    ub = arith.constant_value(loop.ub)
    step = arith.constant_value(loop.step)
    if lb is None or ub is None or step is None or step <= 0:
        return None
    if ub <= lb:
        return 0
    return -(-(ub - lb) // step)


def unroll_loop(
    loop: scf.ForOp,
    max_trips: int = DEFAULT_MAX_TRIPS,
    cloned: list[Operation] | None = None,
) -> bool:
    """Fully unroll ``loop`` if its trip count is constant and small.

    ``cloned`` (when given) collects the ops inserted in place of the loop,
    so callers can find newly created nested loops without a re-walk.
    """
    trips = constant_trip_count(loop)
    if trips is None or trips > max_trips or trips == 0:
        return False
    block = loop.parent
    if block is None:
        return False
    lb = arith.constant_value(loop.lb)
    step = arith.constant_value(loop.step)
    assert lb is not None and step is not None

    carried: list[SSAValue] = list(loop.iter_inits)
    insert_index = block.index_of(loop)
    for trip in range(trips):
        iv_value = lb + trip * step
        iv_const = arith.ConstantOp.create(iv_value, loop.induction_var.type)
        block.insert_op_at(insert_index, iv_const)
        insert_index += 1
        value_map: dict[SSAValue, SSAValue] = {
            loop.induction_var: iv_const.result
        }
        for arg, value in zip(loop.iter_args, carried):
            value_map[arg] = value
        yielded: list[SSAValue] = []
        for op in loop.body.ops:
            if isinstance(op, scf.YieldOp):
                yielded = [value_map.get(v, v) for v in op.operands]
                continue
            clone = op.clone(value_map)
            block.insert_op_at(insert_index, clone)
            insert_index += 1
            if cloned is not None:
                cloned.append(clone)
        carried = yielded
    for result, value in zip(loop.results, carried):
        result.replace_all_uses_with(value)
    loop.erase()
    return True


@register_pass
class UnrollPass(ModulePass):
    """Fully unroll small constant-trip-count loops (innermost first)."""

    name = "unroll"

    def __init__(self, max_trips: int = DEFAULT_MAX_TRIPS) -> None:
        self.max_trips = max_trips

    def apply(self, module: Operation, analyses=None):
        worklist = Worklist()
        loops = [op for op in module.walk_list() if isinstance(op, scf.ForOp)]
        for loop in reversed(loops):  # innermost loops dequeue first
            worklist.push(loop)
        unrolled_any = False
        root_level = False
        scopes: dict[Operation, None] = {}
        while worklist:
            loop = worklist.pop()
            if loop.parent is None:
                continue
            scope = enclosing_scope(module, loop)
            cloned: list[Operation] = []
            if not unroll_loop(loop, self.max_trips, cloned):
                continue
            unrolled_any = True
            if scope is None:
                root_level = True
            else:
                scopes[scope] = None
            for clone in cloned:
                if isinstance(clone, scf.ForOp) or clone.regions:
                    for nested in clone.walk():
                        if isinstance(nested, scf.ForOp):
                            worklist.push(nested)
        return report_scopes(unrolled_any, scopes, root_level)
