"""Convenience layer for emitting workload IR.

Wraps the low-level :class:`~repro.ir.builder.Builder` with typed helpers for
arith, structured loops, and accfg clusters, so workload generators read like
the pseudo-code of the programs they model.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from ..dialects import accfg, arith, func, scf
from ..dialects.builtin import ModuleOp
from ..ir.attributes import FunctionType, TypeAttribute, index
from ..ir.block import Block
from ..ir.builder import Builder, InsertPoint
from ..ir.ssa import SSAValue


class IRGen:
    """Emit ops at a movable insertion point with one-liner helpers."""

    def __init__(self, builder: Builder) -> None:
        self.builder = builder

    # -- scalars ---------------------------------------------------------

    def const(self, value: int, type: TypeAttribute = index) -> SSAValue:
        op = self.builder.insert(arith.ConstantOp.create(value, type))
        return op.result

    def _binary(self, cls, lhs: SSAValue, rhs: SSAValue) -> SSAValue:
        return self.builder.insert(cls.create(lhs, rhs)).result

    def add(self, lhs: SSAValue, rhs: SSAValue) -> SSAValue:
        return self._binary(arith.AddiOp, lhs, rhs)

    def sub(self, lhs: SSAValue, rhs: SSAValue) -> SSAValue:
        return self._binary(arith.SubiOp, lhs, rhs)

    def mul(self, lhs: SSAValue, rhs: SSAValue) -> SSAValue:
        return self._binary(arith.MuliOp, lhs, rhs)

    def div(self, lhs: SSAValue, rhs: SSAValue) -> SSAValue:
        return self._binary(arith.DivuiOp, lhs, rhs)

    def rem(self, lhs: SSAValue, rhs: SSAValue) -> SSAValue:
        return self._binary(arith.RemuiOp, lhs, rhs)

    def shl(self, lhs: SSAValue, rhs: SSAValue) -> SSAValue:
        return self._binary(arith.ShliOp, lhs, rhs)

    def or_(self, lhs: SSAValue, rhs: SSAValue) -> SSAValue:
        return self._binary(arith.OriOp, lhs, rhs)

    def min_(self, lhs: SSAValue, rhs: SSAValue) -> SSAValue:
        return self._binary(arith.MinUIOp, lhs, rhs)

    def cmp(self, predicate: str, lhs: SSAValue, rhs: SSAValue) -> SSAValue:
        return self.builder.insert(arith.CmpiOp.create(predicate, lhs, rhs)).result

    def select(self, cond: SSAValue, a: SSAValue, b: SSAValue) -> SSAValue:
        return self.builder.insert(arith.SelectOp.create(cond, a, b)).result

    def pack(self, lanes: list[tuple[SSAValue, int]]) -> SSAValue:
        """Bit-pack ``(value, bit_offset)`` lanes into one word, emitting the
        shift/or ladder of Listing 1."""
        word: SSAValue | None = None
        for value, offset in lanes:
            shifted = (
                value if offset == 0 else self.shl(value, self.const(offset, value.type))
            )
            word = shifted if word is None else self.or_(word, shifted)
        if word is None:
            raise ValueError("pack needs at least one lane")
        return word

    # -- accfg clusters ----------------------------------------------------

    def setup(
        self,
        accelerator: str,
        fields: list[tuple[str, SSAValue]],
        in_state: SSAValue | None = None,
    ) -> SSAValue:
        op = self.builder.insert(accfg.SetupOp.create(accelerator, fields, in_state))
        return op.out_state

    def launch(
        self, state: SSAValue, fields: list[tuple[str, SSAValue]] | None = None
    ) -> SSAValue:
        op = self.builder.insert(accfg.LaunchOp.create(state, fields or []))
        return op.token

    def await_(self, token: SSAValue) -> None:
        self.builder.insert(accfg.AwaitOp.create(token))

    # -- control flow --------------------------------------------------------

    @contextmanager
    def loop(
        self, lb: SSAValue, ub: SSAValue, step: SSAValue
    ) -> Iterator[tuple[scf.ForOp, SSAValue]]:
        """Emit an ``scf.for``; inside the ``with``, ops go into its body.
        The context manager appends the terminating ``scf.yield``."""
        for_op = scf.ForOp.create(lb, ub, step)
        self.builder.insert(for_op)
        with self.builder.at(InsertPoint.at_end(for_op.body)):
            yield for_op, for_op.induction_var
            self.builder.insert(scf.YieldOp.create())

@contextmanager
def build_function(
    module: ModuleOp,
    name: str,
    input_types: list[TypeAttribute] | None = None,
    result_types: list[TypeAttribute] | None = None,
) -> Iterator[tuple[IRGen, tuple[SSAValue, ...]]]:
    """Create a function in ``module``; inside the ``with``, ops go into its
    body.  For result-free functions the ``func.return`` is appended on exit;
    functions with results must emit their own return as the last op."""
    input_types = input_types or []
    result_types = result_types or []
    fn = func.FuncOp.create(
        name, FunctionType.from_lists(input_types, result_types)
    )
    module.body_block.add_op(fn)
    gen = IRGen(Builder.at_end(fn.body))
    yield gen, tuple(fn.args)
    if not result_types:
        gen.builder.insert(func.ReturnOp.create())


def new_module() -> ModuleOp:
    return ModuleOp.create()


__all__ = ["IRGen", "build_function", "new_module", "Block"]
