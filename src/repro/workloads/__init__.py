"""Workload generators: the tiled matrix multiplications of the paper's
evaluation plus generic parameter sweeps."""

from .generators import (
    RectMatmulWorkload,
    SweepPoint,
    aspect_ratio_sweep,
    build_opengemm_rect_matmul,
    square_sweep,
)
from .irgen import IRGen, build_function, new_module
from .matmul import (
    MatmulWorkload,
    build_gemmini_loop_ws_matmul,
    build_gemmini_matmul,
    build_opengemm_matmul,
)

__all__ = [
    "IRGen",
    "build_function",
    "new_module",
    "MatmulWorkload",
    "build_gemmini_loop_ws_matmul",
    "build_gemmini_matmul",
    "build_opengemm_matmul",
    "RectMatmulWorkload",
    "SweepPoint",
    "aspect_ratio_sweep",
    "build_opengemm_rect_matmul",
    "square_sweep",
]
