"""Tiled matrix-multiplication workload generators.

These produce the accfg IR the paper's evaluation runs (Section 6): square
``size x size`` int8 matmuls, tiled for the target accelerator, with the
per-invocation configuration written out exactly as a straightforward
frontend (step 1 of the compilation flow) would emit it — every field, every
invocation, with explicit address arithmetic and Listing-1-style bit packing.
What the optimization pipelines then remove or hide is the measured subject
of the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

import numpy as np

from ..backends import gemmini as gemmini_backend
from ..backends import opengemm as opengemm_backend
from ..dialects.builtin import ModuleOp
from ..ir.attributes import index
from ..sim.memory import Buffer, Memory
from .irgen import IRGen, build_function, new_module


@dataclass
class MatmulWorkload:
    """A generated workload: IR plus the memory image it runs against."""

    module: ModuleOp
    memory: Memory
    accelerator: str
    size: int
    a: Buffer
    b: Buffer
    c: Buffer
    main_args: list[int] = dataclass_field(default_factory=list)

    @property
    def total_ops(self) -> int:
        return 2 * self.size**3

    def expected(self) -> np.ndarray:
        return self.a.array.astype(np.int32) @ self.b.array.astype(np.int32)

    def result(self) -> np.ndarray:
        return self.c.array

    def check(self) -> bool:
        """Whether the memory image holds the correct product."""
        return bool((self.result() == self.expected()).all())

    def reset_output(self) -> None:
        self.c.array[...] = 0


def _make_inputs(size: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    a = rng.integers(-8, 8, size=(size, size), dtype=np.int8)
    b = rng.integers(-8, 8, size=(size, size), dtype=np.int8)
    return a, b


# ---------------------------------------------------------------------------
# OpenGeMM: K x K matmul in tile_m x K x tile_n tiles (Section 6.2)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OpenGemmSchedule:
    """One point of the OpenGeMM matmul schedule space.

    ``tile_m``/``tile_n`` give the output-tile shape (multiples of the mesh
    edge that divide the problem size); the inner dimension is never tiled
    because OpenGeMM's ``execute`` overwrites C — there is no accumulation
    across invocations.  ``loop_order`` selects the tile-loop structure:
    ``flat`` is the naive single loop with div/rem index recovery, ``ij``
    and ``ji`` are two-level nests (whose induction arithmetic LICM can
    hoist).  The default reproduces the hand-written workload exactly.
    """

    tile_m: int = opengemm_backend.MESH
    tile_n: int = opengemm_backend.MESH
    loop_order: str = "flat"  # flat | ij | ji

    def validate(self, size: int) -> None:
        mesh = opengemm_backend.MESH
        for name, tile in (("tile_m", self.tile_m), ("tile_n", self.tile_n)):
            if tile % mesh or tile <= 0:
                raise ValueError(f"{name} must be a positive multiple of {mesh}")
            if size % tile:
                raise ValueError(f"{name}={tile} must divide size={size}")
        if self.loop_order not in ("flat", "ij", "ji"):
            raise ValueError(f"bad loop_order '{self.loop_order}'")

    def scratchpad_bytes(self, size: int) -> int:
        """Scratchpad footprint of one invocation: int8 A and B panels plus
        the int32 output tile."""
        return (
            self.tile_m * size + size * self.tile_n + 4 * self.tile_m * self.tile_n
        )


def build_opengemm_matmul(
    size: int,
    memory: Memory | None = None,
    seed: int = 0,
    schedule: OpenGemmSchedule | None = None,
) -> MatmulWorkload:
    """Tiled matmul for OpenGeMM: one accelerator invocation per
    ``tile_m x tile_n`` output tile with the full inner dimension (tile
    shape 8 x size x 8 by default, as in the paper's OpenGeMM evaluation).

    The emitted IR re-configures every CSR for every tile — sizes, strides,
    streamer bounds, pointers — because a stateless lowering cannot know
    what the registers already hold.  Only the three pointers actually change
    between tiles; everything else is the dedup pass's harvest.
    """
    mesh = opengemm_backend.MESH
    schedule = schedule or OpenGemmSchedule()
    if size % mesh:
        raise ValueError(f"size must be a multiple of {mesh}")
    schedule.validate(size)
    memory = memory or Memory()
    a_values, b_values = _make_inputs(size, seed)
    a = memory.place(a_values)
    b = memory.place(b_values)
    c = memory.alloc((size, size), np.int32)

    module = new_module()
    tile_m, tile_n = schedule.tile_m, schedule.tile_n
    m_tiles = size // tile_m
    n_tiles = size // tile_n
    with build_function(module, "main") as (gen, _):
        zero = gen.const(0)
        one = gen.const(1)

        def tile_body(gen: IRGen, ti, tj) -> None:
            tm_c = gen.const(tile_m)
            tn_c = tm_c if tile_n == tile_m else gen.const(tile_n)
            row = gen.mul(ti, tm_c)
            col = gen.mul(tj, tn_c)
            size_c = gen.const(size)
            # Byte addresses: A, B are int8; C is int32 (4 bytes/elem).
            ptr_a = gen.add(gen.const(a.addr), gen.mul(row, size_c))
            ptr_b = gen.add(gen.const(b.addr), col)
            c_elems = gen.add(gen.mul(row, size_c), col)
            ptr_c = gen.add(
                gen.const(c.addr), gen.mul(c_elems, gen.const(4))
            )
            # Streamer programming, recomputed per tile by the naive
            # frontend: bounds/strides derived from the tile geometry.
            if tile_m == mesh:
                mesh_c = tm_c
            elif tile_n == mesh:
                mesh_c = tn_c
            else:
                mesh_c = gen.const(mesh)
            k_bound = gen.div(size_c, mesh_c)
            elem_stride = gen.const(1)
            row_bytes = size_c  # int8: one byte per element
            n_vecs = one if tile_n == mesh else gen.const(tile_n // mesh)
            fields = [
                ("M", tm_c),
                ("K", size_c),
                ("N", tn_c),
                ("ptr_A", ptr_a),
                ("ptr_B", ptr_b),
                ("ptr_C", ptr_c),
                ("stride_A", size_c),
                ("stride_B", size_c),
                ("stride_C", size_c),
                ("subtractions", gen.const(0)),
                ("tbound0_A", k_bound),
                ("tbound1_A", tm_c),
                ("tstride0_A", mesh_c),
                ("tstride1_A", row_bytes),
                ("sstride_A", elem_stride),
                ("tbound0_B", k_bound),
                ("tbound1_B", tn_c),
                ("tstride0_B", row_bytes),
                ("tstride1_B", elem_stride),
                ("sstride_B", elem_stride),
                ("tbound0_C", tm_c),
                ("tbound1_C", n_vecs),
                ("tstride0_C", gen.mul(size_c, gen.const(4))),
                ("tstride1_C", gen.const(4)),
                ("sstride_C", gen.const(4)),
            ]
            state = gen.setup("opengemm", fields)
            token = gen.launch(state)
            gen.await_(token)

        if schedule.loop_order == "flat":
            tile_total = gen.const(m_tiles * n_tiles)
            tiles_c = gen.const(n_tiles)
            # One flattened tile loop, as the lowered tiling loop emits it:
            # the 2-D tile index is recovered with a divide/remainder pair
            # per tile.
            with gen.loop(zero, tile_total, one) as (_, t):
                ti = gen.div(t, tiles_c)
                tj = gen.rem(t, tiles_c)
                tile_body(gen, ti, tj)
        elif schedule.loop_order == "ij":
            m_tiles_c = gen.const(m_tiles)
            n_tiles_c = gen.const(n_tiles)
            with gen.loop(zero, m_tiles_c, one) as (_, ti):
                with gen.loop(zero, n_tiles_c, one) as (_, tj):
                    tile_body(gen, ti, tj)
        else:  # ji
            n_tiles_c = gen.const(n_tiles)
            m_tiles_c = gen.const(m_tiles)
            with gen.loop(zero, n_tiles_c, one) as (_, tj):
                with gen.loop(zero, m_tiles_c, one) as (_, ti):
                    tile_body(gen, ti, tj)

    return MatmulWorkload(module, memory, "opengemm", size, a, b, c)


# ---------------------------------------------------------------------------
# Gemmini: loop_ws invocations over FSM-bounded chunks (Section 6.1)
# ---------------------------------------------------------------------------


def build_gemmini_matmul(
    size: int, memory: Memory | None = None, seed: int = 0
) -> MatmulWorkload:
    """Weight-stationary tiled matmul for Gemmini at fine (per-tile)
    granularity — the flow whose traced instruction counts the paper's
    Section 4.6 example reports (160 configuration RoCC instructions and 775
    parameter-calculation instructions for the 64x64x64 kernel).

    Matrix dimensions arrive as a *runtime argument* (as in Gemmini's
    ``tiled_matmul`` C API), so derived bounds, clip logic and Listing-1
    bit-packing cannot be constant folded away.  Per 16x16 tile the program
    issues mvin data moves (amortized per A/B tile), a weight preload, a
    compute launch, and an await; the whole mode configuration (config_ex /
    config_ld / config_st, strides, flags) is emitted once, as the C library
    does.

    ``main`` takes the matrix size as its single argument (pass
    ``workload.main_args``).
    """
    dim = gemmini_backend.ARRAY_DIM
    if size % dim:
        raise ValueError(f"size must be a multiple of {dim}")
    memory = memory or Memory()
    a_values, b_values = _make_inputs(size, seed)
    a = memory.place(a_values)
    b = memory.place(b_values)
    c = memory.alloc((size, size), np.int32)

    module = new_module()
    tiles = size // dim
    with build_function(module, "main", input_types=[index]) as (gen, args):
        (size_arg,) = args
        zero = gen.const(0)
        one = gen.const(1)
        n_tiles = gen.const(tiles)
        dim_c = gen.const(dim)
        four = gen.const(4)
        a_base = gen.const(a.addr)
        b_base = gen.const(b.addr)
        c_base = gen.const(c.addr)

        # Mode configuration, once per kernel call (packed from the runtime
        # size exactly like the C macros bit-pack their operands).
        row_bytes_i8 = gen.mul(size_arg, one)
        row_bytes_i32 = gen.mul(size_arg, gen.const(4))
        flags = gen.pack([(gen.const(0), 0), (gen.const(0), 6), (gen.const(0), 7)])
        preamble = [
            ("stride_A", size_arg),
            ("stride_B", size_arg),
            ("stride_D", size_arg),
            ("stride_C", size_arg),
            ("act", flags),
            ("A_transpose", gen.const(0)),
            ("B_transpose", gen.const(0)),
            ("ex_config", gen.pack([(gen.const(1), 0), (size_arg, 8)])),
            ("ld_A_config", row_bytes_i8),
            ("ld_B_config", row_bytes_i8),
            ("ld_D_config", row_bytes_i32),
            ("st_C_config", row_bytes_i32),
        ]
        state = gen.setup("gemmini", preamble)

        def tile_bounds(gen: IRGen, tile_index) -> "SSAValue":
            """Packed rows/cols clip for one tile: min(16, size - t*16)."""
            offset = gen.mul(tile_index, dim_c)
            remaining = gen.sub(size_arg, offset)
            rows = gen.min_(dim_c, remaining)
            return gen.pack([(rows, 0), (rows, 16)])

        def tile_addr(gen: IRGen, base, trow, tcol, elem_bytes=None):
            row = gen.mul(trow, dim_c)
            col = gen.mul(tcol, dim_c)
            elems = gen.add(gen.mul(row, size_arg), col)
            if elem_bytes is not None:
                elems = gen.mul(elems, elem_bytes)
            return gen.add(base, elems)

        def a_tile_addr(gen: IRGen, ti, tk):
            return tile_addr(gen, a_base, ti, tk)

        def b_tile_addr(gen: IRGen, tk, tj):
            return tile_addr(gen, b_base, tk, tj)

        def c_tile_addr(gen: IRGen, ti, tj):
            return tile_addr(gen, c_base, ti, tj, four)

        op_mvin = gen.const(gemmini_backend.OP_MVIN)
        # Move B (the weights) into the scratchpad, one mvin per tile.
        with gen.loop(zero, n_tiles, one) as (_, tk):
            with gen.loop(zero, n_tiles, one) as (_, tj):
                gen.launch(
                    state,
                    [
                        ("op", op_mvin),
                        ("ld_addr", b_tile_addr(gen, tk, tj)),
                        ("ld_bounds", tile_bounds(gen, tk)),
                    ],
                )
        # Move A in as well.
        with gen.loop(zero, n_tiles, one) as (_, ti):
            with gen.loop(zero, n_tiles, one) as (_, tk):
                gen.launch(
                    state,
                    [
                        ("op", op_mvin),
                        ("ld_addr", a_tile_addr(gen, ti, tk)),
                        ("ld_bounds", tile_bounds(gen, ti)),
                    ],
                )
        # Weight-stationary compute: preload B(k, j), multiply by A(i, k),
        # accumulate into C(i, j).
        op_preload = gen.const(gemmini_backend.OP_PRELOAD)
        op_compute = gen.const(gemmini_backend.OP_COMPUTE)
        with gen.loop(zero, n_tiles, one) as (_, ti):
            with gen.loop(zero, n_tiles, one) as (_, tj):
                with gen.loop(zero, n_tiles, one) as (_, tk):
                    acc = gen.select(gen.cmp("eq", tk, zero), zero, one)
                    gen.launch(
                        state,
                        [
                            ("op", op_preload),
                            ("preload_addr", b_tile_addr(gen, tk, tj)),
                            ("st_addr", c_tile_addr(gen, ti, tj)),
                            ("acc", acc),
                        ],
                    )
                    token = gen.launch(
                        state,
                        [("op", op_compute), ("ld_addr", a_tile_addr(gen, ti, tk))],
                    )
                    gen.await_(token)
        # Move the results out.
        op_mvout = gen.const(gemmini_backend.OP_MVOUT)
        with gen.loop(zero, n_tiles, one) as (_, ti):
            with gen.loop(zero, n_tiles, one) as (_, tj):
                gen.launch(
                    state,
                    [
                        ("op", op_mvout),
                        ("ld_addr", c_tile_addr(gen, ti, tj)),
                        ("ld_bounds", tile_bounds(gen, ti)),
                    ],
                )

    workload = MatmulWorkload(module, memory, "gemmini", size, a, b, c)
    workload.main_args = [size]
    return workload


def build_gemmini_os_matmul(
    size: int, memory: Memory | None = None, seed: int = 0
) -> MatmulWorkload:
    """Output-stationary tiled matmul for Gemmini.

    The paper does not evaluate this flow but predicts it benefits more from
    accfg than weight-stationary, because "it sets up a lot less parameters
    than its output-stationary counterpart" (Section 6.1) — i.e. the OS flow
    carries *more* per-invocation configuration.  We model the OS C macros
    re-issuing the execute/load/store mode configuration around every tile
    (shift, activation and bank settings travel with each compute in the OS
    API), all of it loop-invariant and therefore dedup's harvest.

    ``main`` takes the matrix size as its single argument.
    """
    dim = gemmini_backend.ARRAY_DIM
    if size % dim:
        raise ValueError(f"size must be a multiple of {dim}")
    memory = memory or Memory()
    a_values, b_values = _make_inputs(size, seed)
    a = memory.place(a_values)
    b = memory.place(b_values)
    c = memory.alloc((size, size), np.int32)

    module = new_module()
    tiles = size // dim
    with build_function(module, "main", input_types=[index]) as (gen, args):
        (size_arg,) = args
        zero = gen.const(0)
        one = gen.const(1)
        n_tiles = gen.const(tiles)
        dim_c = gen.const(dim)
        four = gen.const(4)
        a_base = gen.const(a.addr)
        b_base = gen.const(b.addr)
        c_base = gen.const(c.addr)
        row_bytes_i8 = gen.mul(size_arg, one)
        row_bytes_i32 = gen.mul(size_arg, four)

        def tile_addr(base, trow, tcol, elem_bytes=None):
            row = gen.mul(trow, dim_c)
            col = gen.mul(tcol, dim_c)
            elems = gen.add(gen.mul(row, size_arg), col)
            if elem_bytes is not None:
                elems = gen.mul(elems, elem_bytes)
            return gen.add(base, elems)

        # Strides once (as the C library's one-time setup).
        state = gen.setup(
            "gemmini",
            [
                ("stride_A", size_arg),
                ("stride_B", size_arg),
                ("stride_C", size_arg),
            ],
        )
        op_compute_os = gen.const(gemmini_backend.OP_COMPUTE_OS)
        op_mvout = gen.const(gemmini_backend.OP_MVOUT)
        with gen.loop(zero, n_tiles, one) as (_, ti):
            with gen.loop(zero, n_tiles, one) as (_, tj):
                with gen.loop(zero, n_tiles, one) as (_, tk):
                    # The OS macro re-issues the full mode configuration
                    # around every tile: execute config (shift/activation),
                    # both load configs, and the store config.  All of it is
                    # loop-invariant.
                    shift = gen.pack([(gen.const(0), 0), (gen.const(1), 32)])
                    mode = gen.setup(
                        "gemmini",
                        [
                            ("ex_config", shift),
                            ("ld_A_config", row_bytes_i8),
                            ("ld_B_config", row_bytes_i8),
                            ("ld_D_config", row_bytes_i32),
                            ("st_C_config", row_bytes_i32),
                            ("act", gen.const(0)),
                        ],
                        in_state=None,
                    )
                    acc = gen.select(gen.cmp("eq", tk, zero), zero, one)
                    token = gen.launch(
                        mode,
                        [
                            ("op", op_compute_os),
                            ("ld_addr", tile_addr(a_base, ti, tk)),
                            ("preload_addr", tile_addr(b_base, tk, tj)),
                            ("st_addr", tile_addr(c_base, ti, tj, four)),
                            ("acc", acc),
                        ],
                    )
                    gen.await_(token)
                # Move the finished output tile out.
                gen.launch(
                    state,
                    [("op", op_mvout), ("ld_addr", tile_addr(c_base, ti, tj, four))],
                )

    workload = MatmulWorkload(module, memory, "gemmini", size, a, b, c)
    workload.main_args = [size]
    return workload


@dataclass(frozen=True)
class GemminiLoopWsSchedule:
    """One point of the gemmini loop_ws schedule space.

    ``chunk`` is the cubic chunk edge one ``loop_ws`` invocation covers
    (``None`` means the FSM/capacity maximum, as the hand-written workload
    uses).  ``loop_order`` permutes the three chunk loops — correct under
    any permutation because the ``D = select(ck == 0, 0, C)`` accumulation
    only needs the k-chunks of each output chunk to run in increasing
    order.  ``specialize_size`` bakes the problem size into the IR as a
    constant instead of the C-API-style runtime argument, which lets
    constant folding (and full unrolling of the then-constant-trip chunk
    loops, pipeline ``unroll-full``) delete the Listing-1 parameter-
    calculation ladder the paper's Section 4.6 counts.
    """

    chunk: int | None = None
    loop_order: str = "ijk"  # permutation of "ijk"
    specialize_size: bool = False

    def validate(self, size: int) -> None:
        dim = gemmini_backend.ARRAY_DIM
        chunk = self.resolved_chunk(size)
        if chunk % dim or chunk <= 0:
            raise ValueError(f"chunk must be a positive multiple of {dim}")
        if chunk > gemmini_backend.max_invocation_edge(size):
            raise ValueError(f"chunk={chunk} exceeds the loop_ws FSM limit")
        if size % chunk:
            raise ValueError(f"chunk={chunk} must divide size={size}")
        if sorted(self.loop_order) != ["i", "j", "k"]:
            raise ValueError(f"bad loop_order '{self.loop_order}'")

    def resolved_chunk(self, size: int) -> int:
        return (
            self.chunk
            if self.chunk is not None
            else gemmini_backend.max_invocation_edge(size)
        )


def build_gemmini_loop_ws_matmul(
    size: int,
    memory: Memory | None = None,
    seed: int = 0,
    schedule: GemminiLoopWsSchedule | None = None,
) -> MatmulWorkload:
    """Weight-stationary tiled matmul for Gemmini using the coarse-grained
    ``gemmini_loop_ws`` macro-operation (Table 1).

    Matrix dimensions arrive as a *runtime argument* (as in Gemmini's
    ``tiled_matmul`` C API), so strides and derived bounds cannot be constant
    folded — mirroring why the paper measures hundreds of parameter-
    calculation instructions (Section 4.6).  The matmul is split into
    ``loop_ws`` invocations of at most :data:`LOOP_WS_MAX_TILES` tiles per
    dimension; each invocation re-emits the full Table 1 field set packed
    into 64-bit RoCC operands with an explicit shift/or ladder (Listing 1).

    ``main`` takes the matrix size as its single argument (pass
    ``workload.main_args``) — unless ``schedule.specialize_size`` bakes it
    in, in which case ``main`` is argument-free.
    """
    dim = gemmini_backend.ARRAY_DIM
    schedule = schedule or GemminiLoopWsSchedule()
    if size % dim:
        raise ValueError(f"size must be a multiple of {dim}")
    schedule.validate(size)
    chunk = schedule.resolved_chunk(size)
    memory = memory or Memory()
    a_values, b_values = _make_inputs(size, seed)
    a = memory.place(a_values)
    b = memory.place(b_values)
    c = memory.alloc((size, size), np.int32)

    module = new_module()
    chunks = size // chunk
    chunk_tiles = chunk // dim
    input_types = [] if schedule.specialize_size else [index]
    with build_function(module, "main", input_types=input_types) as (gen, args):
        if schedule.specialize_size:
            size_arg = gen.const(size)
        else:
            (size_arg,) = args
        zero = gen.const(0)
        one = gen.const(1)
        n_chunks = gen.const(chunks)

        def emit(ci, cj, ck) -> None:
            _emit_loop_ws_invocation(
                gen, size_arg, a, b, c, chunk, chunk_tiles, ci, cj, ck
            )

        # The three chunk loops, nested in schedule order (outermost first).
        indices: dict[str, object] = {}
        outer, middle, inner = schedule.loop_order
        with gen.loop(zero, n_chunks, one) as (_, iv_outer):
            indices[outer] = iv_outer
            with gen.loop(zero, n_chunks, one) as (_, iv_middle):
                indices[middle] = iv_middle
                with gen.loop(zero, n_chunks, one) as (_, iv_inner):
                    indices[inner] = iv_inner
                    emit(indices["i"], indices["j"], indices["k"])

    workload = MatmulWorkload(module, memory, "gemmini", size, a, b, c)
    workload.main_args = [] if schedule.specialize_size else [size]
    return workload


def _emit_loop_ws_invocation(
    gen: IRGen,
    size_arg,
    a: Buffer,
    b: Buffer,
    c: Buffer,
    chunk: int,
    chunk_tiles: int,
    ci,
    cj,
    ck,
) -> None:
    """One gemmini_loop_ws call: derive parameters, pack, configure, launch."""
    dim_c = gen.const(gemmini_backend.ARRAY_DIM)
    chunk_c = gen.const(chunk)
    # Chunk base offsets in elements, derived from runtime size (strides).
    row_off = gen.mul(ci, chunk_c)
    col_off = gen.mul(cj, chunk_c)
    inner_off = gen.mul(ck, chunk_c)
    addr_a = gen.add(
        gen.const(a.addr), gen.add(gen.mul(row_off, size_arg), inner_off)
    )
    addr_b = gen.add(
        gen.const(b.addr), gen.add(gen.mul(inner_off, size_arg), col_off)
    )
    c_elems = gen.add(gen.mul(row_off, size_arg), col_off)
    addr_c = gen.add(gen.const(c.addr), gen.mul(c_elems, gen.const(4)))
    # Accumulate across the ck loop: bias D = C except on the first k-chunk.
    first_k = gen.cmp("eq", ck, gen.const(0, ck.type))
    addr_d = gen.select(first_k, gen.const(0), addr_c)

    # Tile counts per invocation: derived from the runtime size the way the
    # C library clips its bounds (min against what remains).
    tiles_total = gen.div(size_arg, dim_c)
    chunk_tiles_c = gen.const(chunk_tiles)
    remaining = gen.sub(tiles_total, gen.mul(ci, chunk_tiles_c))
    tiles_i = gen.min_(chunk_tiles_c, remaining)
    remaining_j = gen.sub(tiles_total, gen.mul(cj, chunk_tiles_c))
    tiles_j = gen.min_(chunk_tiles_c, remaining_j)
    remaining_k = gen.sub(tiles_total, gen.mul(ck, chunk_tiles_c))
    tiles_k = gen.min_(chunk_tiles_c, remaining_k)
    # Padding: zero for exact tilings, still computed at runtime.
    pad = gen.rem(size_arg, dim_c)

    # Listing-1-style packing of the small fields into RoCC operand words.
    sizes_word = gen.pack([(tiles_i, 0), (tiles_j, 16), (tiles_k, 32)])
    pads_word = gen.pack([(pad, 0), (pad, 16), (pad, 32)])
    flags_word = gen.pack(
        [(gen.const(0), 0), (gen.const(0), 6), (gen.const(0), 7)]
    )  # act | A_transpose | B_transpose
    fields = [
        ("A", addr_a),
        ("B", addr_b),
        ("D", addr_d),
        ("C", addr_c),
        ("I", tiles_i),
        ("J", tiles_j),
        ("K", tiles_k),
        ("pad_I", pad),
        ("pad_J", pad),
        ("pad_K", pad),
        ("stride_A", size_arg),
        ("stride_B", size_arg),
        ("stride_D", size_arg),
        ("stride_C", size_arg),
        ("act", flags_word),
        ("A_transpose", gen.const(0)),
        ("B_transpose", gen.const(0)),
        # The mode configuration the C library re-issues on every call
        # (config_ex / config_ld x3 / config_st).
        ("ex_config", gen.pack([(gen.const(1), 0), (sizes_word, 8)])),
        ("ld_A_config", gen.mul(size_arg, gen.const(1))),
        ("ld_B_config", gen.mul(size_arg, gen.const(1))),
        ("ld_D_config", gen.mul(size_arg, gen.const(4))),
        ("st_C_config", gen.mul(size_arg, gen.const(4))),
        ("op", gen.const(gemmini_backend.OP_LOOP_WS)),
        ("ld_bounds", pads_word),
    ]
    state = gen.setup("gemmini", fields)
    token = gen.launch(state)
    gen.await_(token)
