"""A small neural-network workload built on the linalg frontend.

The paper's introduction motivates the configuration wall with neural
network inference: many small offloaded kernels, each dragging its
configuration cost along.  This module builds an N-layer MLP —
``x_{i+1} = relu(x_i @ W_i + b_i)`` — as one linalg-level module, so the
whole network flows through the standard pipeline: step-1 conversion, state
tracing, deduplication (consecutive layers share most of their
configuration), and overlap.

ReLU is expressed with the vector engine's ``max`` against a zero vector;
the bias addition uses its ``add``.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

import numpy as np

from ..dialects import linalg
from ..dialects.builtin import ModuleOp
from ..sim.memory import Buffer, Memory
from .irgen import IRGen, build_function, new_module


@dataclass(frozen=True)
class LayerSpec:
    """One fully-connected layer of a :class:`NetworkSpec`.

    ``width`` is the layer's output width.  ``accelerator`` picks the matmul
    target for *this layer* (``None`` defers to the lowering pass's default),
    and ``tile_m``/``tile_n`` pin the OpenGeMM lowering tile shape — both
    travel as attributes on the emitted ``linalg.matmul``, so a layer graph
    with per-layer accelerator choices needs no hand-edited IR.
    """

    width: int
    accelerator: str | None = None
    tile_m: int | None = None
    tile_n: int | None = None


@dataclass(frozen=True)
class NetworkSpec:
    """A configurable MLP layer graph: builder input for :func:`build_network`.

    The network computes ``x_{i+1} = relu(x_i @ W_i + b_i)`` (no ReLU after
    the last layer) over ``batch`` rows, starting from ``input_width``
    features; one :class:`LayerSpec` per layer.
    """

    input_width: int
    layers: tuple[LayerSpec, ...]
    batch: int = 8
    seed: int = 0

    @property
    def layer_sizes(self) -> list[int]:
        return [self.input_width, *(layer.width for layer in self.layers)]

    def validate(self) -> None:
        if self.batch % 8:
            raise ValueError("batch must be a multiple of 8")
        if any(size % 8 for size in self.layer_sizes):
            raise ValueError("layer widths must be multiples of 8")
        if not self.layers:
            raise ValueError("need at least one layer")


@dataclass
class MLPWorkload:
    """An N-layer MLP: IR plus its memory image and a numpy reference."""

    module: ModuleOp
    memory: Memory
    input: Buffer
    weights: list[Buffer]
    biases: list[Buffer]
    output: Buffer
    batch: int
    layer_sizes: list[int]
    scratch: list[Buffer] = dataclass_field(default_factory=list)
    spec: NetworkSpec | None = None

    @property
    def total_macs(self) -> int:
        macs = 0
        for a, b in zip(self.layer_sizes, self.layer_sizes[1:]):
            macs += self.batch * a * b
        return macs

    def expected(self) -> np.ndarray:
        x = self.input.array.astype(np.int32)
        for index, (w, b) in enumerate(zip(self.weights, self.biases)):
            x = x @ w.array.astype(np.int32)
            x = x + b.array.reshape(1, -1)
            if index < len(self.weights) - 1:
                x = np.maximum(x, 0)
                # Model the int8 requantization between layers exactly.
                x = x.astype(np.int8).astype(np.int32)
        return x

    def check(self) -> bool:
        return bool((self.output.array == self.expected()).all())

    def reset_output(self) -> None:
        self.output.array[...] = 0
        for buffer in self.scratch:
            buffer.array[...] = 0


def build_mlp(
    layer_sizes: list[int],
    batch: int = 8,
    memory: Memory | None = None,
    seed: int = 0,
) -> MLPWorkload:
    """Build an MLP with the given layer widths (all multiples of 8) using
    the default accelerator assignment for every layer.  Thin wrapper over
    :func:`build_network`."""
    if len(layer_sizes) < 2:
        raise ValueError("need at least input and output widths")
    spec = NetworkSpec(
        input_width=layer_sizes[0],
        layers=tuple(LayerSpec(width) for width in layer_sizes[1:]),
        batch=batch,
        seed=seed,
    )
    return build_network(spec, memory=memory)


def build_network(
    spec: NetworkSpec, memory: Memory | None = None
) -> MLPWorkload:
    """Build the layer graph ``spec`` describes as one linalg-level module.

    The activations between layers are int32; matmul inputs must be int8,
    so each layer's output is stored once as int32 (for bias/ReLU on the
    vector engine) and mirrored into an int8 buffer for the next matmul.
    To keep the simulated memory model simple we clamp activations into
    int8 range by construction (small weights and inputs).

    Each layer's :class:`LayerSpec` choices (accelerator, lowering tile
    shape) are attached to its ``linalg.matmul`` as attributes, which the
    ``convert-linalg-to-accfg`` pass honors per op.
    """
    spec.validate()
    layer_sizes = spec.layer_sizes
    batch = spec.batch
    memory = memory or Memory()
    rng = np.random.default_rng(spec.seed)
    x0 = memory.place(rng.integers(0, 3, (batch, layer_sizes[0]), dtype=np.int8))
    weights = [
        memory.place(rng.integers(-1, 2, (a, b), dtype=np.int8))
        for a, b in zip(layer_sizes, layer_sizes[1:])
    ]
    biases = [
        memory.place(rng.integers(-2, 3, size, dtype=np.int32))
        for size in layer_sizes[1:]
    ]
    # int32 accumulators and int8 mirrors for each layer's activation.
    accs = [memory.alloc((batch, size), np.int32) for size in layer_sizes[1:]]
    zeros = [memory.alloc(batch * size, np.int32) for size in layer_sizes[1:-1]]
    mirrors = [
        memory.alloc((batch, size), np.int8) for size in layer_sizes[1:-1]
    ]

    module = new_module()
    with build_function(module, "main") as (gen, _):
        current_int8 = x0
        for index, (w, b) in enumerate(zip(weights, biases)):
            acc = accs[index]
            last = index == len(weights) - 1
            _emit_layer(gen, current_int8, w, b, acc, batch,
                        layer_sizes[index], layer_sizes[index + 1],
                        relu_zero=None if last else zeros[index],
                        layer=spec.layers[index])
            if not last:
                _emit_requantize(gen, acc, mirrors[index], batch,
                                 layer_sizes[index + 1])
                current_int8 = mirrors[index]

    return MLPWorkload(
        module=module,
        memory=memory,
        input=x0,
        weights=weights,
        biases=biases,
        output=accs[-1],
        batch=batch,
        layer_sizes=list(layer_sizes),
        scratch=accs[:-1] + mirrors,
        spec=spec,
    )


def _emit_layer(gen: IRGen, x, w, b, acc, batch, in_size, out_size, relu_zero,
                layer: LayerSpec | None = None):
    """matmul + broadcast bias add (+ ReLU when not the last layer)."""
    x_addr = gen.const(x.addr)
    w_addr = gen.const(w.addr)
    acc_addr = gen.const(acc.addr)
    gen.builder.insert(
        linalg.MatmulOp.create(
            x_addr, w_addr, acc_addr, batch, in_size, out_size,
            target=layer.accelerator if layer else None,
            tile_m=layer.tile_m if layer else None,
            tile_n=layer.tile_n if layer else None,
        )
    )
    # Bias add: one elementwise per batch row (the bias vector repeats).
    zero = gen.const(0)
    one = gen.const(1)
    rows = gen.const(batch)
    row_bytes = gen.const(out_size * 4)
    with gen.loop(zero, rows, one) as (_, row):
        row_addr = gen.add(acc_addr, gen.mul(row, row_bytes))
        gen.builder.insert(
            linalg.ElementwiseOp.create(
                row_addr, gen.const(b.addr), row_addr, out_size, "add"
            )
        )
    if relu_zero is not None:
        total = batch * out_size
        gen.builder.insert(
            linalg.ElementwiseOp.create(
                acc_addr, gen.const(relu_zero.addr), acc_addr, total, "max"
            )
        )


def _emit_requantize(gen: IRGen, acc, mirror, batch, size) -> None:
    """Copy the int32 activation into the next layer's int8 input buffer.

    Modeled as a host-side copy op (a DMA in a real system); values stay in
    int8 range by construction, so this is a pure type change.
    """
    gen.builder.insert(
        RequantizeOp.create(
            gen.const(acc.addr), gen.const(mirror.addr), batch * size
        )
    )


# A tiny host-side helper op: narrows int32 activations to int8 in memory.
from ..ir.attributes import IntegerAttr  # noqa: E402
from ..ir.operation import Operation, VerifyError  # noqa: E402
from ..ir.printer import Printer  # noqa: E402
from ..ir.registry import register_custom_parser, register_op  # noqa: E402


@register_op
class RequantizeOp(Operation):
    """``dst_int8[i] = int8(src_int32[i])`` for ``n`` elements (host DMA)."""

    name = "net.requantize"
    custom_printed_attrs = frozenset(["n"])

    @staticmethod
    def create(src, dst, n: int) -> "RequantizeOp":
        from ..dialects import accfg

        op = RequantizeOp(operands=[src, dst])
        op.attributes["n"] = IntegerAttr(n)
        # A plain data move: never touches configuration registers.
        accfg.set_effects(op, "none")
        return op

    @property
    def n(self) -> int:
        attr = self.attributes["n"]
        assert isinstance(attr, IntegerAttr)
        return attr.value

    def verify_(self) -> None:
        if len(self.operands) != 2:
            raise VerifyError("net.requantize needs src and dst")
        attr = self.attributes.get("n")
        if not isinstance(attr, IntegerAttr) or attr.value <= 0:
            raise VerifyError("net.requantize needs a positive 'n'")

    def print_custom(self, printer: Printer) -> None:
        printer.emit("net.requantize ")
        printer.print_value(self.operands[0])
        printer.emit(" -> ")
        printer.print_value(self.operands[1])
        printer.emit(f" n({self.n})")

    def cost_instrs(self) -> list:
        """The instruction stream :meth:`interpret` charges — advertised
        statically so the cost engine can model this op exactly."""
        from ..isa.instructions import Instr, InstrCategory

        return [Instr("dma-word", InstrCategory.COMPUTE)] * max(1, self.n // 8)

    def interpret(self, interpreter, env) -> None:
        """Functional semantics + host cost (one word per 8 elements)."""
        src = env[self.operands[0]]
        dst = env[self.operands[1]]
        memory = interpreter.sim.memory
        values = memory.read_matrix(src, 1, self.n, self.n, np.int32)[0]
        memory.write_matrix(
            dst, values.astype(np.int8).reshape(1, -1), self.n
        )
        interpreter.sim.charge(self.cost_instrs())


@register_custom_parser("net.requantize")
def _parse_requantize(parser) -> RequantizeOp:
    src = parser.parse_value_use()
    parser.expect("->")
    dst = parser.parse_value_use()
    parser.expect("n")
    parser.expect("(")
    n = parser.parse_int()
    parser.expect(")")
    return RequantizeOp.create(src, dst, n)
