"""Workload sweeps and the rectangular-matmul generator.

The evaluation uses square matrices; real inference layers are rectangular,
so the library also provides an M x K x N OpenGeMM generator plus sweep
helpers the experiments and benchmarks share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from ..backends import opengemm as opengemm_backend
from ..sim.memory import Memory
from .irgen import build_function, new_module
from .matmul import MatmulWorkload


@dataclass
class RectMatmulWorkload(MatmulWorkload):
    """An M x K x N matmul; ``size`` holds M for compatibility."""

    m: int = 0
    k: int = 0
    n: int = 0

    @property
    def total_ops(self) -> int:  # type: ignore[override]
        return 2 * self.m * self.k * self.n

    def expected(self) -> np.ndarray:  # type: ignore[override]
        return self.a.array.astype(np.int32) @ self.b.array.astype(np.int32)


def build_opengemm_rect_matmul(
    m: int, k: int, n: int, memory: Memory | None = None, seed: int = 0
) -> RectMatmulWorkload:
    """Rectangular tiled matmul for OpenGeMM (tile shape 8 x k x 8)."""
    mesh = opengemm_backend.MESH
    if m % mesh or n % mesh:
        raise ValueError(f"M and N must be multiples of {mesh}")
    if k % mesh:
        raise ValueError(f"K must be a multiple of {mesh}")
    memory = memory or Memory()
    rng = np.random.default_rng(seed)
    a_values = rng.integers(-8, 8, size=(m, k), dtype=np.int8)
    b_values = rng.integers(-8, 8, size=(k, n), dtype=np.int8)
    a = memory.place(a_values)
    b = memory.place(b_values)
    c = memory.alloc((m, n), np.int32)

    module = new_module()
    with build_function(module, "main") as (gen, _):
        zero = gen.const(0)
        one = gen.const(1)
        m_tiles = gen.const(m // mesh)
        n_tiles = gen.const(n // mesh)
        with gen.loop(zero, m_tiles, one) as (_, ti):
            with gen.loop(zero, n_tiles, one) as (_, tj):
                c8 = gen.const(mesh)
                k_c = gen.const(k)
                n_c = gen.const(n)
                row = gen.mul(ti, c8)
                col = gen.mul(tj, c8)
                ptr_a = gen.add(gen.const(a.addr), gen.mul(row, k_c))
                ptr_b = gen.add(gen.const(b.addr), col)
                c_elems = gen.add(gen.mul(row, n_c), col)
                ptr_c = gen.add(gen.const(c.addr), gen.mul(c_elems, gen.const(4)))
                fields = [
                    ("M", c8),
                    ("K", k_c),
                    ("N", c8),
                    ("ptr_A", ptr_a),
                    ("ptr_B", ptr_b),
                    ("ptr_C", ptr_c),
                    ("stride_A", k_c),
                    ("stride_B", n_c),
                    ("stride_C", n_c),
                    ("subtractions", gen.const(0)),
                ]
                state = gen.setup("opengemm", fields)
                gen.await_(gen.launch(state))

    workload = RectMatmulWorkload(
        module, memory, "opengemm", m, a, b, c, m=m, k=k, n=n
    )
    return workload


@dataclass(frozen=True)
class SweepPoint:
    """One point of a parameter sweep, lazily constructing its workload."""

    label: str
    build: Callable[[], MatmulWorkload]


def square_sweep(
    builder: Callable[[int], MatmulWorkload], sizes: tuple[int, ...]
) -> Iterator[SweepPoint]:
    """Standard square-matmul size sweep, as in Figures 10 and 11."""
    for size in sizes:
        yield SweepPoint(f"{size}x{size}x{size}", lambda s=size: builder(s))


def aspect_ratio_sweep(
    volume: int = 2**15, ratios: tuple[int, ...] = (1, 4, 16)
) -> Iterator[SweepPoint]:
    """Constant-volume rectangular sweep: same total ops, varying shapes.

    Skinny shapes have more tiles per op (lower I_OC), so they sit deeper in
    the configuration-bound region — a library-level extension of the
    paper's analysis.
    """
    for ratio in ratios:
        k = 8 * ratio
        edge_sq = volume // k
        edge = max(8, int(round(edge_sq**0.5 / 8)) * 8)
        m = n = edge
        yield SweepPoint(
            f"{m}x{k}x{n}",
            lambda m=m, k=k, n=n: build_opengemm_rect_matmul(m, k, n),
        )
