"""Bridging measurements and the roofline model.

Turns co-simulation measurements (:class:`~repro.sim.metrics.RunMetrics`)
into roofline points, builds rooflines from accelerator specs and host cost
models, and classifies where a run sits — the workflow of Sections 4.6 and
6.2.1.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..backends.base import AcceleratorSpec
from ..isa.instructions import HostCostModel
from ..sim.metrics import RunMetrics
from .roofline import Boundness, ConfigRoofline, RooflinePoint


def theoretical_config_bandwidth(
    spec: AcceleratorSpec, cost_model: HostCostModel | None = None
) -> float:
    """BW_config of a target: bytes one full configuration conveys divided by
    the host time its register writes take (no parameter computation).

    For Gemmini this reproduces the paper's ``16 / (3 * 3) ≈ 1.77`` bytes per
    cycle (Section 4.6): 16 bytes per RoCC write, three instructions per
    write, three cycles per instruction.
    """
    cost_model = cost_model or HostCostModel()
    field_names = list(spec.fields)
    instrs = spec.setup_instrs(field_names)
    cycles = sum(cost_model.cycles(instr) for instr in instrs)
    config_bytes = spec.config_bytes(field_names)
    if cycles <= 0:
        return float("inf")
    return config_bytes / cycles


def roofline_for_spec(
    spec: AcceleratorSpec,
    cost_model: HostCostModel | None = None,
    memory_bandwidth: float | None = None,
) -> ConfigRoofline:
    """The theoretical configuration roofline of one accelerator target.

    ``memory_bandwidth`` defaults to the spec's own (for the Eq. 5
    roofsurface); pass an explicit value to override.
    """
    return ConfigRoofline(
        peak_performance=spec.peak_ops_per_cycle,
        config_bandwidth=theoretical_config_bandwidth(spec, cost_model),
        memory_bandwidth=(
            memory_bandwidth if memory_bandwidth is not None else spec.memory_bandwidth
        ),
    )


def combined_boundness(metrics: RunMetrics, roofline: ConfigRoofline) -> Boundness:
    """Three-way classification via Eq. 5: which term of the roofsurface
    limits this measured run (configuration, memory, or compute)?"""
    config_term = roofline.config_bandwidth * metrics.operation_to_config_intensity
    terms = {Boundness.COMPUTE_BOUND: roofline.peak_performance,
             Boundness.CONFIG_BOUND: config_term}
    if roofline.memory_bandwidth is not None and metrics.memory_bytes:
        terms[Boundness.MEMORY_BOUND] = (
            roofline.memory_bandwidth * metrics.operational_intensity
        )
    return min(terms, key=terms.get)


def roofline_from_metrics(metrics: RunMetrics) -> ConfigRoofline:
    """A roofline built from *measured* effective configuration bandwidth
    (Eq. 4) — what Section 4.6 calls the effective variant of the model."""
    return ConfigRoofline(
        peak_performance=metrics.peak_ops_per_cycle,
        config_bandwidth=metrics.effective_config_bandwidth,
    )


def point_from_metrics(metrics: RunMetrics, label: str = "") -> RooflinePoint:
    """Place one measured run on the roofline plot."""
    return RooflinePoint(
        label=label or metrics.accelerator,
        i_oc=metrics.operation_to_config_intensity,
        performance=metrics.performance,
    )


@dataclass(frozen=True)
class RunAnalysis:
    """A measured run interpreted through the roofline model."""

    point: RooflinePoint
    roofline: ConfigRoofline
    boundness: Boundness
    attainable_sequential: float
    attainable_concurrent: float
    utilization: float

    @property
    def headroom_to_concurrent_roof(self) -> float:
        if self.point.performance <= 0:
            return float("inf")
        return self.attainable_concurrent / self.point.performance


def analyze_run(
    metrics: RunMetrics,
    roofline: ConfigRoofline | None = None,
    label: str = "",
) -> RunAnalysis:
    """Full roofline interpretation of one run.

    When no roofline is given, one is built from the run's own effective
    configuration bandwidth.
    """
    roofline = roofline or roofline_from_metrics(metrics)
    point = point_from_metrics(metrics, label)
    return RunAnalysis(
        point=point,
        roofline=roofline,
        boundness=roofline.boundness(point.i_oc),
        attainable_sequential=roofline.attainable_sequential(point.i_oc),
        attainable_concurrent=roofline.attainable_concurrent(point.i_oc),
        utilization=point.performance / roofline.peak_performance,
    )


def geomean(values: list[float]) -> float:
    """Geometric mean, used for the paper's headline speedup numbers."""
    if not values:
        raise ValueError("geomean of an empty list")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError("geomean requires positive values")
        product *= value
    return product ** (1.0 / len(values))
