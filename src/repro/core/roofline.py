"""The configuration roofline model (paper, Section 4).

Implements every equation of the paper:

* Eq. 1 — the classic processor roofline (compute vs. memory bound),
* Eq. 2 — the *concurrent* configuration roofline,
* Eq. 3 — the *sequential* configuration roofline (harmonic composition of
  configuration time and compute time; asymptotically approaches Eq. 2),
* Eq. 4 — *effective* configuration bandwidth (bit-packing/parameter
  computation time included),
* Eq. 5 — the combined three-term "roofsurface".

Axes: ``I_OC`` is operation-to-configuration intensity in ops per
configuration byte; ``BW_config`` is configuration bandwidth in bytes per
cycle (or per second — units only need to be consistent); performance is in
ops per the same time unit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum


class Boundness(str, Enum):
    """Which roofline term limits a workload."""

    CONFIG_BOUND = "configuration-bound"
    COMPUTE_BOUND = "compute-bound"
    MEMORY_BOUND = "memory-bound"
    KNEE = "knee"


def effective_config_bandwidth(
    config_bytes: float, calc_time: float, set_time: float
) -> float:
    """Eq. 4: ``BW_config,eff = N_bytes / (T_calc + T_set)``."""
    denominator = calc_time + set_time
    if denominator <= 0:
        return float("inf")
    return config_bytes / denominator


@dataclass(frozen=True)
class ConfigRoofline:
    """A configuration roofline for one accelerator system."""

    peak_performance: float  # P_peak, ops/cycle
    config_bandwidth: float  # BW_config (or BW_config,eff), bytes/cycle
    memory_bandwidth: float | None = None  # BW_memory, bytes/cycle (optional)

    def __post_init__(self) -> None:
        if self.peak_performance <= 0:
            raise ValueError("peak performance must be positive")
        if self.config_bandwidth <= 0:
            raise ValueError("configuration bandwidth must be positive")

    # -- Eq. 1: processor roofline ----------------------------------------

    def attainable_processor(self, operational_intensity: float) -> float:
        """Eq. 1: min(P_peak, BW_memory * I_operational)."""
        if self.memory_bandwidth is None:
            raise ValueError("no memory bandwidth specified for this roofline")
        return min(
            self.peak_performance, self.memory_bandwidth * operational_intensity
        )

    # -- Eq. 2: concurrent configuration -------------------------------------

    def attainable_concurrent(self, i_oc: float) -> float:
        """Eq. 2: min(P_peak, BW_config * I_OC)."""
        return min(self.peak_performance, self.config_bandwidth * i_oc)

    # -- Eq. 3: sequential configuration -------------------------------------

    def attainable_sequential(self, i_oc: float) -> float:
        """Eq. 3: 1 / (1/P_peak + 1/(BW_config * I_OC)).

        Configuration and computation strictly serialize, so the attainable
        time is the sum of both terms; the curve approaches Eq. 2
        asymptotically but never touches it.
        """
        if i_oc <= 0:
            return 0.0
        config_term = self.config_bandwidth * i_oc
        attainable = 1.0 / (1.0 / self.peak_performance + 1.0 / config_term)
        # Mathematically always below peak; clamp float round-off.
        return min(attainable, self.peak_performance)

    def attainable(self, i_oc: float, concurrent: bool) -> float:
        if concurrent:
            return self.attainable_concurrent(i_oc)
        return self.attainable_sequential(i_oc)

    # -- Eq. 5: combined roofsurface ------------------------------------------

    def attainable_combined(
        self, operational_intensity: float, i_oc: float
    ) -> float:
        """Eq. 5: min(P_peak, BW_memory * I_op, BW_config * I_OC)."""
        if self.memory_bandwidth is None:
            raise ValueError("no memory bandwidth specified for this roofline")
        return min(
            self.peak_performance,
            self.memory_bandwidth * operational_intensity,
            self.config_bandwidth * i_oc,
        )

    def roofsurface(
        self, operational_intensities: list[float], i_ocs: list[float]
    ) -> list[list[float]]:
        """Sample Eq. 5 on a grid (rows = I_OC, columns = I_operational)."""
        return [
            [self.attainable_combined(i_op, i_oc) for i_op in operational_intensities]
            for i_oc in i_ocs
        ]

    # -- structure of the roofline ----------------------------------------

    @property
    def knee_intensity(self) -> float:
        """The I_OC where the slanted and flat parts meet: P_peak/BW_config.

        At the knee the system spends equal time configuring and computing —
        the point of maximum discrepancy between sequential and concurrent
        configuration (Section 4.3)."""
        return self.peak_performance / self.config_bandwidth

    def boundness(self, i_oc: float, tolerance: float = 1e-9) -> Boundness:
        """Classify an algorithm by its position on the roofline."""
        knee = self.knee_intensity
        if math.isclose(i_oc, knee, rel_tol=1e-6):
            return Boundness.KNEE
        if i_oc < knee - tolerance:
            return Boundness.CONFIG_BOUND
        return Boundness.COMPUTE_BOUND

    def is_config_bound(self, i_oc: float) -> bool:
        return self.boundness(i_oc) is Boundness.CONFIG_BOUND

    # -- optimization predictions (Section 4.7) -----------------------------

    def overlap_headroom(self, i_oc: float) -> float:
        """Predicted speedup of configuration–computation overlap: the ratio
        between the concurrent and sequential rooflines at this intensity.
        Maximal (2x) exactly at the knee point."""
        sequential = self.attainable_sequential(i_oc)
        if sequential == 0:
            return 1.0
        return self.attainable_concurrent(i_oc) / sequential

    def utilization(self, i_oc: float, concurrent: bool) -> float:
        """Attainable fraction of peak performance (Section 4.6's metric)."""
        return self.attainable(i_oc, concurrent) / self.peak_performance

    # -- inverse queries (design exploration) ------------------------------

    def required_i_oc(self, utilization: float, concurrent: bool) -> float:
        """The operation-to-configuration intensity needed to attain the
        given fraction of peak (inverse of Eq. 2 / Eq. 3).

        Useful for sizing macro-operations: "how much work must one
        configuration amortize before the wall stops mattering?"
        """
        if not 0.0 < utilization < 1.0:
            raise ValueError("utilization must be in (0, 1) exclusive")
        target = utilization * self.peak_performance
        if concurrent:
            # target = BW * I_OC  (below the roof)
            return target / self.config_bandwidth
        # Eq. 3 inverted: 1/target = 1/P + 1/(BW * I_OC)
        inverse_config = 1.0 / target - 1.0 / self.peak_performance
        return 1.0 / (inverse_config * self.config_bandwidth)

    def required_config_bandwidth(
        self, i_oc: float, utilization: float, concurrent: bool
    ) -> float:
        """The configuration bandwidth a system needs so an algorithm with
        intensity ``i_oc`` attains the given fraction of peak — the
        hardware-design-side question (a faster config interface moves the
        knee left)."""
        if not 0.0 < utilization < 1.0:
            raise ValueError("utilization must be in (0, 1) exclusive")
        if i_oc <= 0:
            raise ValueError("i_oc must be positive")
        target = utilization * self.peak_performance
        if concurrent:
            return target / i_oc
        inverse_config = 1.0 / target - 1.0 / self.peak_performance
        return 1.0 / (inverse_config * i_oc)

    # -- plot helpers --------------------------------------------------------

    def sweep(
        self,
        i_oc_min: float = 0.25,
        i_oc_max: float = 4096.0,
        points: int = 64,
    ) -> list[tuple[float, float, float]]:
        """Log-spaced samples of (I_OC, sequential, concurrent) for plots."""
        samples: list[tuple[float, float, float]] = []
        log_min, log_max = math.log2(i_oc_min), math.log2(i_oc_max)
        for i in range(points):
            i_oc = 2.0 ** (log_min + (log_max - log_min) * i / (points - 1))
            samples.append(
                (
                    i_oc,
                    self.attainable_sequential(i_oc),
                    self.attainable_concurrent(i_oc),
                )
            )
        return samples


@dataclass(frozen=True)
class RooflinePoint:
    """One measured workload placed on the roofline plot."""

    label: str
    i_oc: float
    performance: float  # achieved ops/cycle

    def utilization(self, roofline: ConfigRoofline) -> float:
        return self.performance / roofline.peak_performance
