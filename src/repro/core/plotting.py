"""Text rendering of roofline charts.

No plotting libraries are available offline, so figures are emitted as data
series (for external plotting) plus log-log ASCII charts good enough to see
the wall, the knee, and where measured points sit relative to the sequential
and concurrent rooflines (Figures 4 and 12).
"""

from __future__ import annotations

import math

from .roofline import ConfigRoofline, RooflinePoint


def format_series(
    header: tuple[str, ...], rows: list[tuple], widths: int = 14
) -> str:
    """A column-aligned table: used by experiments to print figure data.

    ``widths`` is the minimum column width; columns grow to fit content.
    """

    def fmt(value) -> str:
        if isinstance(value, float):
            if value == float("inf"):
                return "inf"
            if value >= 1000 or (0 < abs(value) < 0.01):
                return f"{value:.4g}"
            return f"{value:.3f}"
        return str(value)

    cells = [[fmt(v) for v in row] for row in rows]
    columns = len(header)
    col_widths = [
        max(
            widths,
            len(header[i]) + 2,
            max((len(row[i]) + 2 for row in cells if i < len(row)), default=0),
        )
        for i in range(columns)
    ]
    lines = ["".join(f"{h:>{w}}" for h, w in zip(header, col_widths))]
    lines.append("".join("-" * w for w in col_widths))
    for row in cells:
        lines.append("".join(f"{v:>{w}}" for v, w in zip(row, col_widths)))
    return "\n".join(lines)


def ascii_roofline(
    roofline: ConfigRoofline,
    points: list[RooflinePoint] | None = None,
    width: int = 64,
    height: int = 18,
    i_oc_range: tuple[float, float] = (0.25, 4096.0),
) -> str:
    """Log-log ASCII roofline: '-' concurrent roof, '~' sequential roof,
    letters = measured points (labelled beneath the chart)."""
    points = points or []
    x_min, x_max = i_oc_range
    y_max = roofline.peak_performance * 1.5
    y_min = max(
        roofline.attainable_sequential(x_min) / 4.0, roofline.peak_performance / 4096.0
    )

    def x_of(i_oc: float) -> int:
        frac = (math.log2(i_oc) - math.log2(x_min)) / (
            math.log2(x_max) - math.log2(x_min)
        )
        return int(frac * (width - 1))

    def y_of(perf: float) -> int:
        perf = max(perf, y_min)
        frac = (math.log2(perf) - math.log2(y_min)) / (
            math.log2(y_max) - math.log2(y_min)
        )
        return (height - 1) - int(frac * (height - 1))

    grid = [[" "] * width for _ in range(height)]
    for col in range(width):
        i_oc = 2.0 ** (
            math.log2(x_min) + (math.log2(x_max) - math.log2(x_min)) * col / (width - 1)
        )
        conc_row = y_of(roofline.attainable_concurrent(i_oc))
        seq_row = y_of(roofline.attainable_sequential(i_oc))
        if 0 <= conc_row < height:
            grid[conc_row][col] = "-"
        if 0 <= seq_row < height and grid[seq_row][col] == " ":
            grid[seq_row][col] = "~"
    legend: list[str] = []
    for index, point in enumerate(points):
        glyph = chr(ord("A") + (index % 26))
        col = min(max(x_of(point.i_oc), 0), width - 1)
        row = min(max(y_of(point.performance), 0), height - 1)
        grid[row][col] = glyph
        legend.append(
            f"  {glyph}: {point.label}  (I_OC={point.i_oc:.1f} ops/B, "
            f"{point.performance:.1f} ops/cycle)"
        )
    knee = roofline.knee_intensity
    lines = ["".join(row) for row in grid]
    lines.append("-" * width)
    lines.append(
        f"x: I_OC {x_min:g}..{x_max:g} ops/byte (log)   knee at {knee:.2f}   "
        f"P_peak={roofline.peak_performance:g} ops/cycle"
    )
    lines.extend(legend)
    return "\n".join(lines)
