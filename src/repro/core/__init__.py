"""The configuration roofline model and its analysis utilities — the
paper's primary analytical contribution (Section 4)."""

from .analysis import (
    RunAnalysis,
    combined_boundness,
    analyze_run,
    geomean,
    point_from_metrics,
    roofline_for_spec,
    roofline_from_metrics,
    theoretical_config_bandwidth,
)
from .plotting import ascii_roofline, format_series
from .roofline import (
    Boundness,
    ConfigRoofline,
    RooflinePoint,
    effective_config_bandwidth,
)

__all__ = [
    "RunAnalysis",
    "combined_boundness",
    "analyze_run",
    "geomean",
    "point_from_metrics",
    "roofline_for_spec",
    "roofline_from_metrics",
    "theoretical_config_bandwidth",
    "ascii_roofline",
    "format_series",
    "Boundness",
    "ConfigRoofline",
    "RooflinePoint",
    "effective_config_bandwidth",
]
