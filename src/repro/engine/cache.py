"""Content-hash-keyed cache of compiled traces.

The fuzzer's differential oracles execute the *same optimized module text*
over and over: several pipelines routinely converge to identical IR (e.g.
``dedup`` and ``full`` when there is nothing to overlap), and experiment
sweeps re-run one module per size point.  Keying compiled traces on a
content hash of the printed module makes every such re-execution skip
compilation entirely.

Key = SHA-256 of the module's structural serialization
(:func:`repro.ir.fingerprint_operation` — a faster, hash-oriented form of
the printed text).  The serialization pins everything the compiled form
depends on: op structure, SSA topology, attributes (field names,
accelerator names), and types.  Mutating a module in place therefore
changes its fingerprint and misses the cache — there is no in-place
invalidation to get wrong.
Device behavior is resolved at *execution* time (the compiled stream stores
accelerator names, not device objects), so one entry serves every backend
registry state and cost model.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

from ..dialects.builtin import ModuleOp
from .compiler import CompiledModule, compile_module


def module_fingerprint(module: ModuleOp, text: str | None = None) -> str:
    """Content hash of a module's structural serialization."""
    if text is None:
        from ..ir.printer import fingerprint_operation

        text = fingerprint_operation(module)
    return hashlib.sha256(text.encode()).hexdigest()


class TraceCache:
    """Bounded LRU mapping module fingerprints to compiled traces."""

    def __init__(self, maxsize: int = 256) -> None:
        self.maxsize = maxsize
        self._entries: OrderedDict[str, CompiledModule] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, fingerprint: str) -> CompiledModule | None:
        entry = self._entries.get(fingerprint)
        if entry is not None:
            self._entries.move_to_end(fingerprint)
        return entry

    def put(self, fingerprint: str, compiled: CompiledModule) -> None:
        compiled.fingerprint = fingerprint
        self._entries[fingerprint] = compiled
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def get_or_compile(
        self, module: ModuleOp, text: str | None = None, key=None
    ) -> CompiledModule:
        """The compiled trace for ``module``, compiling on first sight.

        ``text`` lets callers that already printed the module (e.g. for an
        outcome cache of their own) avoid printing it twice.  ``key`` lets
        callers that already computed a structural key for the module
        (:func:`repro.ir.structural_key`) skip fingerprinting entirely; any
        hashable value works, and str/tuple keys never collide.
        """
        fingerprint = key if key is not None else module_fingerprint(module, text)
        entry = self.get(fingerprint)
        if entry is not None:
            self.hits += 1
            return entry
        self.misses += 1
        compiled = compile_module(module)
        self.put(fingerprint, compiled)
        return compiled

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


#: Process-wide compiled-trace cache (the fuzzer, oracles, and experiment
#: runners all share it; entries are immutable so sharing is safe).
TRACE_CACHE = TraceCache()
