"""Content-hash-keyed cache of compiled traces.

The fuzzer's differential oracles execute the *same optimized module text*
over and over: several pipelines routinely converge to identical IR (e.g.
``dedup`` and ``full`` when there is nothing to overlap), and experiment
sweeps re-run one module per size point.  Keying compiled traces on a
content hash of the printed module makes every such re-execution skip
compilation entirely.

Key = SHA-256 of the module's structural serialization
(:func:`repro.ir.fingerprint_operation` — a faster, hash-oriented form of
the printed text).  The serialization pins everything the compiled form
depends on: op structure, SSA topology, attributes (field names,
accelerator names), and types.  Mutating a module in place therefore
changes its fingerprint and misses the cache — there is no in-place
invalidation to get wrong.
Device behavior is resolved at *execution* time (the compiled stream stores
accelerator names, not device objects), so one entry serves every backend
registry state and cost model.

Two tiers.  The in-memory LRU above is process-local; an optional
:class:`repro.engine.pcache.PersistentStore` backs it on disk so compiled
traces survive across processes (``fuzz --jobs N`` shards, two-phase CI,
repeated sweeps).  Callers may hand ``get_or_compile`` a precomputed
``structural_key`` tuple as the in-memory key — those tuples intern atoms
per process, so the persistent tier always keys on the process-stable
:func:`module_fingerprint` instead.  Attach a store explicitly with
:func:`configure_persistent_cache` or implicitly via the
``REPRO_CACHE_DIR`` environment variable (which is how forked/spawned fuzz
workers inherit the cache directory).
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict

from ..dialects.builtin import ModuleOp
from .compiler import CompiledModule, compile_module
from .pcache import DEFAULT_MAX_BYTES, PersistentStore


def module_fingerprint(module: ModuleOp, text: str | None = None) -> str:
    """Content hash of a module's structural serialization."""
    if text is None:
        from ..ir.printer import fingerprint_operation

        text = fingerprint_operation(module)
    return hashlib.sha256(text.encode()).hexdigest()


class _InFlight:
    """One compilation in progress; concurrent requesters park on ``event``."""

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: CompiledModule | None = None
        self.error: BaseException | None = None


class TraceCache:
    """Bounded LRU mapping module fingerprints to compiled traces.

    ``store`` (optional) is the persistent tier: in-memory misses consult
    it before compiling, and fresh compiles are published to it.  Its
    hit/miss counters are separate from the in-process ones — a warm
    cross-process run shows up as ``store.hit_rate``, never inflates
    :attr:`hit_rate`.

    Thread-safe with single-flight semantics: the LRU bookkeeping is guarded
    by a lock, and concurrent ``get_or_compile`` calls for the same key
    coalesce onto one compilation — the first caller compiles (outside the
    lock, so unrelated keys proceed in parallel) while the rest park on an
    event and share the result.  ``coalesced`` counts the callers that
    waited on someone else's compile; they also count as hits.
    """

    def __init__(
        self, maxsize: int = 256, store: PersistentStore | None = None
    ) -> None:
        self.maxsize = maxsize
        self.store = store
        self._entries: OrderedDict[str, CompiledModule] = OrderedDict()
        self._lock = threading.RLock()
        self._in_flight: dict[object, _InFlight] = {}
        self.hits = 0
        self.misses = 0
        self.coalesced = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def attach_store(self, store: PersistentStore | None) -> None:
        self.store = store

    def get(self, fingerprint: str) -> CompiledModule | None:
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is not None:
                self._entries.move_to_end(fingerprint)
            return entry

    def put(self, fingerprint: str, compiled: CompiledModule) -> None:
        compiled.fingerprint = fingerprint
        with self._lock:
            self._entries[fingerprint] = compiled
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def _compile_miss(
        self, module: ModuleOp, text: str | None, fingerprint
    ) -> CompiledModule:
        """The miss path proper: persistent tier, then a fresh compile."""
        store = self.store
        if store is not None:
            # The persistent tier keys on the stable content hash even when
            # the in-memory key is a process-local structural_key tuple.
            stable = (
                fingerprint
                if isinstance(fingerprint, str)
                else module_fingerprint(module, text)
            )
            compiled = store.load_trace(stable)
            if compiled is None:
                compiled = compile_module(module)
                store.save_trace(stable, compiled)
            return compiled
        return compile_module(module)

    def get_or_compile(
        self, module: ModuleOp, text: str | None = None, key=None
    ) -> CompiledModule:
        """The compiled trace for ``module``, compiling on first sight.

        ``text`` lets callers that already printed the module (e.g. for an
        outcome cache of their own) avoid printing it twice.  ``key`` lets
        callers that already computed a structural key for the module
        (:func:`repro.ir.structural_key`) skip fingerprinting entirely; any
        hashable value works, and str/tuple keys never collide.
        """
        fingerprint = key if key is not None else module_fingerprint(module, text)
        while True:
            with self._lock:
                entry = self._entries.get(fingerprint)
                if entry is not None:
                    self._entries.move_to_end(fingerprint)
                    self.hits += 1
                    return entry
                flight = self._in_flight.get(fingerprint)
                if flight is None:
                    flight = _InFlight()
                    self._in_flight[fingerprint] = flight
                    owner = True
                else:
                    owner = False
                    self.hits += 1
                    self.coalesced += 1
            if not owner:
                flight.event.wait()
                if flight.error is not None:
                    raise flight.error
                result = flight.result
                if result is not None:
                    return result
                # The owner vanished without a result (cleared mid-flight);
                # retry from the top.
                continue
            self.misses += 1
            try:
                compiled = self._compile_miss(module, text, fingerprint)
            except BaseException as error:
                flight.error = error
                with self._lock:
                    self._in_flight.pop(fingerprint, None)
                flight.event.set()
                raise
            self.put(fingerprint, compiled)
            flight.result = compiled
            with self._lock:
                self._in_flight.pop(fingerprint, None)
            flight.event.set()
            return compiled

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.coalesced = 0


#: Process-wide compiled-trace cache (the fuzzer, oracles, and experiment
#: runners all share it; entries are immutable so sharing is safe).
TRACE_CACHE = TraceCache()


def configure_persistent_cache(
    directory: str | None, max_bytes: int = DEFAULT_MAX_BYTES
) -> PersistentStore | None:
    """Attach (or detach, with ``None``) the process-wide persistent tier.

    Also exports ``REPRO_CACHE_DIR`` so worker processes forked/spawned by
    ``fuzz --jobs N`` and benchmark subprocesses attach the same directory.
    """
    if directory is None:
        TRACE_CACHE.attach_store(None)
        os.environ.pop("REPRO_CACHE_DIR", None)
        return None
    store = PersistentStore(directory, max_bytes=max_bytes)
    TRACE_CACHE.attach_store(store)
    os.environ["REPRO_CACHE_DIR"] = store.directory
    return store


def active_persistent_store() -> PersistentStore | None:
    """The persistent tier of the process-wide cache, if any."""
    return TRACE_CACHE.store


def _attach_from_env() -> None:
    directory = os.environ.get("REPRO_CACHE_DIR")
    if directory:
        try:
            TRACE_CACHE.attach_store(PersistentStore(directory))
        except OSError:
            pass  # unusable directory: stay in-memory only


_attach_from_env()
