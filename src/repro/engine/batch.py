"""Batched lockstep execution of one compiled trace over many lanes.

The fuzz harness and the sweep runners execute the *same compiled module*
against many inputs: a differential oracle re-runs one optimized module per
memory seed, an experiment sweep re-runs one program per size point.  The
scalar :class:`~repro.engine.executor.TraceExecutor` pays full Python
dispatch per lane; this module instead runs N ``(memory, args)`` lanes
through the instruction stream *in lockstep*:

* Frames are ``(n_slots, n_lanes)`` object-dtype numpy arrays — object
  dtype keeps exact Python big-int semantics, while fancy indexing with
  lane-index arrays moves whole columns per dispatch.
* Straight-line runs of pure opcodes become superinstruction blocks
  (:func:`repro.engine.compiler.fuse_function`); each step applies one
  ``np.frompyfunc``-vectorized op across the group, and the whole block is
  charged as one bump per lane (see
  :func:`repro.sim.cosim.resolve_category_cycles`).
* Control flow splits groups: lanes that disagree at an ``scf.if`` or loop
  test continue as separate groups (they never rejoin — a group is simply
  a set of lanes sharing a pc).
* Accelerator state is held in per-accelerator :class:`_BatchDevice`\\ s —
  vectorized register files (one object column + presence mask per field
  name) and per-lane timing arrays mirroring
  :class:`repro.sim.device.AcceleratorDevice` semantics exactly.

**Exactness contract**: a lane's observable outcome — results, memory
image, launch counts, total cycles, and the exact protocol-error message if
it crashes — is bit-identical to running that lane alone through
``TraceExecutor``/``CoSimulator``.  The batch-vs-scalar differential suite
(``tests/properties/test_batch_equivalence.py``) and the ``batch`` fuzz
oracle enforce this.  Two deliberate non-goals keep the lockstep loop lean:
batch lanes record no per-instruction trace and no timeline (those are
scalar-run artifacts; cycle *totals* still match exactly for integer-valued
cost models — see ``docs/PERFORMANCE.md`` for the float caveat).

Fault-injected lanes cannot share lockstep (fault draws are per-interaction
and per-lane), so lanes carrying a :class:`~repro.faults.model.FaultInjector`
are delegated to a private scalar ``TraceExecutor`` + ``CoSimulator`` —
bit-identical by construction, still behind the one ``run_batch`` call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..backends.base import get_accelerator
from ..dialects.builtin import ModuleOp
from ..interp.interpreter import InterpreterError, StateHandle
from ..isa.instructions import HostCostModel, InstrCategory
from ..sim.cosim import CoSimulator, resolve_category_cycles
from ..sim.memory import Memory
from .compiler import (
    OP_AWAIT,
    OP_BINOP,
    OP_CALL,
    OP_CMP,
    OP_CONST,
    OP_COPY,
    OP_FOR_INIT,
    OP_FOR_NEXT,
    OP_FOR_TEST,
    OP_FOREIGN,
    OP_FUSED,
    OP_IF,
    OP_JUMP,
    OP_LAUNCH,
    OP_RESET,
    OP_RETURN,
    OP_SETUP,
    CompiledFunction,
    CompiledModule,
    compile_module,
    fuse_function,
)
from .executor import TraceExecutor, _evaluate_predicate, _not_int

_EMPTY = np.empty(0, dtype=np.intp)


@dataclass
class BatchLane:
    """One (memory image, argument vector) execution of the batch.

    ``faults``/``recovery``/``reliance`` attach the fault-injection runtime
    to this lane only; such lanes run on the scalar engine (see module
    docstring) but return through the same :class:`LaneResult`.
    """

    memory: Memory | None = None
    args: list[int] = field(default_factory=list)
    faults: object | None = None
    recovery: object | None = None
    reliance: object | None = None


@dataclass
class LaneResult:
    """Outcome of one lane: either ``results`` or a recorded error."""

    results: list | None
    error_type: str | None
    error: str | None
    total_cycles: float
    launch_counts: dict[str, int]
    memory: Memory

    @property
    def ok(self) -> bool:
        return self.error_type is None


class _BatchToken:
    """Per-lane launch token (identity-hashed; one per launch, like the
    scalar ``LaunchToken`` whose per-device index makes every token
    distinct)."""

    __slots__ = ("device", "lane", "index", "start", "end")

    def __init__(self, device, lane, index, start, end):
        self.device = device
        self.lane = lane
        self.index = index
        self.start = start
        self.end = end


class _BatchDevice:
    """Cross-lane state of one accelerator: ``AcceleratorDevice`` semantics
    with every per-instance scalar widened to a lane-indexed array."""

    __slots__ = (
        "spec",
        "concurrent",
        "busy_until",
        "launch_count",
        "launch_ends",
        "registers",
        "reg_mask",
        "staged",
        "staged_mask",
        "touched",
        "n",
    )

    def __init__(self, spec, n_lanes: int) -> None:
        self.spec = spec
        # No degradation on the fault-free path: effective concurrency is
        # the spec's (AcceleratorDevice.concurrent_now with force_sequential
        # permanently False).
        self.concurrent = spec.concurrent_config
        self.n = n_lanes
        self.busy_until = np.zeros(n_lanes)
        self.launch_count = np.zeros(n_lanes, dtype=np.int64)
        self.launch_ends: list[list[float]] = [[] for _ in range(n_lanes)]
        self.registers: dict[str, np.ndarray] = {}
        self.reg_mask: dict[str, np.ndarray] = {}
        self.staged: dict[str, np.ndarray] = {}
        self.staged_mask: dict[str, np.ndarray] = {}
        #: lanes whose scalar run would have created this device (drives
        #: per-lane ``launch_counts`` membership)
        self.touched = np.zeros(n_lanes, dtype=bool)

    def _column(self, target, mask, name):
        column = target.get(name)
        if column is None:
            column = target[name] = np.empty(self.n, dtype=object)
            mask[name] = np.zeros(self.n, dtype=bool)
        return column

    def write_fields_group(self, idx, names, columns, now):
        """Vectorized ``AcceleratorDevice.write_fields`` over ``idx``.

        Returns per-lane start times (sequential devices stall to
        ``busy_until``); field values land in staging (concurrent) or the
        register file (sequential) as whole-column assignments.
        """
        if self.concurrent:
            start = now
            target, mask = self.staged, self.staged_mask
        else:
            start = np.maximum(now, self.busy_until[idx])
            target, mask = self.registers, self.reg_mask
        for name, values in zip(names, columns):
            self._column(target, mask, name)[idx] = values
            mask[name][idx] = True
        return start

    def accept_time_lane(self, lane: int, now: float) -> float:
        depth = max(1, self.spec.launch_queue_depth) if self.concurrent else 1
        ends = self.launch_ends[lane]
        if len(ends) < depth:
            return now
        return max(now, ends[-depth])

    def launch_lane(self, lane, now, launch_fields, memory, functional):
        """``AcceleratorDevice.launch`` for one lane (functional execution
        and ``compute_cycles`` take a per-lane config dict, so launches stay
        per-lane even though timing state is arrays)."""
        start = max(now, float(self.busy_until[lane]))
        if self.concurrent:
            # Scalar commit condition is `spec.concurrent_config and staged`;
            # per lane that is "any field staged for this lane".
            for name, column in self.staged.items():
                mask = self.staged_mask[name]
                if mask[lane]:
                    self._column(self.registers, self.reg_mask, name)[lane] = (
                        column[lane]
                    )
                    self.reg_mask[name][lane] = True
                    mask[lane] = False
        for name, value in launch_fields.items():
            self._column(self.registers, self.reg_mask, name)[lane] = int(value)
            self.reg_mask[name][lane] = True
        config = {
            name: self.registers[name][lane]
            for name, mask in self.reg_mask.items()
            if mask[lane]
        }
        cycles = self.spec.compute_cycles(config)
        if functional:
            self.spec.execute(config, memory)
        end = start + cycles
        self.busy_until[lane] = end
        self.launch_count[lane] += 1
        self.launch_ends[lane].append(end)
        return _BatchToken(self, lane, int(self.launch_count[lane]), start, end)


class _Block:
    """One superinstruction as vector steps + the per-lane fallback data."""

    __slots__ = ("steps", "sub_ops", "cycles_prefix", "total_cycles")

    def __init__(self, steps, sub_ops, cycles_prefix):
        self.steps = steps
        self.sub_ops = sub_ops
        self.cycles_prefix = cycles_prefix
        self.total_cycles = cycles_prefix[-1]


# Step tags inside a block (kept tiny: the vector loop switches on them).
_STEP_UFUNC = 0  # (tag, dst, ufunc, a, b) — binop or cmp
_STEP_CONST = 1  # (tag, dst, value)
_STEP_COPY = 2  # (tag, dst, src)
_STEP_SELECT = 3  # (tag, dst, cond, tv, fv)

_binop_ufuncs: dict = {}
_cmp_ufuncs: dict = {}


def _binop_ufunc(evaluate, mask):
    key = (evaluate, mask)
    ufunc = _binop_ufuncs.get(key)
    if ufunc is None:
        if mask is None:

            def apply(lhs, rhs, _evaluate=evaluate):
                return _evaluate(None, lhs, rhs)

        else:

            def apply(lhs, rhs, _evaluate=evaluate, _mask=mask):
                return _evaluate(None, lhs, rhs) & _mask

        ufunc = _binop_ufuncs[key] = np.frompyfunc(apply, 2, 1)
    return ufunc


def _cmp_ufunc(predicate, width):
    key = (predicate, width)
    ufunc = _cmp_ufuncs.get(key)
    if ufunc is None:

        def apply(lhs, rhs, _predicate=predicate, _width=width):
            return int(_evaluate_predicate(_predicate, lhs, rhs, _width))

        ufunc = _cmp_ufuncs[key] = np.frompyfunc(apply, 2, 1)
    return ufunc


def _exec_pure_lane(sub, frame, lane):
    """Scalar execution of one pure sub-op for one lane — the per-lane
    fallback path, mirroring ``TraceExecutor``'s branches (same checks, same
    error messages)."""
    opcode = sub[0]
    if opcode == OP_BINOP:
        _, dst, evaluate, a, b, mask, _instr = sub
        lhs = frame[a][lane]
        if not isinstance(lhs, int):
            raise _not_int(lhs)
        rhs = frame[b][lane]
        if not isinstance(rhs, int):
            raise _not_int(rhs)
        value = evaluate(None, lhs, rhs)
        frame[dst][lane] = value & mask if mask is not None else value
    elif opcode == OP_CONST:
        frame[sub[1]][lane] = sub[2]
    elif opcode == OP_COPY:
        frame[sub[1]][lane] = frame[sub[2]][lane]
    elif opcode == OP_CMP:
        _, dst, predicate, a, b, width, _instr = sub
        lhs = frame[a][lane]
        if not isinstance(lhs, int):
            raise _not_int(lhs)
        rhs = frame[b][lane]
        if not isinstance(rhs, int):
            raise _not_int(rhs)
        frame[dst][lane] = int(_evaluate_predicate(predicate, lhs, rhs, width))
    else:  # OP_SELECT
        _, dst, cond_slot, tv, fv, _instr = sub
        cond = frame[cond_slot][lane]
        if not isinstance(cond, int):
            raise _not_int(cond)
        frame[dst][lane] = frame[tv if cond else fv][lane]


class BatchExecutor:
    """Executes one :class:`CompiledModule` over many lanes in lockstep.

    Reusable across :meth:`run` calls: block preparation (fusion + ufunc
    construction) and per-spec instruction-cycle sums are cached on the
    executor, so sweeping many batches over one module pays prep once.
    """

    def __init__(
        self,
        compiled: CompiledModule,
        cost_model: HostCostModel | None = None,
        functional: bool = True,
        module: ModuleOp | None = None,
    ) -> None:
        self.compiled = compiled
        self.cost_model = cost_model or HostCostModel()
        self.functional = functional
        #: source IR, needed only to recompile for fault lanes when
        #: ``compiled`` came from the persistent store (sites stripped)
        self.module = module
        self._cycles = resolve_category_cycles(self.cost_model)
        self._ctrl = self._cycles[InstrCategory.CONTROL]
        self._prepared: dict[str, tuple] = {}
        self._spec_cycles: dict[tuple, float] = {}
        self._site_full: CompiledModule | None = None

    # -- public API ------------------------------------------------------

    def run(
        self, lanes: list[BatchLane], function: str = "main"
    ) -> list[LaneResult]:
        lanes = list(lanes)
        results: list[LaneResult | None] = [None] * len(lanes)
        lockstep: list[int] = []
        for i, lane in enumerate(lanes):
            if lane.faults is not None:
                results[i] = self._run_fault_lane(lane, function)
            else:
                lockstep.append(i)
        if lockstep:
            run = _LockstepRun(self, [lanes[i] for i in lockstep], function)
            for i, result in zip(lockstep, run.execute()):
                results[i] = result
        return results  # type: ignore[return-value]

    # -- prep ------------------------------------------------------------

    def prepare(self, fn: CompiledFunction) -> tuple:
        """The batch code for ``fn``: fused, with pure runs as blocks."""
        bcode = self._prepared.get(fn.name)
        if bcode is None:
            fused = fuse_function(fn, min_run=1)
            bcode = tuple(
                (OP_FUSED, self._make_block(ins[1]))
                if ins[0] == OP_FUSED
                else ins
                for ins in fused.code
            )
            self._prepared[fn.name] = bcode
        return bcode

    def _make_block(self, sub_ops) -> _Block:
        steps = []
        cycles_prefix = [0.0]
        for sub in sub_ops:
            opcode = sub[0]
            if opcode == OP_BINOP:
                _, dst, evaluate, a, b, mask, instr = sub
                steps.append((_STEP_UFUNC, dst, _binop_ufunc(evaluate, mask), a, b))
                cycles = self._cycles[instr.category]
            elif opcode == OP_CONST:
                _, dst, value, instr = sub
                steps.append((_STEP_CONST, dst, value))
                cycles = self._cycles[instr.category]
            elif opcode == OP_COPY:
                steps.append((_STEP_COPY, sub[1], sub[2]))
                cycles = 0.0  # copies charge nothing
            elif opcode == OP_CMP:
                _, dst, predicate, a, b, width, instr = sub
                steps.append(
                    (_STEP_UFUNC, dst, _cmp_ufunc(predicate, width), a, b)
                )
                cycles = self._cycles[instr.category]
            else:  # OP_SELECT
                _, dst, cond_slot, tv, fv, instr = sub
                steps.append((_STEP_SELECT, dst, cond_slot, tv, fv))
                cycles = self._cycles[instr.category]
            cycles_prefix.append(cycles_prefix[-1] + cycles)
        return _Block(tuple(steps), sub_ops, tuple(cycles_prefix))

    def proto_cycles(self, spec, kind: int, names: tuple) -> float:
        """Total host cycles of one protocol interaction's instrs.

        ``kind``: 0=setup, 1=launch-carried fields, 2=launch command,
        3=sync.  Sums equal the scalar engine's instr-by-instr charges.
        """
        key = (spec.name, kind, names)
        total = self._spec_cycles.get(key)
        if total is None:
            if kind == 0:
                instrs = spec.setup_instrs_cached(names)
            elif kind == 1:
                instrs = spec.launch_field_instrs_cached(names)
            elif kind == 2:
                instrs = spec.launch_instrs_cached()
            else:
                instrs = spec.sync_instrs_cached()
            total = float(
                sum(self._cycles[instr.category] for instr in instrs)
            )
            self._spec_cycles[key] = total
        return total

    # -- fault lanes -----------------------------------------------------

    def _run_fault_lane(self, lane: BatchLane, function: str) -> LaneResult:
        compiled = self.compiled
        if compiled.sites_stripped:
            # Persistent-store entries carry no fault-recovery site ops;
            # recompile from source so minimal re-setup planning works.
            if self._site_full is None:
                if self.module is None:
                    raise ValueError(
                        "fault-injected lanes need recovery sites: construct "
                        "the BatchExecutor with the source module (or a "
                        "locally compiled trace), not a store-loaded one"
                    )
                self._site_full = compile_module(self.module)
            compiled = self._site_full
        memory = lane.memory if lane.memory is not None else Memory()
        sim = CoSimulator(
            memory=memory,
            cost_model=self.cost_model,
            functional=self.functional,
            faults=lane.faults,
            recovery=lane.recovery,
            reliance=lane.reliance,
        )
        try:
            results = TraceExecutor(compiled, sim).run(function, list(lane.args))
            error_type = error = None
        except Exception as exc:  # noqa: BLE001 - mirrored as lane outcome
            results, error_type, error = None, type(exc).__name__, str(exc)
        return LaneResult(
            results=results,
            error_type=error_type,
            error=error,
            total_cycles=sim.total_cycles,
            launch_counts={
                name: device.launch_count
                for name, device in sim.devices.items()
            },
            memory=memory,
        )


class _LockstepRun:
    """Mutable state of one batch execution over the fault-free lanes."""

    def __init__(
        self, executor: BatchExecutor, lanes: list[BatchLane], function: str
    ) -> None:
        self.executor = executor
        self.function = function
        n = self.n = len(lanes)
        self.functional = executor.functional
        self.memories = [
            lane.memory if lane.memory is not None else Memory()
            for lane in lanes
        ]
        self.args = [list(lane.args) for lane in lanes]
        self.host_time = np.zeros(n)
        self.state_counter = np.zeros(n, dtype=np.int64)
        self.awaited: list[set] = [set() for _ in range(n)]
        self.reset_states: list[set] = [set() for _ in range(n)]
        self.reset_epoch: list[dict] = [{} for _ in range(n)]
        self.token_epoch: list[dict] = [{} for _ in range(n)]
        self.devices: dict[str, _BatchDevice] = {}
        #: lane -> (error type name, message); a lane appears at most once
        self.errors: dict[int, tuple[str, str]] = {}

    # -- plumbing --------------------------------------------------------

    def _device(self, accelerator: str) -> _BatchDevice:
        device = self.devices.get(accelerator)
        if device is None:
            device = self.devices[accelerator] = _BatchDevice(
                get_accelerator(accelerator), self.n
            )
        return device

    def _record_error(self, lane: int, exc: BaseException) -> None:
        self.errors[int(lane)] = (type(exc).__name__, str(exc))

    def _fail_all(self, idx, message: str) -> None:
        for lane in idx:
            self._record_error(lane, InterpreterError(message))

    # -- top level -------------------------------------------------------

    def execute(self) -> list[LaneResult]:
        executor = self.executor
        compiled = executor.compiled
        fn = compiled.functions.get(self.function)
        all_lanes = np.arange(self.n, dtype=np.intp)
        returned: dict[int, list] = {}
        if fn is None:
            if self.function in compiled.declarations:
                self._fail_all(
                    all_lanes, f"function '{self.function}' has no body"
                )
            else:
                self._fail_all(
                    all_lanes, f"no function '{self.function}' in module"
                )
        else:
            frame = np.empty((fn.n_slots, self.n), dtype=object)
            valid = []
            for i in range(self.n):
                args = self.args[i]
                if len(args) != fn.n_args:
                    self._record_error(
                        i,
                        InterpreterError(
                            f"'{self.function}' expects {fn.n_args} "
                            f"arguments, got {len(args)}"
                        ),
                    )
                    continue
                for slot, value in zip(fn.arg_slots, args):
                    frame[slot][i] = value
                valid.append(i)
            if valid:
                returned = self._run_function(
                    fn, frame, np.array(valid, dtype=np.intp), 0
                )
        results = []
        for i in range(self.n):
            total = float(self.host_time[i])
            for device in self.devices.values():
                end = float(device.busy_until[i])
                if end > total:
                    total = end
            launch_counts = {
                name: int(device.launch_count[i])
                for name, device in self.devices.items()
                if device.touched[i]
            }
            error_type, error = self.errors.get(i, (None, None))
            results.append(
                LaneResult(
                    results=returned.get(i),
                    error_type=error_type,
                    error=error,
                    total_cycles=total,
                    launch_counts=launch_counts,
                    memory=self.memories[i],
                )
            )
        return results

    # -- group dispatch --------------------------------------------------

    def _run_function(self, fn, frame, idx, depth) -> dict[int, list]:
        executor = self.executor
        bcode = executor.prepare(fn)
        host_time = self.host_time
        ctrl = executor._ctrl
        returned: dict[int, list] = {}
        groups: list[tuple[int, np.ndarray]] = [(0, idx)]
        while groups:
            pc, idx = groups.pop()
            while idx.size:
                ins = bcode[pc]
                opcode = ins[0]

                if opcode == OP_FUSED:
                    idx = self._exec_block(ins[1], frame, idx)
                    pc += 1
                    continue

                if opcode == OP_FOR_TEST:
                    _, iv, ub, exit_target = ins
                    less = (frame[iv][idx] < frame[ub][idx]).astype(bool)
                    if not less.all():
                        leave = idx[~less]
                        groups.append((exit_target, leave))
                        idx = idx[less]
                        if not idx.size:
                            break
                    host_time[idx] += 2 * ctrl
                    pc += 1
                    continue

                if opcode == OP_FOR_NEXT:
                    _, iv, step, head = ins
                    frame[iv][idx] = frame[iv][idx] + frame[step][idx]
                    pc = head
                    continue

                if opcode == OP_IF:
                    _, cond_slot, false_target = ins
                    column = frame[cond_slot]
                    keep = np.ones(idx.size, dtype=bool)
                    taken = np.empty(idx.size, dtype=bool)
                    for k, lane in enumerate(idx):
                        cond = column[lane]
                        if isinstance(cond, int):
                            taken[k] = cond != 0
                        else:
                            keep[k] = False
                            self._record_error(lane, _not_int(cond))
                    if not keep.all():
                        idx, taken = idx[keep], taken[keep]
                        if not idx.size:
                            break
                    host_time[idx] += ctrl
                    if not taken.all():
                        groups.append((false_target, idx[~taken]))
                        idx = idx[taken]
                        if not idx.size:
                            break
                    pc += 1
                    continue

                if opcode == OP_JUMP:
                    pc = ins[1]
                    continue

                if opcode == OP_FOR_INIT:
                    _, lb, ub, step, iv = ins
                    keep = np.ones(idx.size, dtype=bool)
                    for k, lane in enumerate(idx):
                        for slot in (lb, ub, step):
                            value = frame[slot][lane]
                            if not isinstance(value, int):
                                keep[k] = False
                                self._record_error(lane, _not_int(value))
                                break
                        else:
                            if frame[step][lane] <= 0:
                                keep[k] = False
                                self._record_error(
                                    lane,
                                    InterpreterError(
                                        "scf.for requires a positive step"
                                    ),
                                )
                    if not keep.all():
                        idx = idx[keep]
                        if not idx.size:
                            break
                    frame[iv][idx] = frame[lb][idx]
                    pc += 1
                    continue

                if opcode == OP_SETUP:
                    idx = self._exec_setup(ins, frame, idx)
                    pc += 1
                    continue

                if opcode == OP_LAUNCH:
                    idx = self._exec_launch(ins, frame, idx)
                    pc += 1
                    continue

                if opcode == OP_AWAIT:
                    idx = self._exec_await(ins, frame, idx)
                    pc += 1
                    continue

                if opcode == OP_RESET:
                    slot = ins[1]
                    for lane in idx:
                        handle = frame[slot][lane]
                        if isinstance(handle, StateHandle):
                            self.reset_states[lane].add(handle)
                            epochs = self.reset_epoch[lane]
                            epochs[handle.accelerator] = (
                                epochs.get(handle.accelerator, 0) + 1
                            )
                    host_time[idx] += ctrl
                    pc += 1
                    continue

                if opcode == OP_CALL:
                    _, callee_name, arg_slots, result_slots = ins
                    callee = executor.compiled.functions.get(callee_name)
                    if callee is None:
                        self._fail_all(
                            idx,
                            "call to unknown/declared function "
                            f"'@{callee_name}'",
                        )
                        break
                    host_time[idx] += 2 * ctrl
                    if depth >= 256:  # TraceExecutor.max_call_depth
                        self._fail_all(
                            idx,
                            "call depth exceeded 256 (unbounded recursion "
                            f"via '@{callee_name}'?)",
                        )
                        break
                    inner = np.empty((callee.n_slots, self.n), dtype=object)
                    for slot, arg_slot in zip(callee.arg_slots, arg_slots):
                        inner[slot][idx] = frame[arg_slot][idx]
                    inner_returned = self._run_function(
                        callee, inner, idx, depth + 1
                    )
                    survivors = [
                        lane for lane in idx if int(lane) in inner_returned
                    ]
                    for lane in survivors:
                        for dst, value in zip(
                            result_slots, inner_returned[int(lane)]
                        ):
                            frame[dst][lane] = value
                    if len(survivors) != idx.size:
                        idx = (
                            np.array(survivors, dtype=np.intp)
                            if survivors
                            else _EMPTY
                        )
                        if not idx.size:
                            break
                    pc += 1
                    continue

                if opcode == OP_RETURN:
                    slots = ins[1]
                    for lane in idx:
                        returned[int(lane)] = [
                            frame[slot][lane] for slot in slots
                        ]
                    break

                if opcode == OP_FOREIGN:
                    host_time[idx] += executor._cycles[ins[1].category]
                    pc += 1
                    continue

                self._fail_all(idx, f"corrupt trace: unknown opcode {opcode}")
                break
        return returned

    # -- superinstruction blocks -----------------------------------------

    def _exec_block(self, block: _Block, frame, idx) -> np.ndarray:
        """Vector-execute one block; any step failure falls back to per-lane
        execution *from the failing step* (earlier steps already committed
        their columns — re-running them would double-apply loop back-edge
        copies)."""
        for s, step in enumerate(block.steps):
            try:
                tag = step[0]
                if tag == _STEP_UFUNC:
                    _, dst, ufunc, a, b = step
                    frame[dst][idx] = ufunc(frame[a][idx], frame[b][idx])
                elif tag == _STEP_CONST:
                    frame[step[1]][idx] = step[2]
                elif tag == _STEP_COPY:
                    frame[step[1]][idx] = frame[step[2]][idx]
                else:  # _STEP_SELECT
                    _, dst, cond_slot, tv, fv = step
                    conds = frame[cond_slot][idx]
                    mask = np.empty(conds.size, dtype=bool)
                    for k, cond in enumerate(conds):
                        if not isinstance(cond, int):
                            raise _not_int(cond)
                        mask[k] = cond != 0
                    frame[dst][idx] = np.where(
                        mask, frame[tv][idx], frame[fv][idx]
                    )
            except Exception:  # noqa: BLE001 - per-lane replay assigns blame
                return self._block_fallback(block, s, frame, idx)
        self.host_time[idx] += block.total_cycles
        return idx

    def _block_fallback(self, block: _Block, start: int, frame, idx):
        """Finish a block per-lane from step ``start``; erroring lanes are
        charged exactly the steps they completed (scalar charges per sub-op,
        so a lane failing at step s accrued steps 0..s-1)."""
        sub_ops = block.sub_ops
        prefix = block.cycles_prefix
        survivors = []
        for lane in idx:
            failed = None
            for s in range(start, len(sub_ops)):
                try:
                    _exec_pure_lane(sub_ops[s], frame, lane)
                except Exception as exc:  # noqa: BLE001 - lane outcome
                    failed = s
                    self._record_error(lane, exc)
                    break
            if failed is None:
                survivors.append(lane)
                self.host_time[lane] += block.total_cycles
            else:
                self.host_time[lane] += prefix[failed]
        return np.array(survivors, dtype=np.intp) if survivors else _EMPTY

    # -- protocol ops ----------------------------------------------------

    def _validate_fields(self, frame, idx, slots):
        """Gather field columns with the scalar engine's per-field int
        validation; lanes drop out at their first bad field.  Returns
        ``(idx, columns)`` with bool fields normalized to ints (scalar
        ``write_fields`` applies ``int(value)``)."""
        columns = []
        for slot in slots:
            column = frame[slot][idx]  # fancy index: a copy, safe to edit
            keep = np.ones(idx.size, dtype=bool)
            for k, value in enumerate(column):
                if type(value) is int:
                    continue
                if isinstance(value, int):
                    column[k] = int(value)
                else:
                    keep[k] = False
                    self._record_error(idx[k], _not_int(value))
            if not keep.all():
                idx = idx[keep]
                columns = [c[keep] for c in columns]
                column = column[keep]
                if not idx.size:
                    return idx, columns
            columns.append(column)
        return idx, columns

    def _check_reset_states(self, frame, idx, slot, message):
        keep = np.ones(idx.size, dtype=bool)
        column = frame[slot]
        for k, lane in enumerate(idx):
            if column[lane] in self.reset_states[lane]:
                keep[k] = False
                self._record_error(lane, InterpreterError(message))
        return idx if keep.all() else idx[keep]

    def _exec_setup(self, ins, frame, idx) -> np.ndarray:
        _, accel, names, slots, out_slot, in_slot, loc, _site = ins
        if in_slot is not None:
            idx = self._check_reset_states(
                frame,
                idx,
                in_slot,
                f"setup on '{accel}' uses a state that was reset "
                f"(register contents are no longer defined){loc}",
            )
            if not idx.size:
                return idx
        idx, columns = self._validate_fields(frame, idx, slots)
        if not idx.size:
            return idx
        try:
            device = self._device(accel)
        except KeyError as error:
            self._fail_all(idx, f"setup on {error.args[0]}{loc}")
            return _EMPTY
        now = self.host_time[idx]
        start = device.write_fields_group(idx, names, columns, now)
        self.host_time[idx] = start + self.executor.proto_cycles(
            device.spec, 0, names
        )
        device.touched[idx] = True
        self.state_counter[idx] += 1
        handles = np.empty(idx.size, dtype=object)
        for k, counter in enumerate(self.state_counter[idx]):
            handles[k] = StateHandle(accel, int(counter))
        frame[out_slot][idx] = handles
        return idx

    def _exec_launch(self, ins, frame, idx) -> np.ndarray:
        _, accel, names, slots, token_slot, state_slot, loc, _site = ins
        idx = self._check_reset_states(
            frame,
            idx,
            state_slot,
            f"launch on '{accel}' uses a state that was reset "
            f"(register contents are no longer defined){loc}",
        )
        if not idx.size:
            return idx
        idx, columns = self._validate_fields(frame, idx, slots)
        if not idx.size:
            return idx
        try:
            device = self._device(accel)
        except KeyError as error:
            self._fail_all(idx, f"launch on {error.args[0]}{loc}")
            return _EMPTY
        proto = self.executor.proto_cycles
        field_cycles = proto(device.spec, 1, names) if names else 0.0
        launch_cycles = proto(device.spec, 2, ())
        host_time = self.host_time
        for k, lane in enumerate(idx):
            lane = int(lane)
            # Scalar order: stall to accept_time, charge field + launch
            # instrs, then device.launch at the post-charge time.
            now = device.accept_time_lane(lane, float(host_time[lane]))
            now = max(float(host_time[lane]), now)
            now += field_cycles + launch_cycles
            launch_fields = {
                name: columns[j][k] for j, name in enumerate(names)
            }
            token = device.launch_lane(
                lane, now, launch_fields, self.memories[lane], self.functional
            )
            host_time[lane] = now
            self.token_epoch[lane][token] = self.reset_epoch[lane].get(
                accel, 0
            )
            frame[token_slot][lane] = token
        device.touched[idx] = True
        return idx

    def _exec_await(self, ins, frame, idx) -> np.ndarray:
        _, token_slot, accel, loc = ins
        column = frame[token_slot]
        host_time = self.host_time
        proto = self.executor.proto_cycles
        keep = np.ones(idx.size, dtype=bool)
        for k, lane in enumerate(idx):
            lane = int(lane)
            token = column[lane]
            if not isinstance(token, _BatchToken):
                keep[k] = False
                self._record_error(
                    lane,
                    InterpreterError(f"await of a value that is not a token{loc}"),
                )
                continue
            if token in self.awaited[lane]:
                keep[k] = False
                self._record_error(
                    lane,
                    InterpreterError(
                        f"double await of a token on '{accel}' "
                        f"(the launch was already awaited){loc}"
                    ),
                )
                continue
            epoch = self.reset_epoch[lane].get(accel, 0)
            if self.token_epoch[lane].get(token, epoch) != epoch:
                keep[k] = False
                self._record_error(
                    lane,
                    InterpreterError(
                        f"await of a launch on '{accel}' that was "
                        f"discarded by accfg.reset{loc}"
                    ),
                )
                continue
            # Scalar order: charge sync instrs, then stall to token end.
            now = host_time[lane] + proto(token.device.spec, 3, ())
            host_time[lane] = now if now >= token.end else token.end
            self.awaited[lane].add(token)
        return idx if keep.all() else idx[keep]


def run_batch(
    module: ModuleOp | CompiledModule,
    lanes: list[BatchLane],
    function: str = "main",
    cost_model: HostCostModel | None = None,
    functional: bool = True,
    cache=None,
) -> list[LaneResult]:
    """Run every lane through one compiled trace; returns per-lane results.

    ``module`` may be source IR (compiled through ``cache``, defaulting to
    the process-wide :data:`repro.engine.cache.TRACE_CACHE`; pass ``False``
    to compile uncached) or an already-compiled module.  Raises
    :class:`~repro.engine.compiler.TraceCompileError` for modules the trace
    compiler does not support — batch execution has no tree-interpreter
    fallback; callers that need one should catch and fan out scalar runs.
    """
    source = None
    if isinstance(module, CompiledModule):
        compiled = module
    else:
        source = module
        if cache is False:
            compiled = compile_module(module)
        else:
            if cache is None:
                from .cache import TRACE_CACHE as cache  # noqa: PLW0127

            compiled = cache.get_or_compile(module)
    executor = BatchExecutor(
        compiled, cost_model=cost_model, functional=functional, module=source
    )
    return executor.run(lanes, function)
