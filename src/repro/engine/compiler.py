"""Trace compilation: lower a verified module to a flat instruction stream.

The tree interpreter re-discovers a program's structure on every execution:
each op re-dispatches through ``isinstance`` ladders, each loop iteration
re-walks the same block objects, and each scalar charge re-resolves its
category against the config-feeding analysis.  This module performs all of
that exactly once, producing a :class:`CompiledModule`:

* every op becomes one dense opcode tuple (opcode int first, operands after);
* every SSA value becomes an integer *slot* into a flat frame list;
* ``scf.for`` / ``scf.if`` become conditional jumps over the flat stream,
  with loop-carried values lowered to (parallel-safe) slot copies;
* per-op host instructions (:class:`repro.isa.instructions.Instr`) are
  materialized at compile time, including the calc-vs-compute categorization
  of :func:`repro.interp.interpreter.config_feeding_ops`.

The compiled form is immutable and shareable: it holds no references into
the source module's def-use graph, so it can outlive the module and be
reused across executions — that is what the content-hash trace cache in
:mod:`repro.engine.cache` does.

Compilation assumes *verified* IR (the executor is proven bit-identical to
the tree interpreter on verifier-clean programs; IR that would not verify
may diverge in the error paths).  Ops the compiler does not understand —
custom ``interpret`` hooks, unregistered ops without an effects annotation —
raise :class:`TraceCompileError`; callers fall back to the tree interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dialects import accfg, arith, func, scf
from ..dialects.builtin import ModuleOp
from ..interp.interpreter import config_feeding_ops
from ..ir.attributes import IntegerType
from ..ir.operation import Operation, UnregisteredOp
from ..ir.ssa import SSAValue
from ..isa.instructions import Instr, InstrCategory


class TraceCompileError(Exception):
    """Raised when a module cannot be lowered to a flat trace."""


# Opcodes.  Dense small ints so the executor dispatches on an int compare
# chain ordered by dynamic frequency.
OP_BINOP = 0
OP_CONST = 1
OP_COPY = 2
OP_FOR_TEST = 3
OP_FOR_NEXT = 4
OP_CMP = 5
OP_SELECT = 6
OP_IF = 7
OP_JUMP = 8
OP_FOR_INIT = 9
OP_SETUP = 10
OP_LAUNCH = 11
OP_AWAIT = 12
OP_RESET = 13
OP_CALL = 14
OP_RETURN = 15
OP_FOREIGN = 16
#: A superinstruction: one dispatch covering a straight-line run of pure
#: opcodes.  Produced by :func:`fuse_function`, never by initial lowering —
#: fusion is a post-pass so the unfused stream stays the cache/identity form.
OP_FUSED = 17

#: Opcode -> mnemonic, for dispatch-stat reporting and fusion diagnostics.
OPCODE_NAMES = {
    OP_BINOP: "binop",
    OP_CONST: "const",
    OP_COPY: "copy",
    OP_FOR_TEST: "for_test",
    OP_FOR_NEXT: "for_next",
    OP_CMP: "cmp",
    OP_SELECT: "select",
    OP_IF: "if",
    OP_JUMP: "jump",
    OP_FOR_INIT: "for_init",
    OP_SETUP: "setup",
    OP_LAUNCH: "launch",
    OP_AWAIT: "await",
    OP_RESET: "reset",
    OP_CALL: "call",
    OP_RETURN: "return",
    OP_FOREIGN: "foreign",
    OP_FUSED: "fused",
}

#: Opcodes eligible for superinstruction fusion: pure frame-to-frame data
#: flow, no protocol interaction, no control transfer.  Keeping this surface
#: minimal is what makes the batch executor's vectorized block path small.
FUSABLE_OPCODES = frozenset(
    {OP_BINOP, OP_CONST, OP_COPY, OP_CMP, OP_SELECT}
)

#: Shared control-flow charge record (frozen, compared by value — reusing
#: one instance is indistinguishable from the interpreter's fresh ones).
CTRL_INSTR = Instr("ctrl", InstrCategory.CONTROL)
FOREIGN_INSTR = Instr("foreign", InstrCategory.COMPUTE)


@dataclass
class CompiledFunction:
    """One function lowered to a flat instruction stream."""

    name: str
    n_args: int
    n_slots: int
    arg_slots: tuple[int, ...]
    code: tuple[tuple, ...]


class CompiledModule:
    """Every defined function of one module, trace-compiled."""

    def __init__(
        self,
        functions: dict[str, CompiledFunction],
        declarations: frozenset[str],
        fingerprint: str | None = None,
    ) -> None:
        self.functions = functions
        self.declarations = declarations
        #: content hash of the source module text (set by the cache layer)
        self.fingerprint = fingerprint
        #: True when the fault-recovery ``site`` op references were removed
        #: (entries loaded from the persistent on-disk store): fault-injected
        #: runs must recompile instead of silently degrading minimal
        #: re-setup planning to full re-setup.
        self.sites_stripped = False


def _loc_suffix(op: Operation) -> str:
    """The " at file:line" suffix the interpreter's ``_fail`` appends."""
    return f" at {op.loc}" if op.loc is not None else ""


def _int_mask(type_) -> int | None:
    """Wrap-around mask for a result type (None for unbounded ``index``)."""
    if isinstance(type_, IntegerType):
        return (1 << type_.width) - 1
    return None


class _FunctionCompiler:
    """Lowers one function body; shared module-level context is passed in."""

    def __init__(self, config_feeding: set[Operation]) -> None:
        self._config_feeding = config_feeding
        self._slots: dict[SSAValue, int] = {}
        self.code: list[tuple] = []

    # -- slots -----------------------------------------------------------

    def slot(self, value: SSAValue) -> int:
        index = self._slots.get(value)
        if index is None:
            index = len(self._slots)
            self._slots[value] = index
        return index

    def scratch(self) -> int:
        """A fresh slot not tied to any SSA value (parallel-copy staging)."""
        key = object()  # unique, never looked up again
        index = len(self._slots)
        self._slots[key] = index  # type: ignore[index]
        return index

    @property
    def n_slots(self) -> int:
        return len(self._slots)

    # -- charging --------------------------------------------------------

    def _scalar_instr(self, op: Operation, mnemonic: str) -> Instr:
        category = (
            InstrCategory.CALC
            if op in self._config_feeding
            else InstrCategory.COMPUTE
        )
        return Instr(mnemonic, category)

    # -- lowering --------------------------------------------------------

    def compile_function(self, fn: func.FuncOp) -> CompiledFunction:
        arg_slots = tuple(self.slot(arg) for arg in fn.args)
        self.compile_block(fn.body)
        # A body falling off the end (no func.return executed) returns [].
        self.code.append((OP_RETURN, ()))
        return CompiledFunction(
            name=fn.sym_name,
            n_args=len(fn.args),
            n_slots=self.n_slots,
            arg_slots=arg_slots,
            code=tuple(self.code),
        )

    def compile_block(self, block) -> tuple[int, ...] | None:
        """Emit a block's ops in order.

        Returns the slots its terminating ``scf.yield`` forwards (None when
        the block has no yield — the interpreter then yields ``[]``).
        Mirrors the interpreter's ``_run_block``: ops after a terminator are
        never executed, so they are not compiled either.
        """
        for op in block.ops:
            if isinstance(op, scf.YieldOp):
                return tuple(self.slot(v) for v in op.operands)
            self.compile_op(op)
            if op.is_terminator:
                return None
        return None

    def compile_op(self, op: Operation) -> None:
        code = self.code
        if isinstance(op, arith.ConstantOp):
            code.append(
                (OP_CONST, self.slot(op.result), op.value,
                 self._scalar_instr(op, "li"))
            )
            return
        if isinstance(op, arith.BinaryOp):
            code.append(
                (
                    OP_BINOP,
                    self.slot(op.result),
                    type(op).evaluate,
                    self.slot(op.lhs),
                    self.slot(op.rhs),
                    _int_mask(op.result.type),
                    self._scalar_instr(op, op.name.split(".")[-1]),
                )
            )
            return
        if isinstance(op, arith.CmpiOp):
            width = (
                op.lhs.type.width
                if isinstance(op.lhs.type, IntegerType)
                else 64
            )
            code.append(
                (
                    OP_CMP,
                    self.slot(op.result),
                    op.predicate,
                    self.slot(op.lhs),
                    self.slot(op.rhs),
                    width,
                    self._scalar_instr(op, "cmp"),
                )
            )
            return
        if isinstance(op, arith.SelectOp):
            code.append(
                (
                    OP_SELECT,
                    self.slot(op.result),
                    self.slot(op.condition),
                    self.slot(op.true_value),
                    self.slot(op.false_value),
                    self._scalar_instr(op, "select"),
                )
            )
            return
        if isinstance(op, scf.ForOp):
            self.compile_for(op)
            return
        if isinstance(op, scf.IfOp):
            self.compile_if(op)
            return
        if isinstance(op, func.ReturnOp):
            code.append(
                (OP_RETURN, tuple(self.slot(v) for v in op.operands))
            )
            return
        if isinstance(op, func.CallOp):
            code.append(
                (
                    OP_CALL,
                    op.callee,
                    tuple(self.slot(v) for v in op.operands),
                    tuple(self.slot(r) for r in op.results),
                )
            )
            return
        if isinstance(op, accfg.SetupOp):
            in_state = op.in_state
            code.append(
                (
                    OP_SETUP,
                    op.accelerator,
                    tuple(op.field_names),
                    tuple(self.slot(v) for v in op.field_values),
                    self.slot(op.out_state),
                    self.slot(in_state) if in_state is not None else None,
                    _loc_suffix(op),
                    # The originating op: the fault-recovery runtime plans
                    # minimal re-setup per site.  Unused on fault-free runs.
                    op,
                )
            )
            return
        if isinstance(op, accfg.LaunchOp):
            code.append(
                (
                    OP_LAUNCH,
                    op.accelerator,
                    tuple(op.field_names),
                    tuple(self.slot(v) for _, v in op.fields),
                    self.slot(op.token),
                    self.slot(op.state),
                    _loc_suffix(op),
                    op,
                )
            )
            return
        if isinstance(op, accfg.AwaitOp):
            code.append(
                (
                    OP_AWAIT,
                    self.slot(op.token),
                    op.accelerator,
                    _loc_suffix(op),
                )
            )
            return
        if isinstance(op, accfg.ResetOp):
            code.append((OP_RESET, self.slot(op.state)))
            return
        if getattr(op, "interpret", None) is not None:
            raise TraceCompileError(
                f"op '{op.name}' carries a custom interpret hook"
            )
        if isinstance(op, UnregisteredOp):
            if accfg.get_effects(op) is not None and not op.results:
                code.append((OP_FOREIGN, FOREIGN_INSTR))
                return
            raise TraceCompileError(
                f"cannot compile unregistered op '{op.op_name}'"
            )
        raise TraceCompileError(f"cannot compile op '{op.name}'")

    def compile_for(self, op: scf.ForOp) -> None:
        code = self.code
        lb, ub, step = self.slot(op.lb), self.slot(op.ub), self.slot(op.step)
        iv = self.slot(op.induction_var)
        iter_slots = tuple(self.slot(arg) for arg in op.iter_args)
        # Bound/step validation (and the positive-step trap) happen before
        # the carried values are copied, matching interpreter order.
        code.append((OP_FOR_INIT, lb, ub, step, iv))
        self._emit_copies(zip(tuple(self.slot(v) for v in op.iter_inits),
                              iter_slots))
        head = len(code)
        code.append(None)  # patched: (OP_FOR_TEST, iv, ub, exit_target)
        yielded = self.compile_block(op.body)
        if yielded is not None:
            self._emit_parallel_copies(
                tuple(zip(yielded, iter_slots))  # zip truncation on purpose
            )
        code.append((OP_FOR_NEXT, iv, step, head))
        exit_target = len(code)
        code[head] = (OP_FOR_TEST, iv, ub, exit_target)
        self._emit_copies(
            zip(iter_slots, tuple(self.slot(r) for r in op.results))
        )

    def compile_if(self, op: scf.IfOp) -> None:
        code = self.code
        result_slots = tuple(self.slot(r) for r in op.results)
        branch = len(code)
        code.append(None)  # patched: (OP_IF, cond, false_target)
        then_yield = self.compile_block(op.then_block)
        if then_yield is not None:
            self._emit_copies(zip(then_yield, result_slots))
        if op.has_else:
            jump = len(code)
            code.append(None)  # patched: (OP_JUMP, end)
            false_target = len(code)
            else_yield = self.compile_block(op.else_block)
            if else_yield is not None:
                self._emit_copies(zip(else_yield, result_slots))
            end = len(code)
            code[jump] = (OP_JUMP, end)
        else:
            false_target = len(code)
        code[branch] = (OP_IF, self.slot(op.condition), false_target)

    def _emit_copies(self, pairs) -> None:
        for src, dst in pairs:
            if src != dst:
                self.code.append((OP_COPY, dst, src))

    def _emit_parallel_copies(self, pairs: tuple[tuple[int, int], ...]) -> None:
        """Copy sources to targets with parallel-assignment semantics.

        Loop back-edges read every yielded value before rebinding the iter
        args (``carried = run_block(...)`` then assign), so a yield that
        permutes its own iter args must stage through scratch slots.
        """
        pairs = tuple((s, d) for s, d in pairs if s != d)
        targets = {d for _, d in pairs}
        if any(s in targets for s, _ in pairs):
            staged = [(s, self.scratch(), d) for s, d in pairs]
            for src, tmp, _ in staged:
                self.code.append((OP_COPY, tmp, src))
            for _, tmp, dst in staged:
                self.code.append((OP_COPY, dst, tmp))
        else:
            self._emit_copies(pairs)


# ---------------------------------------------------------------------------
# Superinstruction fusion
# ---------------------------------------------------------------------------
#
# A fused instruction ``(OP_FUSED, sub_ops)`` replaces a maximal straight-line
# run of pure opcodes with a single dispatch.  The scalar executor interprets
# the run in a tight inner loop (one outer dispatch instead of one per op);
# the batch executor vectorizes the whole run across lanes and charges its
# cycle total in one bump.  Fusion never crosses a jump target, so control
# transfers always land on an instruction boundary of the fused stream.


def _jump_targets(code: tuple[tuple, ...]) -> set[int]:
    targets: set[int] = set()
    for ins in code:
        opcode = ins[0]
        if opcode == OP_FOR_TEST or opcode == OP_FOR_NEXT:
            targets.add(ins[3])
        elif opcode == OP_IF:
            targets.add(ins[2])
        elif opcode == OP_JUMP:
            targets.add(ins[1])
    return targets


def fuse_function(
    fn: CompiledFunction,
    candidates: frozenset[int] | None = None,
    min_run: int = 2,
) -> CompiledFunction:
    """Fuse runs of ``candidates`` opcodes into superinstructions.

    ``candidates`` defaults to every fusable opcode and is intersected with
    :data:`FUSABLE_OPCODES` — callers can pass frequency-ordered opcode sets
    from :func:`fusion_candidates` without filtering first.  Jump targets
    are re-indexed; a run never swallows an instruction some jump lands on.
    """
    if candidates is None:
        allowed = FUSABLE_OPCODES
    else:
        allowed = frozenset(candidates) & FUSABLE_OPCODES
    code = fn.code
    targets = _jump_targets(code)
    new_code: list[tuple] = []
    mapping: dict[int, int] = {}
    i, n = 0, len(code)
    while i < n:
        mapping[i] = len(new_code)
        if code[i][0] in allowed:
            j = i + 1
            while j < n and code[j][0] in allowed and j not in targets:
                j += 1
            if j - i >= min_run:
                for k in range(i + 1, j):
                    mapping[k] = len(new_code)  # interior: never a target
                new_code.append((OP_FUSED, code[i:j]))
                i = j
                continue
        new_code.append(code[i])
        i += 1
    mapping[n] = len(new_code)
    patched: list[tuple] = []
    for ins in new_code:
        opcode = ins[0]
        if opcode == OP_FOR_TEST:
            patched.append((OP_FOR_TEST, ins[1], ins[2], mapping[ins[3]]))
        elif opcode == OP_FOR_NEXT:
            patched.append((OP_FOR_NEXT, ins[1], ins[2], mapping[ins[3]]))
        elif opcode == OP_IF:
            patched.append((OP_IF, ins[1], mapping[ins[2]]))
        elif opcode == OP_JUMP:
            patched.append((OP_JUMP, mapping[ins[1]]))
        else:
            patched.append(ins)
    return CompiledFunction(
        name=fn.name,
        n_args=fn.n_args,
        n_slots=fn.n_slots,
        arg_slots=fn.arg_slots,
        code=tuple(patched),
    )


def fuse_module(
    compiled: CompiledModule,
    candidates: frozenset[int] | None = None,
    min_run: int = 2,
) -> CompiledModule:
    """A superinstruction-fused view of ``compiled``.

    Fusion is an executor-side representation change only: the fused module
    keeps the source module's ``fingerprint``, and cache identity
    (:func:`repro.engine.cache.module_fingerprint` / ``structural_key``) is
    computed from the IR, never from the instruction stream — so fusing can
    never split or alias cache entries.
    """
    fused = CompiledModule(
        {
            name: fuse_function(fn, candidates, min_run)
            for name, fn in compiled.functions.items()
        },
        compiled.declarations,
        fingerprint=compiled.fingerprint,
    )
    fused.sites_stripped = getattr(compiled, "sites_stripped", False)
    return fused


def fusion_candidates(
    stats: dict[int, int], min_share: float = 0.01
) -> tuple[int, ...]:
    """Fusable opcodes ordered by observed dispatch frequency.

    ``stats`` is a dispatch counter from ``TraceExecutor(stats=...)``:
    opcode -> number of dispatches.  Opcodes below ``min_share`` of all
    dispatches are dropped — fusing an opcode that never occurs in runs
    only grows the candidate set the fuser scans for.
    """
    total = sum(stats.values())
    if total <= 0:
        return ()
    ranked = sorted(
        (
            (count, opcode)
            for opcode, count in stats.items()
            if opcode in FUSABLE_OPCODES and count / total >= min_share
        ),
        key=lambda item: (-item[0], item[1]),
    )
    return tuple(opcode for _, opcode in ranked)


def compile_module(module: ModuleOp) -> CompiledModule:
    """Lower every defined function of ``module`` to a flat trace."""
    config_feeding = config_feeding_ops(module)
    functions: dict[str, CompiledFunction] = {}
    declarations: set[str] = set()
    for op in module.body_block.ops:
        if not isinstance(op, func.FuncOp):
            continue
        if op.is_declaration:
            declarations.add(op.sym_name)
            continue
        functions[op.sym_name] = _FunctionCompiler(
            config_feeding
        ).compile_function(op)
    return CompiledModule(functions, frozenset(declarations))
