"""Trace compilation: lower a verified module to a flat instruction stream.

The tree interpreter re-discovers a program's structure on every execution:
each op re-dispatches through ``isinstance`` ladders, each loop iteration
re-walks the same block objects, and each scalar charge re-resolves its
category against the config-feeding analysis.  This module performs all of
that exactly once, producing a :class:`CompiledModule`:

* every op becomes one dense opcode tuple (opcode int first, operands after);
* every SSA value becomes an integer *slot* into a flat frame list;
* ``scf.for`` / ``scf.if`` become conditional jumps over the flat stream,
  with loop-carried values lowered to (parallel-safe) slot copies;
* per-op host instructions (:class:`repro.isa.instructions.Instr`) are
  materialized at compile time, including the calc-vs-compute categorization
  of :func:`repro.interp.interpreter.config_feeding_ops`.

The compiled form is immutable and shareable: it holds no references into
the source module's def-use graph, so it can outlive the module and be
reused across executions — that is what the content-hash trace cache in
:mod:`repro.engine.cache` does.

Compilation assumes *verified* IR (the executor is proven bit-identical to
the tree interpreter on verifier-clean programs; IR that would not verify
may diverge in the error paths).  Ops the compiler does not understand —
custom ``interpret`` hooks, unregistered ops without an effects annotation —
raise :class:`TraceCompileError`; callers fall back to the tree interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dialects import accfg, arith, func, scf
from ..dialects.builtin import ModuleOp
from ..interp.interpreter import config_feeding_ops
from ..ir.attributes import IntegerType
from ..ir.operation import Operation, UnregisteredOp
from ..ir.ssa import SSAValue
from ..isa.instructions import Instr, InstrCategory


class TraceCompileError(Exception):
    """Raised when a module cannot be lowered to a flat trace."""


# Opcodes.  Dense small ints so the executor dispatches on an int compare
# chain ordered by dynamic frequency.
OP_BINOP = 0
OP_CONST = 1
OP_COPY = 2
OP_FOR_TEST = 3
OP_FOR_NEXT = 4
OP_CMP = 5
OP_SELECT = 6
OP_IF = 7
OP_JUMP = 8
OP_FOR_INIT = 9
OP_SETUP = 10
OP_LAUNCH = 11
OP_AWAIT = 12
OP_RESET = 13
OP_CALL = 14
OP_RETURN = 15
OP_FOREIGN = 16

#: Shared control-flow charge record (frozen, compared by value — reusing
#: one instance is indistinguishable from the interpreter's fresh ones).
CTRL_INSTR = Instr("ctrl", InstrCategory.CONTROL)
FOREIGN_INSTR = Instr("foreign", InstrCategory.COMPUTE)


@dataclass
class CompiledFunction:
    """One function lowered to a flat instruction stream."""

    name: str
    n_args: int
    n_slots: int
    arg_slots: tuple[int, ...]
    code: tuple[tuple, ...]


class CompiledModule:
    """Every defined function of one module, trace-compiled."""

    def __init__(
        self,
        functions: dict[str, CompiledFunction],
        declarations: frozenset[str],
        fingerprint: str | None = None,
    ) -> None:
        self.functions = functions
        self.declarations = declarations
        #: content hash of the source module text (set by the cache layer)
        self.fingerprint = fingerprint


def _loc_suffix(op: Operation) -> str:
    """The " at file:line" suffix the interpreter's ``_fail`` appends."""
    return f" at {op.loc}" if op.loc is not None else ""


def _int_mask(type_) -> int | None:
    """Wrap-around mask for a result type (None for unbounded ``index``)."""
    if isinstance(type_, IntegerType):
        return (1 << type_.width) - 1
    return None


class _FunctionCompiler:
    """Lowers one function body; shared module-level context is passed in."""

    def __init__(self, config_feeding: set[Operation]) -> None:
        self._config_feeding = config_feeding
        self._slots: dict[SSAValue, int] = {}
        self.code: list[tuple] = []

    # -- slots -----------------------------------------------------------

    def slot(self, value: SSAValue) -> int:
        index = self._slots.get(value)
        if index is None:
            index = len(self._slots)
            self._slots[value] = index
        return index

    def scratch(self) -> int:
        """A fresh slot not tied to any SSA value (parallel-copy staging)."""
        key = object()  # unique, never looked up again
        index = len(self._slots)
        self._slots[key] = index  # type: ignore[index]
        return index

    @property
    def n_slots(self) -> int:
        return len(self._slots)

    # -- charging --------------------------------------------------------

    def _scalar_instr(self, op: Operation, mnemonic: str) -> Instr:
        category = (
            InstrCategory.CALC
            if op in self._config_feeding
            else InstrCategory.COMPUTE
        )
        return Instr(mnemonic, category)

    # -- lowering --------------------------------------------------------

    def compile_function(self, fn: func.FuncOp) -> CompiledFunction:
        arg_slots = tuple(self.slot(arg) for arg in fn.args)
        self.compile_block(fn.body)
        # A body falling off the end (no func.return executed) returns [].
        self.code.append((OP_RETURN, ()))
        return CompiledFunction(
            name=fn.sym_name,
            n_args=len(fn.args),
            n_slots=self.n_slots,
            arg_slots=arg_slots,
            code=tuple(self.code),
        )

    def compile_block(self, block) -> tuple[int, ...] | None:
        """Emit a block's ops in order.

        Returns the slots its terminating ``scf.yield`` forwards (None when
        the block has no yield — the interpreter then yields ``[]``).
        Mirrors the interpreter's ``_run_block``: ops after a terminator are
        never executed, so they are not compiled either.
        """
        for op in block.ops:
            if isinstance(op, scf.YieldOp):
                return tuple(self.slot(v) for v in op.operands)
            self.compile_op(op)
            if op.is_terminator:
                return None
        return None

    def compile_op(self, op: Operation) -> None:
        code = self.code
        if isinstance(op, arith.ConstantOp):
            code.append(
                (OP_CONST, self.slot(op.result), op.value,
                 self._scalar_instr(op, "li"))
            )
            return
        if isinstance(op, arith.BinaryOp):
            code.append(
                (
                    OP_BINOP,
                    self.slot(op.result),
                    type(op).evaluate,
                    self.slot(op.lhs),
                    self.slot(op.rhs),
                    _int_mask(op.result.type),
                    self._scalar_instr(op, op.name.split(".")[-1]),
                )
            )
            return
        if isinstance(op, arith.CmpiOp):
            width = (
                op.lhs.type.width
                if isinstance(op.lhs.type, IntegerType)
                else 64
            )
            code.append(
                (
                    OP_CMP,
                    self.slot(op.result),
                    op.predicate,
                    self.slot(op.lhs),
                    self.slot(op.rhs),
                    width,
                    self._scalar_instr(op, "cmp"),
                )
            )
            return
        if isinstance(op, arith.SelectOp):
            code.append(
                (
                    OP_SELECT,
                    self.slot(op.result),
                    self.slot(op.condition),
                    self.slot(op.true_value),
                    self.slot(op.false_value),
                    self._scalar_instr(op, "select"),
                )
            )
            return
        if isinstance(op, scf.ForOp):
            self.compile_for(op)
            return
        if isinstance(op, scf.IfOp):
            self.compile_if(op)
            return
        if isinstance(op, func.ReturnOp):
            code.append(
                (OP_RETURN, tuple(self.slot(v) for v in op.operands))
            )
            return
        if isinstance(op, func.CallOp):
            code.append(
                (
                    OP_CALL,
                    op.callee,
                    tuple(self.slot(v) for v in op.operands),
                    tuple(self.slot(r) for r in op.results),
                )
            )
            return
        if isinstance(op, accfg.SetupOp):
            in_state = op.in_state
            code.append(
                (
                    OP_SETUP,
                    op.accelerator,
                    tuple(op.field_names),
                    tuple(self.slot(v) for v in op.field_values),
                    self.slot(op.out_state),
                    self.slot(in_state) if in_state is not None else None,
                    _loc_suffix(op),
                    # The originating op: the fault-recovery runtime plans
                    # minimal re-setup per site.  Unused on fault-free runs.
                    op,
                )
            )
            return
        if isinstance(op, accfg.LaunchOp):
            code.append(
                (
                    OP_LAUNCH,
                    op.accelerator,
                    tuple(op.field_names),
                    tuple(self.slot(v) for _, v in op.fields),
                    self.slot(op.token),
                    self.slot(op.state),
                    _loc_suffix(op),
                    op,
                )
            )
            return
        if isinstance(op, accfg.AwaitOp):
            code.append(
                (
                    OP_AWAIT,
                    self.slot(op.token),
                    op.accelerator,
                    _loc_suffix(op),
                )
            )
            return
        if isinstance(op, accfg.ResetOp):
            code.append((OP_RESET, self.slot(op.state)))
            return
        if getattr(op, "interpret", None) is not None:
            raise TraceCompileError(
                f"op '{op.name}' carries a custom interpret hook"
            )
        if isinstance(op, UnregisteredOp):
            if accfg.get_effects(op) is not None and not op.results:
                code.append((OP_FOREIGN, FOREIGN_INSTR))
                return
            raise TraceCompileError(
                f"cannot compile unregistered op '{op.op_name}'"
            )
        raise TraceCompileError(f"cannot compile op '{op.name}'")

    def compile_for(self, op: scf.ForOp) -> None:
        code = self.code
        lb, ub, step = self.slot(op.lb), self.slot(op.ub), self.slot(op.step)
        iv = self.slot(op.induction_var)
        iter_slots = tuple(self.slot(arg) for arg in op.iter_args)
        # Bound/step validation (and the positive-step trap) happen before
        # the carried values are copied, matching interpreter order.
        code.append((OP_FOR_INIT, lb, ub, step, iv))
        self._emit_copies(zip(tuple(self.slot(v) for v in op.iter_inits),
                              iter_slots))
        head = len(code)
        code.append(None)  # patched: (OP_FOR_TEST, iv, ub, exit_target)
        yielded = self.compile_block(op.body)
        if yielded is not None:
            self._emit_parallel_copies(
                tuple(zip(yielded, iter_slots))  # zip truncation on purpose
            )
        code.append((OP_FOR_NEXT, iv, step, head))
        exit_target = len(code)
        code[head] = (OP_FOR_TEST, iv, ub, exit_target)
        self._emit_copies(
            zip(iter_slots, tuple(self.slot(r) for r in op.results))
        )

    def compile_if(self, op: scf.IfOp) -> None:
        code = self.code
        result_slots = tuple(self.slot(r) for r in op.results)
        branch = len(code)
        code.append(None)  # patched: (OP_IF, cond, false_target)
        then_yield = self.compile_block(op.then_block)
        if then_yield is not None:
            self._emit_copies(zip(then_yield, result_slots))
        if op.has_else:
            jump = len(code)
            code.append(None)  # patched: (OP_JUMP, end)
            false_target = len(code)
            else_yield = self.compile_block(op.else_block)
            if else_yield is not None:
                self._emit_copies(zip(else_yield, result_slots))
            end = len(code)
            code[jump] = (OP_JUMP, end)
        else:
            false_target = len(code)
        code[branch] = (OP_IF, self.slot(op.condition), false_target)

    def _emit_copies(self, pairs) -> None:
        for src, dst in pairs:
            if src != dst:
                self.code.append((OP_COPY, dst, src))

    def _emit_parallel_copies(self, pairs: tuple[tuple[int, int], ...]) -> None:
        """Copy sources to targets with parallel-assignment semantics.

        Loop back-edges read every yielded value before rebinding the iter
        args (``carried = run_block(...)`` then assign), so a yield that
        permutes its own iter args must stage through scratch slots.
        """
        pairs = tuple((s, d) for s, d in pairs if s != d)
        targets = {d for _, d in pairs}
        if any(s in targets for s, _ in pairs):
            staged = [(s, self.scratch(), d) for s, d in pairs]
            for src, tmp, _ in staged:
                self.code.append((OP_COPY, tmp, src))
            for _, tmp, dst in staged:
                self.code.append((OP_COPY, dst, tmp))
        else:
            self._emit_copies(pairs)


def compile_module(module: ModuleOp) -> CompiledModule:
    """Lower every defined function of ``module`` to a flat trace."""
    config_feeding = config_feeding_ops(module)
    functions: dict[str, CompiledFunction] = {}
    declarations: set[str] = set()
    for op in module.body_block.ops:
        if not isinstance(op, func.FuncOp):
            continue
        if op.is_declaration:
            declarations.add(op.sym_name)
            continue
        functions[op.sym_name] = _FunctionCompiler(
            config_feeding
        ).compile_function(op)
    return CompiledModule(functions, frozenset(declarations))
