"""repro.engine — trace-compiled execution.

Lowers verified modules to flat, preallocated instruction streams
(:mod:`.compiler`), executes them with a tight dispatch loop that is
bit-identical to the tree interpreter (:mod:`.executor`), fuses hot pure
opcode runs into superinstructions (:func:`fuse_module`), runs many lanes
through one trace in lockstep (:mod:`.batch`), and caches compiled traces
by content hash (:mod:`.cache`) with an optional on-disk persistent tier
(:mod:`.pcache`).  See docs/PERFORMANCE.md.
"""

from .batch import BatchExecutor, BatchLane, LaneResult, run_batch
from .cache import (
    TRACE_CACHE,
    TraceCache,
    active_persistent_store,
    configure_persistent_cache,
    module_fingerprint,
)
from .compiler import (
    FUSABLE_OPCODES,
    OPCODE_NAMES,
    CompiledFunction,
    CompiledModule,
    TraceCompileError,
    compile_module,
    fuse_function,
    fuse_module,
    fusion_candidates,
)
from .executor import TraceExecutor, run_module_traced
from .pcache import PersistentStore

__all__ = [
    "TRACE_CACHE",
    "TraceCache",
    "active_persistent_store",
    "configure_persistent_cache",
    "module_fingerprint",
    "PersistentStore",
    "FUSABLE_OPCODES",
    "OPCODE_NAMES",
    "CompiledFunction",
    "CompiledModule",
    "TraceCompileError",
    "compile_module",
    "fuse_function",
    "fuse_module",
    "fusion_candidates",
    "TraceExecutor",
    "run_module_traced",
    "BatchExecutor",
    "BatchLane",
    "LaneResult",
    "run_batch",
]
