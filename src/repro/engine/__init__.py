"""repro.engine — trace-compiled execution.

Lowers verified modules to flat, preallocated instruction streams
(:mod:`.compiler`), executes them with a tight dispatch loop that is
bit-identical to the tree interpreter (:mod:`.executor`), and caches
compiled traces by content hash (:mod:`.cache`).  See docs/PERFORMANCE.md.
"""

from .cache import TRACE_CACHE, TraceCache, module_fingerprint
from .compiler import (
    CompiledFunction,
    CompiledModule,
    TraceCompileError,
    compile_module,
)
from .executor import TraceExecutor, run_module_traced

__all__ = [
    "TRACE_CACHE",
    "TraceCache",
    "module_fingerprint",
    "CompiledFunction",
    "CompiledModule",
    "TraceCompileError",
    "compile_module",
    "TraceExecutor",
    "run_module_traced",
]
