"""Flat-trace executor: a tight dispatch loop over compiled instruction
streams.

Behaviorally bit-identical to :class:`repro.interp.interpreter.Interpreter`
on verified modules: same results, same memory image, same launch counts,
same instruction trace, same timeline spans, same protocol-error messages
(the ``trace-vs-tree`` differential oracle enforces exactly this on every
fuzzed program).  The speed comes from doing per-execution work only:

* opcode dispatch on small ints instead of ``isinstance`` ladders;
* SSA environments as flat lists indexed by precomputed slots;
* host-instruction charging inlined (span + trace append + time bump)
  with per-instruction cycle costs resolved once per cost model.
"""

from __future__ import annotations

from ..dialects.builtin import ModuleOp
from ..interp.interpreter import InterpreterError, StateHandle
from ..sim.cosim import _SPAN_FOR_CATEGORY, CoSimulator
from ..sim.device import FaultError, LaunchToken
from ..sim.timeline import Span
from .compiler import (
    OP_AWAIT,
    OP_BINOP,
    OP_CALL,
    OP_CMP,
    OP_CONST,
    OP_COPY,
    OP_FOR_INIT,
    OP_FOR_NEXT,
    OP_FOR_TEST,
    OP_FOREIGN,
    OP_FUSED,
    OP_IF,
    OP_JUMP,
    OP_LAUNCH,
    OP_RESET,
    OP_RETURN,
    OP_SELECT,
    OP_SETUP,
    CTRL_INSTR,
    CompiledFunction,
    CompiledModule,
    TraceCompileError,
    compile_module,
)

# Re-exported for cmpi evaluation without re-importing dialects at run time.
from ..dialects.arith import CmpiOp

_evaluate_predicate = CmpiOp.evaluate_predicate


def _not_int(value) -> InterpreterError:
    return InterpreterError(
        f"expected an integer value, found {type(value).__name__}"
    )


class TraceExecutor:
    """Executes one :class:`CompiledModule` against a co-simulator.

    Mutable run state (protocol tracking, call depth) lives here, so one
    compiled module can be shared by any number of executors/caches.
    """

    def __init__(
        self,
        compiled: CompiledModule,
        sim: CoSimulator,
        stats: dict[int, int] | None = None,
    ) -> None:
        self.compiled = compiled
        self.sim = sim
        #: optional dispatch counter (opcode -> count); feeding one run's
        #: stats to :func:`repro.engine.compiler.fusion_candidates` yields
        #: the frequency-ordered superinstruction candidate set
        self.stats = stats
        self.max_call_depth = 256
        self._state_counter = 0
        self._call_depth = 0
        self._awaited: set[LaunchToken] = set()
        self._reset_states: set[StateHandle] = set()
        self._reset_epoch: dict[str, int] = {}
        self._token_epoch: dict[LaunchToken, int] = {}
        # (cycles, span kind) per distinct Instr, resolved once per run
        # against this sim's cost model.
        self._cost: dict = {}

    # -- public API ------------------------------------------------------

    def run(self, function: str = "main", args: list[int] | None = None) -> list:
        """Execute ``function`` to completion; returns its results."""
        fn = self.compiled.functions.get(function)
        if fn is None:
            if function in self.compiled.declarations:
                raise InterpreterError(f"function '{function}' has no body")
            raise InterpreterError(f"no function '{function}' in module")
        args = args or []
        if len(args) != fn.n_args:
            raise InterpreterError(
                f"'{function}' expects {fn.n_args} arguments, got {len(args)}"
            )
        frame = [None] * fn.n_slots
        for slot, value in zip(fn.arg_slots, args):
            frame[slot] = value
        return self._exec(fn, frame)

    # -- dispatch loop ---------------------------------------------------

    def _cycles_kind(self, instr):
        entry = self._cost.get(instr)
        if entry is None:
            cycles = self.sim.cost_model.cycles(instr)
            entry = (cycles, _SPAN_FOR_CATEGORY[instr.category])
            self._cost[instr] = entry
        return entry

    def _exec(self, fn: CompiledFunction, frame: list) -> list:
        sim = self.sim
        code = fn.code
        cost = self._cycles_kind
        spans = sim.timeline.spans
        spans_append = spans.append
        trace_append = sim.trace.instrs.append
        reset_states = self._reset_states
        stats = self.stats
        pc = 0
        while True:
            ins = code[pc]
            opcode = ins[0]
            if stats is not None:
                stats[opcode] = stats.get(opcode, 0) + 1

            if opcode == OP_BINOP:
                _, dst, evaluate, a, b, mask, instr = ins
                lhs = frame[a]
                if not isinstance(lhs, int):
                    raise _not_int(lhs)
                rhs = frame[b]
                if not isinstance(rhs, int):
                    raise _not_int(rhs)
                value = evaluate(None, lhs, rhs)
                frame[dst] = value & mask if mask is not None else value
                cycles, kind = cost(instr)
                t = sim.host_time
                if cycles > 0:
                    spans_append(Span("host", kind, t, t + cycles, ""))
                sim.host_time = t + cycles
                trace_append(instr)
                pc += 1
                continue

            if opcode == OP_COPY:
                frame[ins[1]] = frame[ins[2]]
                pc += 1
                continue

            if opcode == OP_FOR_TEST:
                _, iv, ub, exit_target = ins
                if frame[iv] < frame[ub]:
                    # Increment + compare&branch of the loop back-edge.
                    cycles, kind = cost(CTRL_INSTR)
                    t = sim.host_time
                    if cycles > 0:
                        spans_append(Span("host", kind, t, t + cycles, ""))
                        spans_append(
                            Span("host", kind, t + cycles, t + 2 * cycles, "")
                        )
                    sim.host_time = t + 2 * cycles
                    trace_append(CTRL_INSTR)
                    trace_append(CTRL_INSTR)
                    pc += 1
                else:
                    pc = exit_target
                continue

            if opcode == OP_FOR_NEXT:
                _, iv, step, head = ins
                frame[iv] += frame[step]
                pc = head
                continue

            if opcode == OP_CONST:
                _, dst, value, instr = ins
                frame[dst] = value
                cycles, kind = cost(instr)
                t = sim.host_time
                if cycles > 0:
                    spans_append(Span("host", kind, t, t + cycles, ""))
                sim.host_time = t + cycles
                trace_append(instr)
                pc += 1
                continue

            if opcode == OP_CMP:
                _, dst, predicate, a, b, width, instr = ins
                lhs = frame[a]
                if not isinstance(lhs, int):
                    raise _not_int(lhs)
                rhs = frame[b]
                if not isinstance(rhs, int):
                    raise _not_int(rhs)
                frame[dst] = int(_evaluate_predicate(predicate, lhs, rhs, width))
                cycles, kind = cost(instr)
                t = sim.host_time
                if cycles > 0:
                    spans_append(Span("host", kind, t, t + cycles, ""))
                sim.host_time = t + cycles
                trace_append(instr)
                pc += 1
                continue

            if opcode == OP_SELECT:
                _, dst, cond_slot, tv, fv, instr = ins
                cond = frame[cond_slot]
                if not isinstance(cond, int):
                    raise _not_int(cond)
                frame[dst] = frame[tv if cond else fv]
                cycles, kind = cost(instr)
                t = sim.host_time
                if cycles > 0:
                    spans_append(Span("host", kind, t, t + cycles, ""))
                sim.host_time = t + cycles
                trace_append(instr)
                pc += 1
                continue

            if opcode == OP_IF:
                _, cond_slot, false_target = ins
                cond = frame[cond_slot]
                if not isinstance(cond, int):
                    raise _not_int(cond)
                cycles, kind = cost(CTRL_INSTR)
                t = sim.host_time
                if cycles > 0:
                    spans_append(Span("host", kind, t, t + cycles, ""))
                sim.host_time = t + cycles
                trace_append(CTRL_INSTR)
                pc = pc + 1 if cond else false_target
                continue

            if opcode == OP_JUMP:
                pc = ins[1]
                continue

            if opcode == OP_FOR_INIT:
                _, lb, ub, step, iv = ins
                value = frame[lb]
                if not isinstance(value, int):
                    raise _not_int(value)
                bound = frame[ub]
                if not isinstance(bound, int):
                    raise _not_int(bound)
                stride = frame[step]
                if not isinstance(stride, int):
                    raise _not_int(stride)
                if stride <= 0:
                    raise InterpreterError("scf.for requires a positive step")
                frame[iv] = value
                pc += 1
                continue

            if opcode == OP_SETUP:
                _, accel, names, slots, out_slot, in_slot, loc, site = ins
                if in_slot is not None and frame[in_slot] in reset_states:
                    raise InterpreterError(
                        f"setup on '{accel}' uses a state that was reset "
                        f"(register contents are no longer defined){loc}"
                    )
                fields = {}
                for name, slot in zip(names, slots):
                    value = frame[slot]
                    if not isinstance(value, int):
                        raise _not_int(value)
                    fields[name] = value
                try:
                    sim.exec_setup(accel, fields, site=site)
                except KeyError as error:
                    raise InterpreterError(
                        f"setup on {error.args[0]}{loc}"
                    ) from None
                except FaultError as error:
                    raise InterpreterError(f"{error}{loc}") from None
                self._state_counter += 1
                frame[out_slot] = StateHandle(accel, self._state_counter)
                pc += 1
                continue

            if opcode == OP_LAUNCH:
                _, accel, names, slots, token_slot, state_slot, loc, site = ins
                if frame[state_slot] in reset_states:
                    raise InterpreterError(
                        f"launch on '{accel}' uses a state that was reset "
                        f"(register contents are no longer defined){loc}"
                    )
                fields = {}
                for name, slot in zip(names, slots):
                    value = frame[slot]
                    if not isinstance(value, int):
                        raise _not_int(value)
                    fields[name] = value
                try:
                    token = sim.exec_launch(accel, fields, site=site)
                except KeyError as error:
                    raise InterpreterError(
                        f"launch on {error.args[0]}{loc}"
                    ) from None
                except FaultError as error:
                    raise InterpreterError(f"{error}{loc}") from None
                self._token_epoch[token] = self._reset_epoch.get(accel, 0)
                frame[token_slot] = token
                pc += 1
                continue

            if opcode == OP_AWAIT:
                _, token_slot, accel, loc = ins
                token = frame[token_slot]
                if not isinstance(token, LaunchToken):
                    raise InterpreterError(
                        f"await of a value that is not a token{loc}"
                    )
                if token in self._awaited:
                    raise InterpreterError(
                        f"double await of a token on '{accel}' "
                        f"(the launch was already awaited){loc}"
                    )
                epoch = self._reset_epoch.get(accel, 0)
                if self._token_epoch.get(token, epoch) != epoch:
                    raise InterpreterError(
                        f"await of a launch on '{accel}' that was "
                        f"discarded by accfg.reset{loc}"
                    )
                try:
                    sim.exec_await(token)
                except FaultError as error:
                    raise InterpreterError(f"{error}{loc}") from None
                self._awaited.add(token)
                pc += 1
                continue

            if opcode == OP_RESET:
                handle = frame[ins[1]]
                if isinstance(handle, StateHandle):
                    reset_states.add(handle)
                    self._reset_epoch[handle.accelerator] = (
                        self._reset_epoch.get(handle.accelerator, 0) + 1
                    )
                    if sim.faults is not None:
                        sim.exec_reset(handle.accelerator)
                cycles, kind = cost(CTRL_INSTR)
                t = sim.host_time
                if cycles > 0:
                    spans_append(Span("host", kind, t, t + cycles, ""))
                sim.host_time = t + cycles
                trace_append(CTRL_INSTR)
                pc += 1
                continue

            if opcode == OP_CALL:
                _, callee_name, arg_slots, result_slots = ins
                callee = self.compiled.functions.get(callee_name)
                if callee is None:
                    raise InterpreterError(
                        f"call to unknown/declared function '@{callee_name}'"
                    )
                cycles, kind = cost(CTRL_INSTR)  # call + return jumps
                t = sim.host_time
                if cycles > 0:
                    spans_append(Span("host", kind, t, t + cycles, ""))
                    spans_append(
                        Span("host", kind, t + cycles, t + 2 * cycles, "")
                    )
                sim.host_time = t + 2 * cycles
                trace_append(CTRL_INSTR)
                trace_append(CTRL_INSTR)
                if self._call_depth >= self.max_call_depth:
                    raise InterpreterError(
                        f"call depth exceeded {self.max_call_depth} "
                        f"(unbounded recursion via '@{callee_name}'?)"
                    )
                inner = [None] * callee.n_slots
                for slot, arg_slot in zip(callee.arg_slots, arg_slots):
                    inner[slot] = frame[arg_slot]
                self._call_depth += 1
                try:
                    values = self._exec(callee, inner)
                finally:
                    self._call_depth -= 1
                for dst, value in zip(result_slots, values):
                    frame[dst] = value
                pc += 1
                continue

            if opcode == OP_RETURN:
                return [frame[slot] for slot in ins[1]]

            if opcode == OP_FOREIGN:
                instr = ins[1]
                cycles, kind = cost(instr)
                t = sim.host_time
                if cycles > 0:
                    spans_append(Span("host", kind, t, t + cycles, ""))
                sim.host_time = t + cycles
                trace_append(instr)
                pc += 1
                continue

            if opcode == OP_FUSED:
                # One dispatch for a straight-line run of pure opcodes; each
                # sub-op replays its standalone branch exactly (same checks,
                # same spans, same trace order), so fused and unfused
                # streams are observationally identical.
                for sub in ins[1]:
                    sub_opcode = sub[0]
                    if sub_opcode == OP_BINOP:
                        _, dst, evaluate, a, b, mask, instr = sub
                        lhs = frame[a]
                        if not isinstance(lhs, int):
                            raise _not_int(lhs)
                        rhs = frame[b]
                        if not isinstance(rhs, int):
                            raise _not_int(rhs)
                        value = evaluate(None, lhs, rhs)
                        frame[dst] = value & mask if mask is not None else value
                    elif sub_opcode == OP_CONST:
                        _, dst, value, instr = sub
                        frame[dst] = value
                    elif sub_opcode == OP_COPY:
                        frame[sub[1]] = frame[sub[2]]
                        continue  # copies charge nothing
                    elif sub_opcode == OP_CMP:
                        _, dst, predicate, a, b, width, instr = sub
                        lhs = frame[a]
                        if not isinstance(lhs, int):
                            raise _not_int(lhs)
                        rhs = frame[b]
                        if not isinstance(rhs, int):
                            raise _not_int(rhs)
                        frame[dst] = int(
                            _evaluate_predicate(predicate, lhs, rhs, width)
                        )
                    else:  # OP_SELECT
                        _, dst, cond_slot, tv, fv, instr = sub
                        cond = frame[cond_slot]
                        if not isinstance(cond, int):
                            raise _not_int(cond)
                        frame[dst] = frame[tv if cond else fv]
                    cycles, kind = cost(instr)
                    t = sim.host_time
                    if cycles > 0:
                        spans_append(Span("host", kind, t, t + cycles, ""))
                    sim.host_time = t + cycles
                    trace_append(instr)
                pc += 1
                continue

            raise InterpreterError(f"corrupt trace: unknown opcode {opcode}")


def run_module_traced(
    module: ModuleOp,
    sim: CoSimulator | None = None,
    function: str = "main",
    args: list[int] | None = None,
    cache=None,
    fallback: bool = True,
) -> tuple[list, CoSimulator]:
    """Trace-compile (with caching) and execute ``function``.

    Drop-in replacement for :func:`repro.interp.run_module`.  ``cache``
    defaults to the process-wide :data:`repro.engine.cache.TRACE_CACHE`;
    pass ``False``/``None``-like sentinel objects with a ``get_or_compile``
    method to control caching.  When the module contains ops the trace
    compiler does not support and ``fallback`` is true, execution falls back
    to the tree interpreter (identical semantics, just slower).
    """
    sim = sim or CoSimulator()
    if cache is None:
        from .cache import TRACE_CACHE

        cache = TRACE_CACHE
    try:
        compiled = (
            cache.get_or_compile(module)
            if cache is not False
            else compile_module(module)
        )
    except TraceCompileError:
        if not fallback:
            raise
        from ..interp import run_module

        return run_module(module, sim, function, args)
    if sim.faults is not None and compiled.sites_stripped:
        # Entries loaded from the persistent store carry no fault-recovery
        # ``site`` ops; running them under fault injection would silently
        # degrade minimal re-setup planning to full re-setup.  Recompile
        # fresh (and re-cache, so one recompile serves the whole campaign).
        key = compiled.fingerprint
        compiled = compile_module(module)
        if key is not None and cache is not False and hasattr(cache, "put"):
            cache.put(key, compiled)
    results = TraceExecutor(compiled, sim).run(function, args)
    return results, sim
