"""Persistent content-addressed cache store.

In-process caches (the compiled-trace LRU in :mod:`.cache`, the generator's
memory-image cache) evaporate at process exit, so ``fuzz --jobs N`` shards,
two-phase CI jobs, and repeated experiment sweeps recompile the same modules
over and over.  :class:`PersistentStore` is the on-disk tier underneath
them: a directory of pickle entries, content-addressed by the same stable
content hash the in-memory tier uses (:func:`repro.engine.cache.module_fingerprint`
— the SHA-256 of the module's structural serialization; the hashed form of
``structural_key``, whose raw tuples intern atoms per process and therefore
cannot cross a process boundary).

Design rules, each of which a robustness test pins down:

* **Schema versioned** — every entry embeds ``SCHEMA``; a version bump (or a
  foreign file that happens to unpickle) reads as a miss, never as stale
  data served.
* **Atomic writes** — entries are published with
  :func:`repro.ioutil.atomic_write_bytes`; concurrent writers (fuzz shards)
  cannot torn-write, the last complete payload wins.
* **Corruption tolerant** — a truncated, garbled, or wrong-type entry is a
  miss (and is unlinked best-effort); the caller recompiles.
* **Size bounded** — after every store the directory is trimmed to
  ``max_bytes`` by oldest-mtime-first eviction (loads touch their entry's
  mtime, so eviction is LRU-shaped).
* **Degrades, never raises** — a cache directory that vanishes or turns
  unwritable mid-run (operator cleanup, disk pressure, permissions) must
  not take the caller's work down with it.  Every load against a missing
  directory is a miss counted as ``rejected``; after
  :data:`DEGRADE_AFTER` consecutive I/O failures (or a detected missing
  directory) the store flips to ``degraded`` — in-memory-only operation:
  no more disk touches, every load a counted miss — and logs the downgrade
  once.  The serving layer surfaces the flag in its stats.

Compiled traces need one transformation before they can live on disk: the
``OP_SETUP``/``OP_LAUNCH`` tuples carry the originating IR op as a ``site``
for the fault-recovery runtime's minimal re-setup planning.  Those ops are
process-local object graphs — meaningless (and unpicklable) across
processes — so :func:`strip_sites` nulls them and marks the module
``sites_stripped``; fault-injected runs recompile fresh rather than let
minimal re-setup silently degrade to full (see ``run_module_traced``).
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import threading
import time

from ..ioutil import atomic_write_bytes
from .compiler import (
    OP_LAUNCH,
    OP_SETUP,
    CompiledFunction,
    CompiledModule,
)

#: Bump on any change to the entry layout or to the compiled-trace tuple
#: format; old entries then read as misses and are lazily replaced.
SCHEMA = "repro-cache/1"

#: Default size bound of one store directory (plenty for every fuzz/CI
#: workload; a full 200-iteration three-backend fuzz run compiles ~2k
#: distinct modules at a few KiB each).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

_SUFFIX = ".bin"

#: Consecutive I/O failures before a store stops touching the disk and runs
#: in-memory-only for the rest of the process (see the module docstring).
DEGRADE_AFTER = 3

_log = logging.getLogger("repro.engine.pcache")

#: Process-wide strictly-increasing LRU clock (nanoseconds).  Filesystems
#: with coarse mtime granularity (1 s on some, 1 ns rounded to jiffies on
#: others) let several entries land on the *same* mtime, which would make
#: LRU eviction order depend on directory-listing order.  Every save and
#: every load-touch stamps the entry with the next tick instead, so entries
#: written by one process always have a total recency order; cross-process
#: ties (two writers, same nanosecond) fall back to the path tie-break in
#: :meth:`PersistentStore._entries`.
_lru_clock_lock = threading.Lock()
_lru_clock = 0


def _lru_tick() -> int:
    """The next strictly-increasing LRU timestamp in nanoseconds."""
    global _lru_clock
    with _lru_clock_lock:
        _lru_clock = max(_lru_clock + 1, time.time_ns())
        return _lru_clock


def strip_sites(compiled: CompiledModule) -> CompiledModule:
    """A copy of ``compiled`` with fault-recovery site ops nulled out.

    The stripped form is what goes to disk: identical on every fault-free
    path (sites are only read when a fault injector is attached), marked
    ``sites_stripped`` so faulted runs know to recompile.
    """
    functions = {}
    for name, fn in compiled.functions.items():
        code = []
        for ins in fn.code:
            opcode = ins[0]
            if opcode == OP_SETUP or opcode == OP_LAUNCH:
                code.append(ins[:7] + (None,))
            else:
                code.append(ins)
        functions[name] = CompiledFunction(
            name=fn.name,
            n_args=fn.n_args,
            n_slots=fn.n_slots,
            arg_slots=fn.arg_slots,
            code=tuple(code),
        )
    stripped = CompiledModule(
        functions, compiled.declarations, fingerprint=compiled.fingerprint
    )
    stripped.sites_stripped = True
    return stripped


class PersistentStore:
    """One on-disk cache directory; see the module docstring."""

    def __init__(
        self, directory: str, max_bytes: int = DEFAULT_MAX_BYTES
    ) -> None:
        self.directory = os.path.abspath(directory)
        self.max_bytes = max_bytes
        os.makedirs(self.directory, exist_ok=True)
        #: guards the counters and eviction; loads/saves themselves are
        #: already safe (atomic rename publication, bad reads are misses)
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: loads rejected for schema/kind/key mismatch, corruption, or a
        #: missing/broken cache directory (degradation path)
        self.rejected = 0
        #: I/O-level failures (directory gone, unwritable, stat errors)
        self.io_errors = 0
        self._consecutive_io_errors = 0
        #: True once the store gave up on the disk: in-memory-only mode,
        #: every load a miss, every save a no-op (logged once on downgrade)
        self.degraded = False

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- graceful degradation ---------------------------------------------

    def _io_failure(self, what: str, error: BaseException | str) -> None:
        """Record one I/O failure; flip to degraded after a streak."""
        with self._lock:
            self.io_errors += 1
            self._consecutive_io_errors += 1
            directory_gone = not os.path.isdir(self.directory)
            if not self.degraded and (
                directory_gone
                or self._consecutive_io_errors >= DEGRADE_AFTER
            ):
                self.degraded = True
                _log.warning(
                    "persistent cache degraded to in-memory-only "
                    "(%s: %s; directory %s%s)",
                    what,
                    error,
                    self.directory,
                    " is gone" if directory_gone else "",
                )

    def _io_ok(self) -> None:
        with self._lock:
            self._consecutive_io_errors = 0

    def _path(self, kind: str, key: str) -> str:
        digest = hashlib.sha256(f"{kind}:{key}".encode()).hexdigest()
        return os.path.join(self.directory, digest + _SUFFIX)

    def load(self, kind: str, key: str) -> object | None:
        """The stored payload, or None on miss/corruption/version skew.

        Never raises: a vanished or unreadable cache directory degrades to
        misses (counted as ``rejected``) rather than failing the caller.
        """
        if self.degraded:
            with self._lock:
                self.misses += 1
                self.rejected += 1
            return None
        path = self._path(kind, key)
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
            if (
                not isinstance(entry, dict)
                or entry.get("schema") != SCHEMA
                or entry.get("kind") != kind
                or entry.get("key") != key
            ):
                raise ValueError("schema or identity mismatch")
        except FileNotFoundError as error:
            with self._lock:
                self.misses += 1
            if not os.path.isdir(self.directory):
                # Not an absent entry — the whole store is gone mid-run.
                with self._lock:
                    self.rejected += 1
                self._io_failure("load", error)
            return None
        except OSError as error:
            # Unreadable entry or directory (permissions, I/O): a rejected
            # miss, and a strike toward in-memory-only degradation.
            with self._lock:
                self.misses += 1
                self.rejected += 1
            self._io_failure("load", error)
            return None
        except Exception:  # noqa: BLE001 - any bad entry is just a miss
            with self._lock:
                self.misses += 1
                self.rejected += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        with self._lock:
            self.hits += 1
        self._io_ok()
        self._touch(path)  # LRU touch
        return entry["payload"]

    def _touch(self, path: str) -> None:
        """Stamp ``path`` with the next strictly-increasing LRU tick."""
        tick = _lru_tick()
        try:
            os.utime(path, ns=(tick, tick))
        except OSError:
            pass

    def save(self, kind: str, key: str, payload: object) -> None:
        """Publish an entry atomically, then enforce the size bound.

        Serialization failures are swallowed: an unpicklable payload means
        this entry stays process-local, not that the caller's work fails.
        A degraded store skips the disk entirely (the atomic writer would
        otherwise silently resurrect a directory an operator deleted).
        """
        if self.degraded:
            return
        try:
            blob = pickle.dumps(
                {"schema": SCHEMA, "kind": kind, "key": key, "payload": payload},
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        except Exception:  # noqa: BLE001 - unpicklable payload: skip
            return
        path = self._path(kind, key)
        try:
            atomic_write_bytes(path, blob)
        except OSError as error:
            self._io_failure("save", error)
            return
        self._io_ok()
        self._touch(path)
        with self._lock:
            self.stores += 1
        self._evict()

    # -- trace-specific convenience --------------------------------------

    def load_trace(self, fingerprint: str) -> CompiledModule | None:
        payload = self.load("trace", fingerprint)
        if not isinstance(payload, CompiledModule):
            return None
        payload.sites_stripped = True
        payload.fingerprint = fingerprint
        return payload

    def save_trace(self, fingerprint: str, compiled: CompiledModule) -> None:
        self.save("trace", fingerprint, strip_sites(compiled))

    # -- eviction ---------------------------------------------------------

    def _entries(self) -> list[tuple[int, str, int]]:
        """(mtime_ns, path, size) per entry; racing deletions are skipped.

        The tuple order IS the eviction order: oldest LRU tick first, and —
        for cross-process writers whose ticks collide on a coarse-mtime
        filesystem — the path as a deterministic tie-break, so eviction
        never depends on directory-listing order.
        """
        entries = []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        for name in names:
            if not name.endswith(_SUFFIX):
                continue
            path = os.path.join(self.directory, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue
            entries.append((stat.st_mtime_ns, path, stat.st_size))
        return entries

    def _evict(self) -> None:
        with self._lock:
            entries = self._entries()
            total = sum(size for _, _, size in entries)
            if total <= self.max_bytes:
                return
            for _, path, size in sorted(entries):
                try:
                    os.unlink(path)
                except OSError:
                    continue
                total -= size
                if total <= self.max_bytes:
                    return
