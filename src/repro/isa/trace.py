"""Instruction traces and their statistics.

A :class:`Trace` accumulates every host instruction the co-simulation
charges, in order.  :class:`TraceStats` aggregates the counts the paper's
evaluation reports: setup vs. calc instruction counts, configuration bytes,
and the derived effective configuration bandwidth (Eq. 4).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from .instructions import HostCostModel, Instr, InstrCategory


@dataclass
class Trace:
    """An append-only log of executed host instructions."""

    instrs: list[Instr] = field(default_factory=list)

    def append(self, instr: Instr) -> None:
        self.instrs.append(instr)

    def extend(self, instrs: list[Instr]) -> None:
        self.instrs.extend(instrs)

    def __len__(self) -> int:
        return len(self.instrs)

    def count(self, category: InstrCategory) -> int:
        return sum(1 for instr in self.instrs if instr.category is category)

    def config_bytes(self, accelerator: str | None = None) -> int:
        return sum(
            instr.config_bytes
            for instr in self.instrs
            if instr.config_bytes
            and (accelerator is None or instr.accelerator == accelerator)
        )

    def stats(
        self,
        cost_model: HostCostModel | None = None,
        accelerator: str | None = None,
    ) -> "TraceStats":
        """Aggregate the trace.

        With ``accelerator`` given, instructions attributed to *another*
        accelerator (setup/launch/sync records carry one) are excluded;
        unattributed host work (calc/compute/control) is always included.
        """
        cost_model = cost_model or HostCostModel()

        def relevant(instr: Instr) -> bool:
            return (
                accelerator is None
                or instr.accelerator is None
                or instr.accelerator == accelerator
            )

        instrs = [instr for instr in self.instrs if relevant(instr)]
        counts = Counter(instr.category for instr in instrs)
        cycles_by_category = {
            category: sum(
                cost_model.cycles(instr)
                for instr in instrs
                if instr.category is category
            )
            for category in InstrCategory
        }
        return TraceStats(
            total_instrs=len(instrs),
            setup_instrs=counts.get(InstrCategory.SETUP, 0),
            calc_instrs=counts.get(InstrCategory.CALC, 0),
            compute_instrs=counts.get(InstrCategory.COMPUTE, 0),
            control_instrs=counts.get(InstrCategory.CONTROL, 0),
            launch_instrs=counts.get(InstrCategory.LAUNCH, 0),
            sync_instrs=counts.get(InstrCategory.SYNC, 0),
            config_bytes=self.config_bytes(accelerator),
            cycles_by_category=cycles_by_category,
        )


@dataclass(frozen=True)
class TraceStats:
    """Aggregated instruction accounting for one program run."""

    total_instrs: int
    setup_instrs: int
    calc_instrs: int
    compute_instrs: int
    control_instrs: int
    launch_instrs: int
    sync_instrs: int
    config_bytes: int
    cycles_by_category: dict[InstrCategory, float]

    @property
    def setup_cycles(self) -> float:
        return self.cycles_by_category.get(InstrCategory.SETUP, 0.0)

    @property
    def calc_cycles(self) -> float:
        return self.cycles_by_category.get(InstrCategory.CALC, 0.0)

    def effective_config_bandwidth(self) -> float:
        """Eq. 4: bytes / (time to compute them + time to set them)."""
        denominator = self.setup_cycles + self.calc_cycles
        if denominator == 0:
            return float("inf")
        return self.config_bytes / denominator

    def theoretical_config_bandwidth(self) -> float:
        """Config bytes over register-write time only (ignoring calc)."""
        if self.setup_cycles == 0:
            return float("inf")
        return self.config_bytes / self.setup_cycles
