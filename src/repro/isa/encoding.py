"""Configuration field packing.

Models the bit-packing of Listing 1: accelerator configuration fields are
frequently narrower than a machine word, so the host packs several of them
into one register before issuing a configuration write.  These helpers
compute the packed words, the number of machine words a field set occupies,
and the scalar-instruction cost of packing — the ``T_calc bytes`` component
of effective configuration bandwidth (Eq. 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache


@dataclass(frozen=True)
class FieldSpec:
    """One configuration field: its name, meaning, and bit width (Table 1)."""

    name: str
    bits: int
    meaning: str = ""

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 64:
            raise ValueError(f"field '{self.name}' width {self.bits} out of range")

    @property
    def mask(self) -> int:
        return (1 << self.bits) - 1


@dataclass(frozen=True)
class PackedWord:
    """A machine word holding one or more fields at bit offsets."""

    lanes: tuple[tuple[FieldSpec, int], ...]  # (field, bit offset)

    @property
    def bits_used(self) -> int:
        return sum(spec.bits for spec, _ in self.lanes)

    def encode(self, values: dict[str, int]) -> int:
        word = 0
        for spec, offset in self.lanes:
            value = values.get(spec.name, 0) & spec.mask
            word |= value << offset
        return word

    def decode(self, word: int) -> dict[str, int]:
        return {
            spec.name: (word >> offset) & spec.mask for spec, offset in self.lanes
        }


def pack_fields(
    fields: "Sequence[FieldSpec]", word_bits: int = 64
) -> list[PackedWord]:
    """Greedy first-fit packing of fields into machine words, in order.

    Mirrors how accelerator C APIs lay out macro-instruction operands: fields
    are packed densely in declaration order, starting a new word when the
    next field does not fit.

    Packing is a pure function of the (hashable, frozen) field specs, and
    the simulators re-pack the same few field sets on every configuration
    write — so the layout is memoized on the field tuple.  The returned
    list is a fresh copy per call; the :class:`PackedWord` entries are
    immutable and shared.
    """
    return list(_pack_fields_cached(tuple(fields), word_bits))


@lru_cache(maxsize=4096)
def _pack_fields_cached(
    fields: tuple[FieldSpec, ...], word_bits: int
) -> tuple[PackedWord, ...]:
    words: list[PackedWord] = []
    lanes: list[tuple[FieldSpec, int]] = []
    offset = 0
    for spec in fields:
        if offset + spec.bits > word_bits:
            words.append(PackedWord(tuple(lanes)))
            lanes, offset = [], 0
        lanes.append((spec, offset))
        offset += spec.bits
    if lanes:
        words.append(PackedWord(tuple(lanes)))
    return tuple(words)


def packing_instruction_count(word: PackedWord) -> int:
    """Scalar instructions to assemble one packed word at runtime.

    The first lane is a plain register move (or already in place); every
    further lane needs a shift and an or (Listing 1's ``slli``/``or``
    ladder).
    """
    extra_lanes = max(0, len(word.lanes) - 1)
    return 1 + 2 * extra_lanes


def total_config_bytes(fields: list[FieldSpec]) -> int:
    """Exact configuration payload in bytes (sum of field widths, rounded
    up per field to whole bytes the way register interfaces transfer them)."""
    return sum((spec.bits + 7) // 8 for spec in fields)
