"""Instruction-level host accounting: instruction records, field packing,
traces, and the host cost model."""

from .encoding import (
    FieldSpec,
    PackedWord,
    pack_fields,
    packing_instruction_count,
    total_config_bytes,
)
from .instructions import (
    HostCostModel,
    Instr,
    InstrCategory,
    alu,
    branch,
    config_write,
    launch_instr,
    load_imm,
    sync_instr,
)
from .trace import Trace, TraceStats

__all__ = [
    "FieldSpec",
    "PackedWord",
    "pack_fields",
    "packing_instruction_count",
    "total_config_bytes",
    "HostCostModel",
    "Instr",
    "InstrCategory",
    "alu",
    "branch",
    "config_write",
    "launch_instr",
    "load_imm",
    "sync_instr",
    "Trace",
    "TraceStats",
]
