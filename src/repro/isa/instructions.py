"""Host instruction records.

The co-simulation does not execute real RISC-V encodings; it executes IR and
charges *instruction records* against a host cost model, which is exactly the
accounting the paper performs (instruction counts from spike traces times an
average cycles-per-instruction, Section 4.6 and footnote 4).  Each record
carries a category so metrics can separate configuration-register writes
("setup") from configuration-parameter computation ("calc") from everything
else — the split that defines effective configuration bandwidth (Eq. 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class InstrCategory(str, Enum):
    """What a host instruction contributes to, for the roofline accounting."""

    SETUP = "setup"  # writes configuration registers (RoCC / CSR / MMIO)
    CALC = "calc"  # computes configuration parameters (bit-packing, addresses)
    COMPUTE = "compute"  # host-side payload computation
    CONTROL = "control"  # loop/branch overhead
    LAUNCH = "launch"  # starts the accelerator
    SYNC = "sync"  # polls/waits for accelerator completion


@dataclass(frozen=True)
class Instr:
    """One host instruction: a mnemonic, a category, and the config bytes it
    transfers (non-zero only for SETUP instructions)."""

    mnemonic: str
    category: InstrCategory
    config_bytes: int = 0
    accelerator: str | None = None

    def __post_init__(self) -> None:
        if self.config_bytes and self.category not in (
            InstrCategory.SETUP,
            InstrCategory.LAUNCH,
        ):
            raise ValueError("only setup/launch instructions carry config bytes")


def alu(mnemonic: str = "alu", category: InstrCategory = InstrCategory.CALC) -> Instr:
    """A one-cycle-class scalar ALU instruction."""
    return Instr(mnemonic, category)


def load_imm(category: InstrCategory = InstrCategory.CALC) -> Instr:
    return Instr("li", category)


def config_write(mnemonic: str, accelerator: str, config_bytes: int) -> Instr:
    return Instr(mnemonic, InstrCategory.SETUP, config_bytes, accelerator)


def launch_instr(mnemonic: str, accelerator: str, config_bytes: int = 0) -> Instr:
    return Instr(mnemonic, InstrCategory.LAUNCH, config_bytes, accelerator)


def sync_instr(mnemonic: str, accelerator: str) -> Instr:
    return Instr(mnemonic, InstrCategory.SYNC, 0, accelerator)


def branch() -> Instr:
    return Instr("branch", InstrCategory.CONTROL)


@dataclass
class HostCostModel:
    """Converts instruction records into cycles.

    The paper approximates the Rocket host with 3 cycles per instruction (the
    inverse harmonic mean of the IPC survey in [17], footnote 4); per-category
    overrides let targets model e.g. slow MMIO writes.
    """

    cycles_per_instr: float = 3.0
    category_overrides: dict[InstrCategory, float] = field(default_factory=dict)

    def cycles(self, instr: Instr) -> float:
        return self.category_overrides.get(instr.category, self.cycles_per_instr)
