"""Attributes and types for the IR.

Attributes are immutable compile-time values attached to operations (constants,
names, flags).  Types are a subclass of attributes, mirroring MLIR's design
where types and attributes share the same uniquing machinery.  All attributes
are hashable and compare by value, which the optimization passes rely on (for
example, configuration deduplication compares attribute-equality of setup
field names).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Attribute:
    """Base class for every attribute and type."""

    def __str__(self) -> str:  # pragma: no cover - overridden everywhere
        return repr(self)


@dataclass(frozen=True)
class TypeAttribute(Attribute):
    """Base class for types.  A type describes the shape of an SSA value."""


@dataclass(frozen=True)
class IntegerType(TypeAttribute):
    """A fixed-width integer type such as ``i32`` or ``i64``."""

    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"integer width must be positive, got {self.width}")

    def __str__(self) -> str:
        return f"i{self.width}"


@dataclass(frozen=True)
class IndexType(TypeAttribute):
    """Platform-sized integer used for loop bounds and indexing."""

    def __str__(self) -> str:
        return "index"


# Commonly used type singletons.
i1 = IntegerType(1)
i8 = IntegerType(8)
i16 = IntegerType(16)
i32 = IntegerType(32)
i64 = IntegerType(64)
index = IndexType()


@dataclass(frozen=True)
class FunctionType(TypeAttribute):
    """The type of a function: input types and result types."""

    inputs: tuple[TypeAttribute, ...]
    results: tuple[TypeAttribute, ...]

    @staticmethod
    def from_lists(
        inputs: list[TypeAttribute] | tuple[TypeAttribute, ...],
        results: list[TypeAttribute] | tuple[TypeAttribute, ...],
    ) -> "FunctionType":
        return FunctionType(tuple(inputs), tuple(results))

    def __str__(self) -> str:
        ins = ", ".join(str(t) for t in self.inputs)
        outs = ", ".join(str(t) for t in self.results)
        if len(self.results) == 1:
            return f"({ins}) -> {outs}"
        return f"({ins}) -> ({outs})"


@dataclass(frozen=True)
class IntegerAttr(Attribute):
    """An integer constant with an associated type."""

    value: int
    type: TypeAttribute = field(default=i64)

    def __str__(self) -> str:
        return f"{self.value} : {self.type}"


@dataclass(frozen=True)
class BoolAttr(Attribute):
    """A boolean flag attribute."""

    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class StringAttr(Attribute):
    """A string attribute, e.g. a symbol or accelerator name."""

    value: str

    def __str__(self) -> str:
        return f'"{self.value}"'


@dataclass(frozen=True)
class SymbolRefAttr(Attribute):
    """A reference to a symbol (function name) by ``@name``."""

    name: str

    def __str__(self) -> str:
        return f"@{self.name}"


@dataclass(frozen=True)
class ArrayAttr(Attribute):
    """An ordered list of attributes."""

    elements: tuple[Attribute, ...]

    @staticmethod
    def from_list(elements: list[Attribute] | tuple[Attribute, ...]) -> "ArrayAttr":
        return ArrayAttr(tuple(elements))

    def __len__(self) -> int:
        return len(self.elements)

    def __iter__(self):
        return iter(self.elements)

    def __getitem__(self, i: int) -> Attribute:
        return self.elements[i]

    def __str__(self) -> str:
        return "[" + ", ".join(str(e) for e in self.elements) + "]"


@dataclass(frozen=True)
class DictAttr(Attribute):
    """An ordered string-keyed dictionary of attributes."""

    entries: tuple[tuple[str, Attribute], ...]

    @staticmethod
    def from_dict(d: dict[str, Attribute]) -> "DictAttr":
        return DictAttr(tuple(d.items()))

    def as_dict(self) -> dict[str, Attribute]:
        return dict(self.entries)

    def __str__(self) -> str:
        inner = ", ".join(f"{k} = {v}" for k, v in self.entries)
        return "{" + inner + "}"


@dataclass(frozen=True)
class UnitAttr(Attribute):
    """An attribute whose presence alone carries meaning."""

    def __str__(self) -> str:
        return "unit"
