"""repro.ir — a compact MLIR-like SSA IR framework.

This package provides the compiler substrate the paper's ``accfg`` dialect
and optimization passes are built on: attributes and types, SSA values with
def-use chains, operations with nested regions, a builder, a verifier, a
textual printer/parser pair, and pattern-rewriting infrastructure.
"""

from .attributes import (
    ArrayAttr,
    Attribute,
    BoolAttr,
    DictAttr,
    FunctionType,
    IndexType,
    IntegerAttr,
    IntegerType,
    StringAttr,
    SymbolRefAttr,
    TypeAttribute,
    UnitAttr,
    i1,
    i8,
    i16,
    i32,
    i64,
    index,
)
from .block import Block, Region, values_defined_above
from .builder import Builder, InsertPoint
from .location import SourceLoc
from .operation import IRError, Operation, UnregisteredOp, VerifyError
from .parser import ParseError, Parser, parse_module, parse_operation
from .printer import (
    Printer,
    fingerprint_operation,
    format_attribute,
    print_operation,
    structural_key,
)
from .registry import (
    OP_REGISTRY,
    register_custom_parser,
    register_op,
    register_type_parser,
)
from .rewriter import (
    DRIVER_NAMES,
    DriverResult,
    GreedyPatternDriver,
    PatternDriverWarning,
    PatternRewriter,
    RewritePattern,
    Rewriter,
    active_driver,
    apply_patterns_greedily,
    drive_patterns,
    use_driver,
)
from .ssa import BlockArgument, OpResult, SSAValue, Use
from .traits import HasCanonicalizer, IsolatedFromAbove, IsTerminator, OpTrait, Pure
from .verifier import verify_operation

__all__ = [
    "ArrayAttr",
    "Attribute",
    "BoolAttr",
    "DictAttr",
    "FunctionType",
    "IndexType",
    "IntegerAttr",
    "IntegerType",
    "StringAttr",
    "SymbolRefAttr",
    "TypeAttribute",
    "UnitAttr",
    "i1",
    "i8",
    "i16",
    "i32",
    "i64",
    "index",
    "Block",
    "Region",
    "values_defined_above",
    "Builder",
    "InsertPoint",
    "SourceLoc",
    "IRError",
    "Operation",
    "UnregisteredOp",
    "VerifyError",
    "ParseError",
    "Parser",
    "parse_module",
    "parse_operation",
    "Printer",
    "format_attribute",
    "print_operation",
    "fingerprint_operation",
    "structural_key",
    "OP_REGISTRY",
    "register_custom_parser",
    "register_op",
    "register_type_parser",
    "DRIVER_NAMES",
    "DriverResult",
    "GreedyPatternDriver",
    "PatternDriverWarning",
    "PatternRewriter",
    "RewritePattern",
    "Rewriter",
    "active_driver",
    "apply_patterns_greedily",
    "drive_patterns",
    "use_driver",
    "BlockArgument",
    "OpResult",
    "SSAValue",
    "Use",
    "HasCanonicalizer",
    "IsolatedFromAbove",
    "IsTerminator",
    "OpTrait",
    "Pure",
    "verify_operation",
]
