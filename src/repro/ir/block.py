"""Blocks and regions.

A :class:`Block` is an ordered list of operations plus a list of block
arguments; a :class:`Region` is an ordered list of blocks owned by an
operation.  The structured-control-flow dialect used in this project keeps
every region single-block, but the data structures support multiple blocks so
the design matches MLIR.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Sequence

from .attributes import TypeAttribute
from .operation import IRError, Operation
from .ssa import BlockArgument, SSAValue

if TYPE_CHECKING:  # pragma: no cover
    pass


class Block:
    """A straight-line sequence of operations with entry arguments."""

    __slots__ = ("args", "ops", "parent")

    def __init__(
        self,
        ops: Sequence[Operation] = (),
        arg_types: Sequence[TypeAttribute] = (),
    ) -> None:
        self.args: list[BlockArgument] = [
            BlockArgument(t, self, i) for i, t in enumerate(arg_types)
        ]
        self.ops: list[Operation] = []
        self.parent: Region | None = None
        for op in ops:
            self.add_op(op)

    # -- op list management ----------------------------------------------

    def add_op(self, op: Operation) -> None:
        """Append ``op`` at the end of the block."""
        self._adopt(op)
        self.ops.append(op)

    def add_ops(self, ops: Sequence[Operation]) -> None:
        for op in ops:
            self.add_op(op)

    def insert_op_at(self, index: int, op: Operation) -> None:
        self._adopt(op)
        self.ops.insert(index, op)

    def insert_op_before(self, anchor: Operation, op: Operation) -> None:
        self.insert_op_at(self.index_of(anchor), op)

    def insert_op_after(self, anchor: Operation, op: Operation) -> None:
        self.insert_op_at(self.index_of(anchor) + 1, op)

    def detach_op(self, op: Operation) -> Operation:
        if op.parent is not self:
            raise IRError("op is not in this block")
        self.ops.remove(op)
        op.parent = None
        return op

    def index_of(self, op: Operation) -> int:
        for i, candidate in enumerate(self.ops):
            if candidate is op:
                return i
        raise IRError(f"op '{op.name}' not found in block")

    def _adopt(self, op: Operation) -> None:
        if op.parent is not None:
            raise IRError(
                f"op '{op.name}' already belongs to a block; detach it first"
            )
        op.parent = self

    # -- arguments ---------------------------------------------------------

    def add_arg(self, type: TypeAttribute, name_hint: str | None = None) -> BlockArgument:
        arg = BlockArgument(type, self, len(self.args), name_hint)
        self.args.append(arg)
        return arg

    def erase_arg(self, arg: BlockArgument) -> None:
        """Remove a (use-free) block argument and renumber the rest."""
        if arg.has_uses:
            raise IRError("cannot erase block argument that still has uses")
        if arg.block is not self:
            raise IRError("argument does not belong to this block")
        self.args.remove(arg)
        for i, remaining in enumerate(self.args):
            remaining.index = i

    # -- queries -------------------------------------------------------------

    @property
    def first_op(self) -> Operation | None:
        return self.ops[0] if self.ops else None

    @property
    def last_op(self) -> Operation | None:
        return self.ops[-1] if self.ops else None

    @property
    def terminator(self) -> Operation | None:
        last = self.last_op
        return last if last is not None and last.is_terminator else None

    @property
    def parent_op(self) -> Operation | None:
        return self.parent.parent if self.parent is not None else None

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def __repr__(self) -> str:
        return f"<Block with {len(self.ops)} ops>"


class Region:
    """An ordered list of blocks owned by an operation."""

    __slots__ = ("blocks", "parent")

    def __init__(self, blocks: Sequence[Block] = ()) -> None:
        self.blocks: list[Block] = []
        self.parent: Operation | None = None
        for block in blocks:
            self.add_block(block)

    def add_block(self, block: Block) -> None:
        if block.parent is not None:
            raise IRError("block already belongs to a region")
        block.parent = self
        self.blocks.append(block)

    @property
    def block(self) -> Block:
        """The single block (raises for multi-block regions)."""
        if len(self.blocks) != 1:
            raise IRError(f"region has {len(self.blocks)} blocks, expected 1")
        return self.blocks[0]

    @property
    def empty(self) -> bool:
        return not self.blocks or all(not b.ops for b in self.blocks)

    def walk(self) -> Iterator[Operation]:
        for block in self.blocks:
            for op in list(block.ops):
                yield from op.walk()

    def __repr__(self) -> str:
        return f"<Region with {len(self.blocks)} blocks>"


def values_defined_above(region: Region) -> set[SSAValue]:
    """Collect SSA values used inside ``region`` but defined outside it."""
    inside_ops: set[int] = set()
    inside_blocks: set[int] = set()
    for block in region.blocks:
        inside_blocks.add(id(block))
        for op in block.ops:
            for nested in op.walk():
                inside_ops.add(id(nested))
                for r in nested.regions:
                    for b in r.blocks:
                        inside_blocks.add(id(b))
    captured: set[SSAValue] = set()
    for op in region.walk():
        for operand in op.operands:
            owner = operand.owner
            if isinstance(owner, Operation):
                if id(owner) not in inside_ops:
                    captured.add(operand)
            else:
                if id(owner) not in inside_blocks:
                    captured.add(operand)
    return captured
