"""Textual IR parser.

Reads the format produced by :mod:`repro.ir.printer` back into IR objects.
Custom op syntax is resolved through the :mod:`repro.ir.registry` tables; any
op printed in the generic ``"dialect.op"(...)`` form parses without dialect
support (unknown names become :class:`UnregisteredOp`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .attributes import (
    ArrayAttr,
    Attribute,
    BoolAttr,
    FunctionType,
    IndexType,
    IntegerAttr,
    IntegerType,
    StringAttr,
    SymbolRefAttr,
    TypeAttribute,
    UnitAttr,
)
from .block import Block, Region
from .location import SourceLoc
from .operation import Operation, UnregisteredOp
from .registry import CUSTOM_PARSERS, OP_REGISTRY, TYPE_PARSERS
from .ssa import SSAValue


class ParseError(Exception):
    """Raised on malformed IR text, with line/column context."""


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int
    column: int


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>[ \t\r]+)
  | (?P<COMMENT>//[^\n]*)
  | (?P<NL>\n)
  | (?P<ARROW>->)
  | (?P<STRING>"(?:[^"\\]|\\.)*")
  | (?P<PERCENT>%[A-Za-z0-9_]+)
  | (?P<AT>@[A-Za-z0-9_.$-]+)
  | (?P<CARET>\^[A-Za-z0-9_]*)
  | (?P<BANGID>![A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)*)
  | (?P<HASHID>\#[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)*)
  | (?P<INT>-?\d+)
  | (?P<ID>[A-Za-z_][A-Za-z0-9_.$]*)
  | (?P<PUNCT>[(){}\[\]<>=,:])
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    line, line_start = 1, 0
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            column = pos - line_start + 1
            raise ParseError(f"line {line}:{column}: unexpected character {text[pos]!r}")
        kind = match.lastgroup or ""
        value = match.group()
        if kind == "NL":
            line += 1
            line_start = match.end()
        elif kind not in ("WS", "COMMENT"):
            tokens.append(Token(kind, value, line, pos - line_start + 1))
        pos = match.end()
    tokens.append(Token("EOF", "", line, pos - line_start + 1))
    return tokens


class Parser:
    """Recursive-descent parser over the token stream.

    Value names are resolved through a stack of scopes; entering a region
    pushes a scope so names shadow correctly while enclosing definitions
    remain visible (matching MLIR's visibility rules for non-isolated ops).
    """

    def __init__(self, text: str, filename: str | None = None) -> None:
        self._tokens = tokenize(text)
        self._pos = 0
        self._scopes: list[dict[str, SSAValue]] = [{}]
        self._filename = filename

    # -- token access --------------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def peek(self, offset: int = 1) -> Token:
        i = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[i]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "EOF":
            self._pos += 1
        return token

    def error(self, message: str) -> ParseError:
        t = self.current
        return ParseError(f"line {t.line}:{t.column}: {message} (found {t.text!r})")

    def accept(self, text: str) -> bool:
        if self.current.text == text:
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        if self.current.text != text:
            raise self.error(f"expected {text!r}")
        return self.advance()

    def accept_kind(self, kind: str) -> Token | None:
        if self.current.kind == kind:
            return self.advance()
        return None

    def expect_kind(self, kind: str) -> Token:
        if self.current.kind != kind:
            raise self.error(f"expected {kind}")
        return self.advance()

    # -- scopes ------------------------------------------------------------

    def push_scope(self) -> None:
        self._scopes.append({})

    def pop_scope(self) -> None:
        self._scopes.pop()

    def define_value(self, name: str, value: SSAValue) -> None:
        value.name_hint = name
        self._scopes[-1][name] = value

    def lookup_value(self, name: str) -> SSAValue:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        raise self.error(f"use of undefined value %{name}")

    # -- common fragments --------------------------------------------------

    def parse_string(self) -> str:
        token = self.expect_kind("STRING")
        body = token.text[1:-1]
        return body.replace('\\"', '"').replace("\\\\", "\\").replace("\\n", "\n")

    def parse_int(self) -> int:
        return int(self.expect_kind("INT").text)

    def parse_value_use(self) -> SSAValue:
        token = self.expect_kind("PERCENT")
        return self.lookup_value(token.text[1:])

    def parse_value_use_list(self, terminator: str) -> list[SSAValue]:
        values: list[SSAValue] = []
        if self.current.text == terminator:
            return values
        values.append(self.parse_value_use())
        while self.accept(","):
            values.append(self.parse_value_use())
        return values

    # -- types -------------------------------------------------------------

    def parse_type(self) -> TypeAttribute:
        token = self.current
        if token.kind == "ID":
            if token.text == "index":
                self.advance()
                return IndexType()
            match = re.fullmatch(r"i(\d+)", token.text)
            if match:
                self.advance()
                return IntegerType(int(match.group(1)))
            raise self.error(f"unknown type '{token.text}'")
        if token.kind == "BANGID":
            dialect = token.text[1:].split(".", 1)[0]
            parser_fn = TYPE_PARSERS.get(dialect)
            if parser_fn is None:
                raise self.error(f"no type parser for dialect '{dialect}'")
            return parser_fn(self)
        if token.text == "(":
            return self.parse_function_type()
        raise self.error("expected a type")

    def parse_function_type(self) -> FunctionType:
        self.expect("(")
        inputs: list[TypeAttribute] = []
        if not self.accept(")"):
            inputs.append(self.parse_type())
            while self.accept(","):
                inputs.append(self.parse_type())
            self.expect(")")
        self.expect("->")
        results: list[TypeAttribute] = []
        if self.accept("("):
            if not self.accept(")"):
                results.append(self.parse_type())
                while self.accept(","):
                    results.append(self.parse_type())
                self.expect(")")
        else:
            results.append(self.parse_type())
        return FunctionType(tuple(inputs), tuple(results))

    def parse_type_list(self) -> list[TypeAttribute]:
        """Parse ``t`` or ``(t, t, ...)``."""
        types: list[TypeAttribute] = []
        if self.accept("("):
            if not self.accept(")"):
                types.append(self.parse_type())
                while self.accept(","):
                    types.append(self.parse_type())
                self.expect(")")
        else:
            types.append(self.parse_type())
        return types

    # -- attributes ------------------------------------------------------

    def parse_attribute(self) -> Attribute:
        token = self.current
        if token.kind == "STRING":
            return StringAttr(self.parse_string())
        if token.kind == "INT":
            value = self.parse_int()
            if self.accept(":"):
                return IntegerAttr(value, self.parse_type())
            return IntegerAttr(value)
        if token.kind == "AT":
            self.advance()
            return SymbolRefAttr(token.text[1:])
        if token.text == "true":
            self.advance()
            return BoolAttr(True)
        if token.text == "false":
            self.advance()
            return BoolAttr(False)
        if token.text == "unit":
            self.advance()
            return UnitAttr()
        if token.text == "[":
            self.advance()
            elements: list[Attribute] = []
            if not self.accept("]"):
                elements.append(self.parse_attribute())
                while self.accept(","):
                    elements.append(self.parse_attribute())
                self.expect("]")
            return ArrayAttr(tuple(elements))
        if token.kind == "HASHID":
            from .registry import ATTR_PARSERS

            dialect = token.text[1:].split(".", 1)[0]
            parser_fn = ATTR_PARSERS.get(dialect)
            if parser_fn is None:
                raise self.error(f"no attribute parser for dialect '{dialect}'")
            return parser_fn(self)
        if token.kind in ("ID", "BANGID") or token.text == "(":
            return self.parse_type()
        raise self.error("expected an attribute")

    def parse_attr_dict(self) -> dict[str, Attribute]:
        attrs: dict[str, Attribute] = {}
        if not self.accept("{"):
            return attrs
        if self.accept("}"):
            return attrs
        while True:
            key_token = self.current
            if key_token.kind not in ("ID", "STRING"):
                raise self.error("expected attribute name")
            key = self.parse_string() if key_token.kind == "STRING" else self.advance().text
            if self.accept("="):
                attrs[key] = self.parse_attribute()
            else:
                attrs[key] = UnitAttr()
            if not self.accept(","):
                break
        self.expect("}")
        return attrs

    # -- operations ------------------------------------------------------

    def parse_module(self) -> Operation:
        """Parse a whole input: a ``builtin.module`` or a bare op list."""
        from ..dialects.builtin import ModuleOp

        if self.current.text == "builtin.module":
            op = self.parse_operation()
            if self.current.kind != "EOF":
                raise self.error("unexpected trailing input")
            if not isinstance(op, ModuleOp):
                raise self.error("expected builtin.module at top level")
            return op
        block = Block()
        while self.current.kind != "EOF":
            block.add_op(self.parse_operation())
        module = ModuleOp.create()
        for op in list(block.ops):
            block.detach_op(op)
            module.body_block.add_op(op)
        return module

    def parse_operation(self) -> Operation:
        start = self.current
        result_names: list[str] = []
        if self.current.kind == "PERCENT":
            result_names.append(self.advance().text[1:])
            while self.accept(","):
                result_names.append(self.expect_kind("PERCENT").text[1:])
            self.expect("=")
        op = self._parse_op_body()
        # Nested ops got their own locations during the recursive parse;
        # only the op this call produced is still unlocated.
        if op.loc is None:
            op.loc = SourceLoc(start.line, start.column, self._filename)
        if result_names:
            if len(result_names) != len(op.results):
                raise self.error(
                    f"op '{op.name}' produces {len(op.results)} results, "
                    f"but {len(result_names)} names given"
                )
            for name, result in zip(result_names, op.results):
                self.define_value(name, result)
        return op

    def _parse_op_body(self) -> Operation:
        token = self.current
        if token.kind == "STRING":
            return self._parse_generic_op()
        if token.kind == "ID":
            custom = CUSTOM_PARSERS.get(token.text)
            if custom is not None:
                self.advance()
                op = custom(self)
                # Optional trailing attribute dictionary for annotations the
                # custom syntax does not carry (e.g. accfg.effects).  A bare
                # '{' can never start the next operation, so this is
                # unambiguous.
                if self.current.text == "{" and op.name != "builtin.module":
                    op.attributes.update(self.parse_attr_dict())
                return op
            raise self.error(f"unknown operation '{token.text}'")
        raise self.error("expected an operation")

    def _parse_generic_op(self) -> Operation:
        name = self.parse_string()
        self.expect("(")
        operands = self.parse_value_use_list(")")
        self.expect(")")
        attrs = self.parse_attr_dict()
        self.expect(":")
        func_type = self.parse_function_type()
        if len(func_type.inputs) != len(operands):
            raise self.error(
                f"op '{name}': {len(operands)} operands but "
                f"{len(func_type.inputs)} operand types"
            )
        regions: list[Region] = []
        while self.current.text == "{":
            regions.append(self.parse_region())
        op_class = OP_REGISTRY.get(name)
        if op_class is None:
            return UnregisteredOp(
                name,
                operands=operands,
                result_types=func_type.results,
                attributes=attrs,
                regions=regions,
            )
        op = object.__new__(op_class)
        Operation.__init__(
            op, operands=operands, result_types=func_type.results, attributes=attrs
        )
        for region in regions:
            op.add_region(region)
        return op

    def parse_region(
        self, entry_args: list[tuple[str, TypeAttribute]] | None = None
    ) -> Region:
        """Parse ``{ ... }``.

        ``entry_args`` pre-declares entry block arguments whose names come
        from the op's custom syntax (e.g. the induction variable of
        ``scf.for``); otherwise an optional ``^bb(...):`` header is parsed.
        """
        self.expect("{")
        self.push_scope()
        block = Block()
        if entry_args:
            for arg_name, arg_type in entry_args:
                arg = block.add_arg(arg_type, arg_name)
                self.define_value(arg_name, arg)
        elif self.current.kind == "CARET":
            self.advance()
            self.expect("(")
            if not self.accept(")"):
                while True:
                    arg_token = self.expect_kind("PERCENT")
                    self.expect(":")
                    arg_type = self.parse_type()
                    arg = block.add_arg(arg_type, arg_token.text[1:])
                    self.define_value(arg_token.text[1:], arg)
                    if not self.accept(","):
                        break
                self.expect(")")
            self.expect(":")
        while self.current.text != "}":
            block.add_op(self.parse_operation())
        self.expect("}")
        self.pop_scope()
        return Region([block])


def parse_module(text: str, filename: str | None = None) -> Operation:
    """Parse IR text into a ``builtin.module`` op."""
    # Importing the dialects registers ops, custom parsers, and type parsers.
    from .. import dialects  # noqa: F401

    return Parser(text, filename).parse_module()


def parse_operation(text: str, filename: str | None = None) -> Operation:
    """Parse a single operation from text (dialects must self-register)."""
    from .. import dialects  # noqa: F401

    parser = Parser(text, filename)
    op = parser.parse_operation()
    if parser.current.kind != "EOF":
        raise parser.error("unexpected trailing input")
    return op
