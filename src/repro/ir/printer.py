"""Textual IR printer.

Produces an MLIR-flavoured textual form that the companion parser
(:mod:`repro.ir.parser`) reads back, enabling lossless round-trips for every
registered operation.  Ops may define ``print_custom(printer)`` for pretty
syntax; anything else is printed in the generic form::

    %0, %1 = "dialect.op"(%a, %b) {attr = value} : (i64, i64) -> (i64, i64) { ...regions... }
"""

from __future__ import annotations

import re

from .attributes import (
    ArrayAttr,
    Attribute,
    BoolAttr,
    DictAttr,
    FunctionType,
    IntegerAttr,
    StringAttr,
    SymbolRefAttr,
    TypeAttribute,
    UnitAttr,
)
from .block import Block, Region
from .operation import Operation, UnregisteredOp
from .ssa import SSAValue

_VALID_NAME = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class Printer:
    """Stateful printer assigning stable ``%`` names to SSA values."""

    def __init__(self, indent_width: int = 2) -> None:
        self._parts: list[str] = []
        self._indent = 0
        self._indent_width = indent_width
        self._names: dict[SSAValue, str] = {}
        self._used_names: set[str] = set()
        self._counter = 0

    # -- low-level emission ----------------------------------------------

    def emit(self, text: str) -> None:
        self._parts.append(text)

    def newline(self) -> None:
        self._parts.append("\n" + " " * (self._indent * self._indent_width))

    def result(self) -> str:
        return "".join(self._parts)

    # -- value naming --------------------------------------------------------

    def assign_name(self, value: SSAValue) -> str:
        if value in self._names:
            return self._names[value]
        hint = value.name_hint
        if hint and _VALID_NAME.match(hint):
            name = hint
            suffix = 0
            while name in self._used_names:
                suffix += 1
                name = f"{hint}_{suffix}"
        else:
            name = str(self._counter)
            self._counter += 1
        self._names[value] = name
        self._used_names.add(name)
        return name

    def print_value(self, value: SSAValue) -> None:
        self.emit(f"%{self.assign_name(value)}")

    def print_value_list(self, values) -> None:
        for i, value in enumerate(values):
            if i:
                self.emit(", ")
            self.print_value(value)

    # -- attributes ------------------------------------------------------

    def print_attribute(self, attr: Attribute) -> None:
        self.emit(format_attribute(attr))

    def print_attr_dict(self, attrs: dict[str, Attribute]) -> None:
        if not attrs:
            return
        entries = []
        for key, value in attrs.items():
            if isinstance(value, UnitAttr):
                entries.append(key)
            else:
                entries.append(f"{key} = {format_attribute(value)}")
        self.emit(" {" + ", ".join(entries) + "}")

    # -- operations ------------------------------------------------------

    def print_op(self, op: Operation) -> None:
        if op.results:
            self.print_value_list(op.results)
            self.emit(" = ")
        custom = getattr(op, "print_custom", None)
        if custom is not None:
            custom(self)
            extras = {
                key: value
                for key, value in op.attributes.items()
                if key not in op.custom_printed_attrs
            }
            self.print_attr_dict(extras)
        else:
            self._print_generic(op)

    def _print_generic(self, op: Operation) -> None:
        name = op.op_name if isinstance(op, UnregisteredOp) else op.name
        self.emit(f'"{name}"(')
        self.print_value_list(op.operands)
        self.emit(")")
        self.print_attr_dict(op.attributes)
        self.emit(" : (")
        self.emit(", ".join(str(o.type) for o in op.operands))
        self.emit(") -> (")
        self.emit(", ".join(str(r.type) for r in op.results))
        self.emit(")")
        for region in op.regions:
            self.emit(" ")
            self.print_region(region)

    def print_region(self, region: Region) -> None:
        self.emit("{")
        self._indent += 1
        for block in region.blocks:
            self.print_block(block, explicit_header=len(region.blocks) > 1 or bool(block.args))
        self._indent -= 1
        self.newline()
        self.emit("}")

    def print_block(self, block: Block, explicit_header: bool) -> None:
        if explicit_header:
            self.newline()
            self.emit("^bb(")
            for i, arg in enumerate(block.args):
                if i:
                    self.emit(", ")
                self.print_value(arg)
                self.emit(f" : {arg.type}")
            self.emit("):")
        for op in block.ops:
            self.newline()
            self.print_op(op)


def format_attribute(attr: Attribute) -> str:
    """Render an attribute to its textual form."""
    if isinstance(attr, IntegerAttr):
        return f"{attr.value} : {attr.type}"
    if isinstance(attr, BoolAttr):
        return "true" if attr.value else "false"
    if isinstance(attr, StringAttr):
        return f'"{attr.value}"'
    if isinstance(attr, SymbolRefAttr):
        return f"@{attr.name}"
    if isinstance(attr, ArrayAttr):
        return "[" + ", ".join(format_attribute(e) for e in attr.elements) + "]"
    if isinstance(attr, DictAttr):
        inner = ", ".join(f"{k} = {format_attribute(v)}" for k, v in attr.entries)
        return "{" + inner + "}"
    if isinstance(attr, UnitAttr):
        return "unit"
    if isinstance(attr, FunctionType):
        return str(attr)
    if isinstance(attr, TypeAttribute):
        return str(attr)
    return str(attr)


def print_operation(op: Operation) -> str:
    """Print a single operation (with nested regions) to a string."""
    printer = Printer()
    printer.print_op(op)
    return printer.result()
