"""Textual IR printer.

Produces an MLIR-flavoured textual form that the companion parser
(:mod:`repro.ir.parser`) reads back, enabling lossless round-trips for every
registered operation.  Ops may define ``print_custom(printer)`` for pretty
syntax; anything else is printed in the generic form::

    %0, %1 = "dialect.op"(%a, %b) {attr = value} : (i64, i64) -> (i64, i64) { ...regions... }
"""

from __future__ import annotations

import re

from .attributes import (
    ArrayAttr,
    Attribute,
    BoolAttr,
    DictAttr,
    FunctionType,
    IntegerAttr,
    StringAttr,
    SymbolRefAttr,
    TypeAttribute,
    UnitAttr,
)
from .block import Block, Region
from .operation import Operation, UnregisteredOp
from .ssa import SSAValue

_VALID_NAME = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class Printer:
    """Stateful printer assigning stable ``%`` names to SSA values."""

    def __init__(self, indent_width: int = 2) -> None:
        self._parts: list[str] = []
        self._indent = 0
        self._indent_width = indent_width
        self._names: dict[SSAValue, str] = {}
        self._used_names: set[str] = set()
        self._counter = 0

    # -- low-level emission ----------------------------------------------

    def emit(self, text: str) -> None:
        self._parts.append(text)

    def newline(self) -> None:
        self._parts.append("\n" + " " * (self._indent * self._indent_width))

    def result(self) -> str:
        return "".join(self._parts)

    # -- value naming --------------------------------------------------------

    def assign_name(self, value: SSAValue) -> str:
        if value in self._names:
            return self._names[value]
        hint = value.name_hint
        if hint and _VALID_NAME.match(hint):
            name = hint
            suffix = 0
            while name in self._used_names:
                suffix += 1
                name = f"{hint}_{suffix}"
        else:
            name = str(self._counter)
            self._counter += 1
        self._names[value] = name
        self._used_names.add(name)
        return name

    def print_value(self, value: SSAValue) -> None:
        self.emit(f"%{self.assign_name(value)}")

    def print_value_list(self, values) -> None:
        for i, value in enumerate(values):
            if i:
                self.emit(", ")
            self.print_value(value)

    # -- attributes ------------------------------------------------------

    def print_attribute(self, attr: Attribute) -> None:
        self.emit(format_attribute(attr))

    def print_attr_dict(self, attrs: dict[str, Attribute]) -> None:
        if not attrs:
            return
        entries = []
        for key, value in attrs.items():
            if isinstance(value, UnitAttr):
                entries.append(key)
            else:
                entries.append(f"{key} = {format_attribute(value)}")
        self.emit(" {" + ", ".join(entries) + "}")

    # -- operations ------------------------------------------------------

    def print_op(self, op: Operation) -> None:
        if op.results:
            self.print_value_list(op.results)
            self.emit(" = ")
        custom = getattr(op, "print_custom", None)
        if custom is not None:
            custom(self)
            extras = {
                key: value
                for key, value in op.attributes.items()
                if key not in op.custom_printed_attrs
            }
            self.print_attr_dict(extras)
        else:
            self._print_generic(op)

    def _print_generic(self, op: Operation) -> None:
        name = op.op_name if isinstance(op, UnregisteredOp) else op.name
        self.emit(f'"{name}"(')
        self.print_value_list(op.operands)
        self.emit(")")
        self.print_attr_dict(op.attributes)
        self.emit(" : (")
        self.emit(", ".join(str(o.type) for o in op.operands))
        self.emit(") -> (")
        self.emit(", ".join(str(r.type) for r in op.results))
        self.emit(")")
        for region in op.regions:
            self.emit(" ")
            self.print_region(region)

    def print_region(self, region: Region) -> None:
        self.emit("{")
        self._indent += 1
        for block in region.blocks:
            self.print_block(block, explicit_header=len(region.blocks) > 1 or bool(block.args))
        self._indent -= 1
        self.newline()
        self.emit("}")

    def print_block(self, block: Block, explicit_header: bool) -> None:
        if explicit_header:
            self.newline()
            self.emit("^bb(")
            for i, arg in enumerate(block.args):
                if i:
                    self.emit(", ")
                self.print_value(arg)
                self.emit(f" : {arg.type}")
            self.emit("):")
        for op in block.ops:
            self.newline()
            self.print_op(op)


def format_attribute(attr: Attribute) -> str:
    """Render an attribute to its textual form."""
    if isinstance(attr, IntegerAttr):
        return f"{attr.value} : {attr.type}"
    if isinstance(attr, BoolAttr):
        return "true" if attr.value else "false"
    if isinstance(attr, StringAttr):
        return f'"{attr.value}"'
    if isinstance(attr, SymbolRefAttr):
        return f"@{attr.name}"
    if isinstance(attr, ArrayAttr):
        return "[" + ", ".join(format_attribute(e) for e in attr.elements) + "]"
    if isinstance(attr, DictAttr):
        inner = ", ".join(f"{k} = {format_attribute(v)}" for k, v in attr.entries)
        return "{" + inner + "}"
    if isinstance(attr, UnitAttr):
        return "unit"
    if isinstance(attr, FunctionType):
        return str(attr)
    if isinstance(attr, TypeAttribute):
        return str(attr)
    return str(attr)


def print_operation(op: Operation) -> str:
    """Print a single operation (with nested regions) to a string."""
    printer = Printer()
    printer.print_op(op)
    return printer.result()


def fingerprint_operation(root: Operation) -> str:
    """A compact, structurally lossless serialization for hashing.

    Produces the same string for two modules iff the pretty printer would
    (ops, operand/result wiring, attributes, types, and region structure all
    serialize; value names come from a plain visit counter), but skips the
    name-hint uniquing and indentation work that makes :class:`Printer`
    expensive — this is the hot fingerprint path of the differential
    oracles and the compiled-trace cache.
    """
    parts: list[str] = []
    names: dict[SSAValue, str] = {}
    type_strs: dict[Attribute, str] = {}
    # Keyed by id(): attributes stay alive for the duration of the call (the
    # module references them), and value-equal attributes format identically
    # anyway, so an id-keyed memo is a pure cache.
    attr_strs: dict[int, str] = {}

    def value_name(value: SSAValue) -> str:
        name = names.get(value)
        if name is None:
            name = str(len(names))
            names[value] = name
        return name

    def type_str(type_attr) -> str:
        text = type_strs.get(type_attr)
        if text is None:
            text = str(type_attr)
            type_strs[type_attr] = text
        return text

    def attr_str(attr) -> str:
        text = attr_strs.get(id(attr))
        if text is None:
            text = format_attribute(attr)
            attr_strs[id(attr)] = text
        return text

    def emit_op(op: Operation) -> None:
        operands = op._operands
        if op.results:
            parts.append(",".join(value_name(r) for r in op.results))
            parts.append("=")
        parts.append(op.op_name if isinstance(op, UnregisteredOp) else op.name)
        parts.append("(" + ",".join(value_name(o) for o in operands) + ")")
        if op.attributes:
            parts.append(
                "{"
                + ",".join(
                    f"{key}={attr_str(value)}"
                    for key, value in op.attributes.items()
                )
                + "}"
            )
        parts.append(
            ":"
            + ",".join(type_str(o.type) for o in operands)
            + ">"
            + ",".join(type_str(r.type) for r in op.results)
        )
        for region in op.regions:
            parts.append("[")
            for block in region.blocks:
                parts.append(
                    "^("
                    + ",".join(
                        value_name(arg) + ":" + type_str(arg.type)
                        for arg in block.args
                    )
                    + ")"
                )
                for nested in block.ops:
                    emit_op(nested)
                    parts.append(";")
            parts.append("]")

    emit_op(root)
    return "".join(parts)


#: Value-keyed attribute/type interning table for :func:`structural_key`.
#: Ids are monotonically assigned and never reused (clearing would let a
#: fresh attribute alias the id of an old one and corrupt long-lived caches
#: keyed on structural keys).  Bounded in practice by the number of distinct
#: attribute values a process ever creates.
_ATOM_IDS: dict[Attribute, int] = {}


def structural_key(root: Operation) -> tuple:
    """A hashable structural key for caching, far cheaper than text.

    Two operations get equal keys iff :func:`fingerprint_operation` would
    serialize them identically (same op structure, SSA wiring, attributes,
    types, and region nesting).  Instead of formatting strings, attributes
    and types are interned to small ints via a value-keyed table, so the
    key is a flat tuple of ints and interned op-name strings — tuple
    hashing and equality are C-speed.  This is the hot cache-key path of
    the differential oracles and the compiled-trace cache; keys are exact
    (dict equality compares the full tuple), not lossy hashes.
    """
    atom_ids = _ATOM_IDS
    parts: list = []
    append = parts.append
    names: dict[SSAValue, int] = {}

    def atom_id(attr) -> int:
        ident = atom_ids.get(attr)
        if ident is None:
            ident = len(atom_ids)
            atom_ids[attr] = ident
        return ident

    def value_num(value: SSAValue) -> int:
        num = names.get(value)
        if num is None:
            num = len(names)
            names[value] = num
        return num

    def emit(op: Operation) -> None:
        for result in op.results:
            append(value_num(result))
        append(op.op_name if isinstance(op, UnregisteredOp) else op.name)
        for operand in op._operands:
            append(value_num(operand))
            append(atom_id(operand.type))
        append(-1)
        if op.attributes:
            for key, value in op.attributes.items():
                append(key)
                append(atom_id(value))
        append(-2)
        for result in op.results:
            append(atom_id(result.type))
        for region in op.regions:
            append(-3)
            for block in region.blocks:
                append(-4)
                for arg in block.args:
                    append(value_num(arg))
                    append(atom_id(arg.type))
                append(-5)
                for nested in block.ops:
                    emit(nested)
            append(-6)

    emit(root)
    return tuple(parts)
