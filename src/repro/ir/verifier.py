"""IR verification.

Checks structural invariants that every pass relies on:

* def-use consistency (operand use lists match actual operand slots),
* dominance inside blocks (a value is defined before it is used),
* visibility across regions (an op may use values from enclosing regions
  unless some ancestor is ``IsolatedFromAbove``),
* terminator placement, and
* per-op invariants via each op's ``verify_`` hook.

Verification sits on the hot path of every pass pipeline, so the walk is
done once (the op list is reused by all three phases) and per-block op
positions are computed once per block instead of re-scanning the block for
every dominance query.
"""

from __future__ import annotations

from .block import Block, Region
from .operation import Operation, VerifyError
from .ssa import BlockArgument, OpResult, SSAValue, Use
from .traits import IsolatedFromAbove, IsTerminator

_ISOLATED = IsolatedFromAbove()
_TERMINATOR = IsTerminator()


_BASE_VERIFY = Operation.verify_


def verify_operation(root: Operation) -> None:
    """Verify ``root`` and all nested operations; raises :class:`VerifyError`.

    All per-op checks (def-use, dominance, structure, the op's ``verify_``
    hook) run in a single fused walk: verification follows every changed
    pass, so one traversal instead of three is a measurable share of
    pipeline wall time.
    """
    order: dict[Block, dict[Operation, int]] = {}
    for op in root.walk_list():
        for i, operand in enumerate(op._operands):
            # Identity scan instead of `Use(op, i) in operand.uses`: use
            # sets are tiny and the scan avoids a Use allocation + tuple
            # hash per operand on every verification.
            for use in operand.uses:
                if use.operation is op and use.index == i:
                    break
            else:
                raise VerifyError(
                    f"def-use inconsistency: '{op.name}' operand #{i} is not "
                    f"recorded as a use of its value"
                )
            # Fast path for the dominant case — operand defined by an op in
            # the user's own block; everything else (block args, values from
            # enclosing regions) goes through the full visibility walk.
            if isinstance(operand, OpResult):
                def_op = operand.op
                def_block = def_op.parent
                if def_block is not None and def_block is op.parent:
                    positions = _block_order(def_block, order)
                    pos_def = positions.get(def_op)
                    pos_user = positions.get(op)
                    if (
                        def_op is op
                        or pos_def is None
                        or pos_user is None
                        or pos_def >= pos_user
                    ):
                        raise VerifyError(_located(
                            op,
                            f"operand #{i} of '{op.name}' violates "
                            "dominance/visibility",
                        ))
                    continue
            if not _value_visible(operand, op, order):
                raise VerifyError(_located(
                    op, f"operand #{i} of '{op.name}' violates dominance/visibility"
                ))
        if op.regions:
            for region in op.regions:
                if region.parent is not op:
                    raise VerifyError(f"region of '{op.name}' has wrong parent link")
                for block in region.blocks:
                    if block.parent is not region:
                        raise VerifyError(
                            f"block in '{op.name}' has wrong parent link"
                        )
                    for nested in block.ops:
                        if nested.parent is not block:
                            raise VerifyError(
                                f"op '{nested.name}' has wrong parent block link"
                            )
                    _verify_terminator(block)
        if type(op).verify_ is not _BASE_VERIFY:
            try:
                op.verify_()
            except VerifyError as err:
                raise VerifyError(_located(op, str(err))) from None


def _located(op: Operation, message: str) -> str:
    """Prefix a verifier message with the op's source location, if known."""
    if op.loc is not None:
        return f"{op.loc}: {message}"
    return message


def _verify_structure(ops: list[Operation]) -> None:
    for op in ops:
        for i, operand in enumerate(op.operands):
            if Use(op, i) not in operand.uses:
                raise VerifyError(
                    f"def-use inconsistency: '{op.name}' operand #{i} is not "
                    f"recorded as a use of its value"
                )
        for region in op.regions:
            if region.parent is not op:
                raise VerifyError(f"region of '{op.name}' has wrong parent link")
            for block in region.blocks:
                if block.parent is not region:
                    raise VerifyError(f"block in '{op.name}' has wrong parent link")
                for nested in block.ops:
                    if nested.parent is not block:
                        raise VerifyError(
                            f"op '{nested.name}' has wrong parent block link"
                        )
                _verify_terminator(block)


def _verify_terminator(block: Block) -> None:
    # A terminator anywhere but the last slot is an error; the last slot may
    # hold anything (blocks without terminators are allowed pre-lowering).
    for op in block.ops[:-1]:
        if op.is_terminator:
            raise VerifyError(
                f"terminator '{op.name}' is not the last op in its block"
            )


def _verify_dominance(ops: list[Operation]) -> None:
    """Check that every use is dominated by its definition.

    With single-block regions and structured control flow, dominance reduces
    to: the defining op appears earlier in the same block, or the definition
    (op result or block argument) lives in a block that is an ancestor of the
    user — without crossing an ``IsolatedFromAbove`` boundary.
    """
    order: dict[Block, dict[Operation, int]] = {}
    for op in ops:
        for i, operand in enumerate(op.operands):
            if not _value_visible(operand, op, order):
                raise VerifyError(_located(
                    op, f"operand #{i} of '{op.name}' violates dominance/visibility"
                ))


def _block_order(block: Block, order: dict[Block, dict[Operation, int]]) -> dict:
    positions = order.get(block)
    if positions is None:
        positions = {op: i for i, op in enumerate(block.ops)}
        order[block] = positions
    return positions


def _value_visible(
    value: SSAValue,
    user: Operation,
    order: dict[Block, dict[Operation, int]],
) -> bool:
    # An op's operands are read in its *parent's* context, so the user's own
    # IsolatedFromAbove trait is irrelevant; but once we walk up past an
    # ancestor, finding the definition outside that ancestor while the
    # ancestor is isolated means the value illegally crosses its boundary.
    if isinstance(value, OpResult):
        def_op = value.op
        def_block = def_op.parent
        if def_block is None:
            return False
        current: Operation | None = user
        while current is not None:
            if current is not user and current.has_trait(_ISOLATED):
                return False
            if current.parent is def_block:
                anchor = current
                if def_op is anchor:
                    return False
                positions = _block_order(def_block, order)
                try:
                    return positions[def_op] < positions[anchor]
                except KeyError:
                    return False
            current = current.parent_op
        return False
    if isinstance(value, BlockArgument):
        def_block = value.block
        current = user
        while current is not None:
            if current is not user and current.has_trait(_ISOLATED):
                return False
            if current.parent is def_block:
                return True
            current = current.parent_op
        return False
    return False


def verify_region_has_single_block(op: Operation, region: Region) -> None:
    if len(region.blocks) != 1:
        raise VerifyError(f"'{op.name}' expects a single-block region")
