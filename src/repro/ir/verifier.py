"""IR verification.

Checks structural invariants that every pass relies on:

* def-use consistency (operand use lists match actual operand slots),
* dominance inside blocks (a value is defined before it is used),
* visibility across regions (an op may use values from enclosing regions
  unless some ancestor is ``IsolatedFromAbove``),
* terminator placement, and
* per-op invariants via each op's ``verify_`` hook.

Verification sits on the hot path of every pass pipeline, so the walk is
done once (the op list is reused by all three phases) and per-block op
positions are computed once per block instead of re-scanning the block for
every dominance query.
"""

from __future__ import annotations

from .block import Block, Region
from .operation import Operation, VerifyError
from .ssa import BlockArgument, OpResult, SSAValue, Use
from .traits import IsolatedFromAbove, IsTerminator

_ISOLATED = IsolatedFromAbove()
_TERMINATOR = IsTerminator()


def verify_operation(root: Operation) -> None:
    """Verify ``root`` and all nested operations; raises :class:`VerifyError`."""
    ops = list(root.walk())
    _verify_structure(ops)
    _verify_dominance(ops)
    for op in ops:
        try:
            op.verify_()
        except VerifyError as err:
            raise VerifyError(_located(op, str(err))) from None


def _located(op: Operation, message: str) -> str:
    """Prefix a verifier message with the op's source location, if known."""
    if op.loc is not None:
        return f"{op.loc}: {message}"
    return message


def _verify_structure(ops: list[Operation]) -> None:
    for op in ops:
        for i, operand in enumerate(op.operands):
            if Use(op, i) not in operand.uses:
                raise VerifyError(
                    f"def-use inconsistency: '{op.name}' operand #{i} is not "
                    f"recorded as a use of its value"
                )
        for region in op.regions:
            if region.parent is not op:
                raise VerifyError(f"region of '{op.name}' has wrong parent link")
            for block in region.blocks:
                if block.parent is not region:
                    raise VerifyError(f"block in '{op.name}' has wrong parent link")
                for nested in block.ops:
                    if nested.parent is not block:
                        raise VerifyError(
                            f"op '{nested.name}' has wrong parent block link"
                        )
                _verify_terminator(block)


def _verify_terminator(block: Block) -> None:
    for i, op in enumerate(block.ops):
        if op.has_trait(_TERMINATOR) and i != len(block.ops) - 1:
            raise VerifyError(
                f"terminator '{op.name}' is not the last op in its block"
            )


def _verify_dominance(ops: list[Operation]) -> None:
    """Check that every use is dominated by its definition.

    With single-block regions and structured control flow, dominance reduces
    to: the defining op appears earlier in the same block, or the definition
    (op result or block argument) lives in a block that is an ancestor of the
    user — without crossing an ``IsolatedFromAbove`` boundary.
    """
    order: dict[Block, dict[Operation, int]] = {}
    for op in ops:
        for i, operand in enumerate(op.operands):
            if not _value_visible(operand, op, order):
                raise VerifyError(_located(
                    op, f"operand #{i} of '{op.name}' violates dominance/visibility"
                ))


def _block_order(block: Block, order: dict[Block, dict[Operation, int]]) -> dict:
    positions = order.get(block)
    if positions is None:
        positions = {op: i for i, op in enumerate(block.ops)}
        order[block] = positions
    return positions


def _value_visible(
    value: SSAValue,
    user: Operation,
    order: dict[Block, dict[Operation, int]],
) -> bool:
    # An op's operands are read in its *parent's* context, so the user's own
    # IsolatedFromAbove trait is irrelevant; but once we walk up past an
    # ancestor, finding the definition outside that ancestor while the
    # ancestor is isolated means the value illegally crosses its boundary.
    if isinstance(value, OpResult):
        def_op = value.op
        def_block = def_op.parent
        if def_block is None:
            return False
        current: Operation | None = user
        while current is not None:
            if current is not user and current.has_trait(_ISOLATED):
                return False
            if current.parent is def_block:
                anchor = current
                if def_op is anchor:
                    return False
                positions = _block_order(def_block, order)
                try:
                    return positions[def_op] < positions[anchor]
                except KeyError:
                    return False
            current = current.parent_op
        return False
    if isinstance(value, BlockArgument):
        def_block = value.block
        current = user
        while current is not None:
            if current is not user and current.has_trait(_ISOLATED):
                return False
            if current.parent is def_block:
                return True
            current = current.parent_op
        return False
    return False


def verify_region_has_single_block(op: Operation, region: Region) -> None:
    if len(region.blocks) != 1:
        raise VerifyError(f"'{op.name}' expects a single-block region")
