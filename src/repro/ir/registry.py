"""Registries connecting op/type names to their Python classes.

Dialects register their operations here so the parser can resolve op names
from text and so generic passes can instantiate ops by name.  Custom textual
syntax (printing is handled by ``print_custom`` methods on ops; parsing by
functions registered with :func:`register_custom_parser`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from .attributes import TypeAttribute
    from .operation import Operation
    from .parser import Parser

OP_REGISTRY: dict[str, type["Operation"]] = {}
CUSTOM_PARSERS: dict[str, Callable[["Parser"], "Operation"]] = {}
TYPE_PARSERS: dict[str, Callable[["Parser"], "TypeAttribute"]] = {}
ATTR_PARSERS: dict[str, Callable[["Parser"], object]] = {}


def register_attr_parser(prefix: str):
    """Decorator registering a parser for dialect attributes ``#prefix…``."""

    def decorator(fn: Callable[["Parser"], object]):
        ATTR_PARSERS[prefix] = fn
        return fn

    return decorator


def register_op(cls: type["Operation"]) -> type["Operation"]:
    """Class decorator registering an operation under its ``name``."""
    existing = OP_REGISTRY.get(cls.name)
    if existing is not None and existing is not cls:
        raise ValueError(f"op name '{cls.name}' registered twice")
    OP_REGISTRY[cls.name] = cls
    return cls


def register_custom_parser(
    op_name: str,
) -> Callable[[Callable[["Parser"], "Operation"]], Callable[["Parser"], "Operation"]]:
    """Decorator registering a custom-syntax parser for ``op_name``."""

    def decorator(fn: Callable[["Parser"], "Operation"]):
        CUSTOM_PARSERS[op_name] = fn
        return fn

    return decorator


def register_type_parser(
    prefix: str,
) -> Callable[[Callable[["Parser"], "TypeAttribute"]], Callable[["Parser"], "TypeAttribute"]]:
    """Decorator registering a parser for dialect types ``!prefix.…``."""

    def decorator(fn: Callable[["Parser"], "TypeAttribute"]):
        TYPE_PARSERS[prefix] = fn
        return fn

    return decorator
