"""IR construction helper.

The :class:`Builder` maintains an insertion point (a block plus position) and
inserts operations there, mirroring ``mlir::OpBuilder``.  Workload generators
and lowering passes use it to emit IR without manual index bookkeeping.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from .block import Block
from .operation import IRError, Operation


class InsertPoint:
    """A position inside a block where new ops are inserted."""

    __slots__ = ("block", "index")

    def __init__(self, block: Block, index: int | None = None) -> None:
        self.block = block
        self.index = len(block.ops) if index is None else index

    @staticmethod
    def at_end(block: Block) -> "InsertPoint":
        return InsertPoint(block)

    @staticmethod
    def at_start(block: Block) -> "InsertPoint":
        return InsertPoint(block, 0)

    @staticmethod
    def before(op: Operation) -> "InsertPoint":
        if op.parent is None:
            raise IRError("op has no parent block")
        return InsertPoint(op.parent, op.parent.index_of(op))

    @staticmethod
    def after(op: Operation) -> "InsertPoint":
        if op.parent is None:
            raise IRError("op has no parent block")
        return InsertPoint(op.parent, op.parent.index_of(op) + 1)


class Builder:
    """Inserts operations at a movable insertion point."""

    def __init__(self, insert_point: InsertPoint | None = None) -> None:
        self._insert_point = insert_point

    @staticmethod
    def at_end(block: Block) -> "Builder":
        return Builder(InsertPoint.at_end(block))

    @staticmethod
    def at_start(block: Block) -> "Builder":
        return Builder(InsertPoint.at_start(block))

    @property
    def insert_point(self) -> InsertPoint:
        if self._insert_point is None:
            raise IRError("builder has no insertion point set")
        return self._insert_point

    @insert_point.setter
    def insert_point(self, point: InsertPoint) -> None:
        self._insert_point = point

    def insert(self, op: Operation) -> Operation:
        """Insert ``op`` at the current point and advance past it."""
        point = self.insert_point
        point.block.insert_op_at(point.index, op)
        point.index += 1
        return op

    def insert_all(self, ops: list[Operation]) -> list[Operation]:
        for op in ops:
            self.insert(op)
        return ops

    @contextmanager
    def at(self, point: InsertPoint) -> Iterator["Builder"]:
        """Temporarily move the insertion point."""
        saved = self._insert_point
        self._insert_point = point
        try:
            yield self
        finally:
            self._insert_point = saved
