"""The :class:`Operation` base class.

An operation is the unit of computation in the IR: it reads SSA operands,
produces SSA results, carries a dictionary of attributes, and may contain
nested regions.  Concrete ops subclass :class:`Operation`, set the class-level
``name`` (``"dialect.opname"``), and usually add typed accessors.

The operand list is managed exclusively through :meth:`set_operand`,
:meth:`set_operands` and friends so that def-use chains stay consistent —
direct mutation of ``_operands`` would corrupt use lists.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Sequence

from .attributes import Attribute, TypeAttribute
from .ssa import OpResult, SSAValue, Use
from .traits import IsTerminator, OpTrait, Pure

if TYPE_CHECKING:  # pragma: no cover
    from .block import Block, Region
    from .location import SourceLoc


_IS_TERMINATOR = IsTerminator()
_PURE = Pure()

#: lazily bound by :meth:`Operation.clone` (module-level import would cycle)
_BLOCK_CLS = None
_REGION_CLS = None


class IRError(Exception):
    """Raised on malformed IR manipulations."""


class VerifyError(IRError):
    """Raised when IR fails verification."""


class Operation:
    """Base class of all operations."""

    name: str = "builtin.unregistered"
    traits: frozenset[OpTrait] = frozenset()
    #: attribute names rendered by the op's custom syntax; any *other*
    #: attribute (e.g. an ``accfg.effects`` annotation) is printed as a
    #: trailing ``{...}`` dictionary so round-trips stay lossless
    custom_printed_attrs: frozenset[str] = frozenset()
    #: trait flags as plain class attributes (see __init_subclass__)
    is_terminator: bool = False
    is_pure: bool = False

    __slots__ = ("_operands", "results", "attributes", "regions", "parent", "loc")

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        cls.is_terminator = _IS_TERMINATOR in cls.traits
        cls.is_pure = _PURE in cls.traits

    def __init__(
        self,
        operands: Sequence[SSAValue] = (),
        result_types: Sequence[TypeAttribute] = (),
        attributes: dict[str, Attribute] | None = None,
        regions: Sequence["Region"] = (),
    ) -> None:
        #: where this op came from in textual IR, if parsed (see location.py)
        self.loc: "SourceLoc | None" = None
        self._operands: list[SSAValue] = []
        self.results: list[OpResult] = [
            OpResult(t, self, i) for i, t in enumerate(result_types)
        ]
        self.attributes: dict[str, Attribute] = (
            dict(attributes) if attributes else {}
        )
        self.regions: list[Region] = []
        self.parent: Block | None = None
        for i, operand in enumerate(operands):
            self._operands.append(operand)
            operand.add_use(Use(self, i))
        for region in regions:
            self.add_region(region)

    # -- operands ------------------------------------------------------------

    @property
    def operands(self) -> tuple[SSAValue, ...]:
        return tuple(self._operands)

    def set_operand(self, index: int, value: SSAValue) -> None:
        """Replace operand ``index`` with ``value``, updating use lists."""
        old = self._operands[index]
        old.remove_use_of(self, index)
        self._operands[index] = value
        value.add_use(Use(self, index))

    def set_operands(self, values: Sequence[SSAValue]) -> None:
        """Replace the whole operand list (lengths may differ)."""
        for i, old in enumerate(self._operands):
            old.remove_use_of(self, i)
        self._operands = list(values)
        for i, new in enumerate(self._operands):
            new.add_use(Use(self, i))

    def drop_all_references(self) -> None:
        """Remove this op's reads of its operands (used before erasing)."""
        for i, old in enumerate(self._operands):
            old.remove_use_of(self, i)
        self._operands = []
        for region in self.regions:
            for block in region.blocks:
                for op in list(block.ops):
                    op.drop_all_references()

    # -- regions ---------------------------------------------------------

    def add_region(self, region: "Region") -> None:
        region.parent = self
        self.regions.append(region)

    @property
    def parent_op(self) -> "Operation | None":
        if self.parent is None:
            return None
        region = self.parent.parent
        return region.parent if region is not None else None

    def is_ancestor_of(self, other: "Operation") -> bool:
        """True if ``other`` is nested (transitively) inside this op."""
        current = other.parent_op
        while current is not None:
            if current is self:
                return True
            current = current.parent_op
        return False

    # -- structural helpers ----------------------------------------------

    def detach(self) -> "Operation":
        """Remove from the parent block without touching uses."""
        if self.parent is not None:
            self.parent.detach_op(self)
        return self

    def erase(self, safe: bool = True) -> None:
        """Detach and delete this operation.

        With ``safe=True`` (default) raises if any result still has uses.
        """
        if safe:
            for result in self.results:
                if result.has_uses:
                    raise IRError(
                        f"cannot erase '{self.name}': result #{result.index} "
                        f"still has {len(result.uses)} use(s)"
                    )
        self.detach()
        self.drop_all_references()

    def walk(self, reverse: bool = False) -> Iterator["Operation"]:
        """Yield this op and all nested ops, pre-order.

        Iterative (explicit stack) rather than recursive: the walk sits on
        the hot path of the verifier, lints, and every pass, and nested
        ``yield from`` generators pay a frame per nesting level per item.
        Children are snapshotted when their parent is yielded, so erasing
        an op while walking it (the common collect-then-mutate idiom) is
        safe.
        """
        stack = [self]
        while stack:
            op = stack.pop()
            yield op
            if not op.regions:
                continue
            children: list[Operation] = []
            regions = reversed(op.regions) if reverse else op.regions
            for region in regions:
                blocks = reversed(region.blocks) if reverse else region.blocks
                for block in blocks:
                    ops = block.ops
                    children.extend(reversed(ops) if reverse else ops)
            children.reverse()
            stack.extend(children)

    def walk_list(self) -> "list[Operation]":
        """Pre-order op list, same order as :meth:`walk`.

        Materialized variant for hot consumers (verifier, pattern-driver
        seeding, pass-level op collection).  Recursing per *block* rather
        than maintaining an explicit per-op stack means region-free ops —
        the overwhelming majority — cost one append and one truthiness
        check each; :meth:`walk` pays a generator resumption per op and the
        old stack walk paid a children-list build and reversal per parent.
        """
        out: list[Operation] = [self]
        if self.regions:
            _walk_into(self, out)
        return out

    def is_before_in_block(self, other: "Operation") -> bool:
        """True if both ops share a block and ``self`` comes first."""
        if self.parent is None or self.parent is not other.parent:
            raise IRError("ops are not in the same block")
        return self.parent.index_of(self) < self.parent.index_of(other)

    # -- traits ------------------------------------------------------------

    @classmethod
    def has_trait(cls, trait: OpTrait) -> bool:
        return trait in cls.traits

    # ``is_terminator``/``is_pure`` are class-level constants recomputed per
    # subclass in ``__init_subclass__`` (declared on the base class above,
    # next to ``traits``): trait queries sit on the hot path of the
    # verifier, DCE, and CSE, and a plain class-attribute read beats a
    # property + per-call trait-set membership test.

    # -- cloning -----------------------------------------------------------

    def clone(
        self, value_map: dict[SSAValue, SSAValue] | None = None
    ) -> "Operation":
        """Deep-copy this op (and regions), remapping operands via
        ``value_map``.  Results of cloned ops are added to the map so nested
        references resolve to the clones."""
        # Lazily bound module globals: clone is recursive and hot, and a
        # local ``from .block import ...`` pays import-machinery cost per op.
        global _BLOCK_CLS, _REGION_CLS
        if _REGION_CLS is None:
            from .block import Block as _BLOCK_CLS, Region as _REGION_CLS
        Block, Region = _BLOCK_CLS, _REGION_CLS

        if value_map is None:
            value_map = {}
        new_operands = [value_map.get(o, o) for o in self._operands]
        new_op = object.__new__(type(self))
        # Inlined Operation.__init__: clone dominates pass pipelines, and the
        # generic constructor re-walks lists this path already has in hand.
        new_op.loc = self.loc
        new_op._operands = new_operands
        new_op.results = [
            OpResult(r.type, new_op, i) for i, r in enumerate(self.results)
        ]
        new_op.attributes = dict(self.attributes)
        new_op.regions = []
        new_op.parent = None
        for i, operand in enumerate(new_operands):
            operand.add_use(Use(new_op, i))
        for old_res, new_res in zip(self.results, new_op.results):
            new_res.name_hint = old_res.name_hint
            value_map[old_res] = new_res
        for region in self.regions:
            new_region = Region()
            for block in region.blocks:
                new_block = Block(arg_types=[a.type for a in block.args])
                for old_arg, new_arg in zip(block.args, new_block.args):
                    new_arg.name_hint = old_arg.name_hint
                    value_map[old_arg] = new_arg
                new_region.add_block(new_block)
            # Two passes so forward block references (rare) resolve; ops are
            # cloned after all blocks/args exist.
            for block, new_block in zip(region.blocks, new_region.blocks):
                for op in block.ops:
                    new_block.add_op(op.clone(value_map))
            new_op.add_region(new_region)
        return new_op

    # -- verification --------------------------------------------------------

    def verify(self) -> None:
        """Verify this operation and everything nested inside it."""
        from .verifier import verify_operation

        verify_operation(self)

    def verify_(self) -> None:
        """Op-specific verification hook; subclasses override."""

    # -- folding / canonicalization hooks ------------------------------------

    def fold(self) -> "list[SSAValue | Attribute] | None":
        """Try to fold this op.

        Returns ``None`` when no folding applies, otherwise a list with one
        entry per result: either an existing :class:`SSAValue` to reuse or an
        :class:`Attribute` to materialize as a constant.
        """
        return None

    # -- convenience -------------------------------------------------------

    @property
    def result(self) -> OpResult:
        """The single result (raises if the op does not have exactly one)."""
        if len(self.results) != 1:
            raise IRError(f"'{self.name}' has {len(self.results)} results, not 1")
        return self.results[0]

    def __str__(self) -> str:
        from .printer import print_operation

        return print_operation(self)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"

    # Identity hashing/equality: ops are mutable graph nodes, and the
    # worklist driver, CSE, and DCE all key sets by op identity.  The
    # inherited object.__hash__/__eq__ already ARE identity-based and run
    # in C; redefining them in Python costs a frame per set probe on the
    # hottest paths, so we deliberately do not override them.


def _walk_into(op: Operation, out: list[Operation]) -> None:
    """Append all ops nested under ``op``'s regions to ``out``, pre-order."""
    for region in op.regions:
        for block in region.blocks:
            for nested in block.ops:
                out.append(nested)
                if nested.regions:
                    _walk_into(nested, out)


class UnregisteredOp(Operation):
    """An operation of a dialect the parser does not know.

    Carries the textual name in ``op_name`` so round-tripping is lossless.
    Treated pessimistically by every pass (unknown effects).
    """

    name = "builtin.unregistered"

    __slots__ = ("op_name",)

    def __init__(
        self,
        op_name: str,
        operands: Sequence[SSAValue] = (),
        result_types: Sequence[TypeAttribute] = (),
        attributes: dict[str, Attribute] | None = None,
        regions: Sequence["Region"] = (),
    ) -> None:
        super().__init__(operands, result_types, attributes, regions)
        self.op_name = op_name

    def clone(self, value_map: dict[SSAValue, SSAValue] | None = None) -> "Operation":
        cloned = super().clone(value_map)
        cloned.op_name = self.op_name  # type: ignore[attr-defined]
        return cloned
