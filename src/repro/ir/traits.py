"""Operation traits.

Traits declare properties of an operation class that generic passes can query
without knowing the concrete op: whether it terminates a block, whether it is
side-effect free (safe to CSE / hoist / erase when unused), and whether it
isolates its regions from values defined above.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OpTrait:
    """Base class for traits attached to an operation class."""


@dataclass(frozen=True)
class IsTerminator(OpTrait):
    """The operation must appear last in its block."""


@dataclass(frozen=True)
class Pure(OpTrait):
    """The operation has no side effects; it may be erased when unused,
    deduplicated, and moved as long as SSA dominance is preserved."""


@dataclass(frozen=True)
class IsolatedFromAbove(OpTrait):
    """Regions of this operation may not reference values defined outside."""


@dataclass(frozen=True)
class HasCanonicalizer(OpTrait):
    """The operation provides canonicalization patterns via ``canonicalize``."""
