"""Source locations for IR operations.

The parser records where each operation started in the input text; passes
that synthesize ops leave the location unset (``None``).  Diagnostics and
verifier errors print locations when present, in the conventional
``file:line:column`` shape.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLoc:
    """A point in a textual IR source: 1-based line and column."""

    line: int
    column: int
    filename: str | None = None

    def __str__(self) -> str:
        prefix = self.filename if self.filename else "<input>"
        return f"{prefix}:{self.line}:{self.column}"
