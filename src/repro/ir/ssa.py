"""SSA values and their def-use chains.

Every value in the IR is defined exactly once — either as a result of an
operation (:class:`OpResult`) or as a block argument (:class:`BlockArgument`).
Each value tracks the set of operand slots that read it, which gives the
rewriting infrastructure constant-time ``replace_all_uses_with`` and lets
passes such as configuration deduplication reason about SSA-value identity as
a proxy for runtime-value identity (paper, Section 5.4).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .attributes import TypeAttribute

if TYPE_CHECKING:  # pragma: no cover - import cycle breakers for typing only
    from .block import Block
    from .operation import Operation


class Use:
    """A single read of an SSA value: ``operation.operands[index]``.

    A plain ``__slots__`` class rather than a frozen dataclass: one ``Use``
    is built for every operand link/unlink, and the frozen-dataclass
    ``object.__setattr__`` constructor is several times slower than direct
    slot assignment.
    """

    __slots__ = ("operation", "index")

    def __init__(self, operation: "Operation", index: int) -> None:
        self.operation = operation
        self.index = index

    def __repr__(self) -> str:
        return f"Use({self.operation!r}, {self.index})"

    def __hash__(self) -> int:
        return hash((id(self.operation), self.index))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Use):
            return NotImplemented
        return self.operation is other.operation and self.index == other.index


class SSAValue:
    """Base class for all SSA values."""

    __slots__ = ("type", "uses", "name_hint")

    def __init__(self, type: TypeAttribute, name_hint: str | None = None) -> None:
        if not isinstance(type, TypeAttribute):
            raise TypeError(f"SSA value type must be a TypeAttribute, got {type!r}")
        self.type = type
        # A list, not a set: use lists are tiny (a handful of entries), and
        # list append/scan beats per-Use tuple hashing on every link/unlink.
        # Link/unlink discipline (one add per operand slot, one remove per
        # unlink) keeps entries unique without set semantics.
        self.uses: list[Use] = []
        self.name_hint = name_hint

    # -- def-use management -------------------------------------------------

    def add_use(self, use: Use) -> None:
        self.uses.append(use)

    def remove_use(self, use: Use) -> None:
        self.remove_use_of(use.operation, use.index)

    def remove_use_of(self, operation: "Operation", index: int) -> None:
        """Unlink the use ``operation.operands[index]`` without allocating a
        :class:`Use` for the lookup (the unlink-side hot path)."""
        uses = self.uses
        for i, existing in enumerate(uses):
            if existing.operation is operation and existing.index == index:
                del uses[i]
                return

    def replace_all_uses_with(self, other: "SSAValue") -> None:
        """Rewrite every operand slot reading ``self`` to read ``other``."""
        if other is self:
            return
        for use in list(self.uses):
            use.operation.set_operand(use.index, other)

    @property
    def has_uses(self) -> bool:
        return bool(self.uses)

    def users(self) -> list["Operation"]:
        """The operations reading this value, deduplicated, in no fixed order."""
        seen: list[Operation] = []
        for use in self.uses:
            if all(use.operation is not s for s in seen):
                seen.append(use.operation)
        return seen

    # -- introspection -------------------------------------------------------

    @property
    def owner(self) -> "Operation | Block":
        raise NotImplementedError

    # Identity hashing/equality (value maps, use sets, CSE keys) is the
    # inherited object behaviour, already C-implemented; overriding it in
    # Python would add a frame per dict/set probe on hot paths.


class OpResult(SSAValue):
    """A value produced by an operation."""

    __slots__ = ("op", "index")

    def __init__(
        self,
        type: TypeAttribute,
        op: "Operation",
        index: int,
        name_hint: str | None = None,
    ) -> None:
        super().__init__(type, name_hint)
        self.op = op
        self.index = index

    @property
    def owner(self) -> "Operation":
        return self.op

    def __repr__(self) -> str:
        return f"<OpResult #{self.index} of {self.op.name} : {self.type}>"


class BlockArgument(SSAValue):
    """A value introduced at the entry of a block (e.g. a loop induction
    variable or a function parameter)."""

    __slots__ = ("block", "index")

    def __init__(
        self,
        type: TypeAttribute,
        block: "Block",
        index: int,
        name_hint: str | None = None,
    ) -> None:
        super().__init__(type, name_hint)
        self.block = block
        self.index = index

    @property
    def owner(self) -> "Block":
        return self.block

    def __repr__(self) -> str:
        return f"<BlockArgument #{self.index} : {self.type}>"
