"""Rewriting infrastructure.

Three layers, mirroring MLIR:

* :class:`Rewriter` — static structural helpers (replace, erase, move,
  inline) that keep def-use chains consistent.
* :class:`RewritePattern` + :class:`PatternRewriter` — local rewrites that
  report what they touched, so a driver can re-enqueue exactly the
  neighbours a mutation may have enabled.
* the drivers — :func:`apply_patterns_greedily` /
  :func:`drive_patterns` apply a pattern set to fixpoint.  The default
  **worklist driver** seeds one linear walk, pops ops, tries only the
  patterns indexed by the op's root class/name (see
  :attr:`RewritePattern.root_ops` and :meth:`RewritePattern.applies_to`),
  and re-enqueues the neighbours reported through
  :attr:`PatternRewriter.touched` — users of replaced results, operand
  definers of erased ops, inserted/inlined ops, and the enclosing parent.
  The legacy **sweep driver** (full re-walk per sweep) is kept behind
  ``REPRO_REWRITE_DRIVER=sweep`` as a differential oracle: both drivers
  reach the same normal form.
"""

from __future__ import annotations

import os
import warnings
from collections import deque
from contextlib import contextmanager
from typing import Iterable, Iterator, Sequence

from .block import Block
from .builder import Builder, InsertPoint
from .operation import IRError, Operation
from .ssa import SSAValue

#: sweeps (sweep driver) / rewrites-per-seeded-op (worklist driver) before
#: the drivers give up on a non-converging pattern set
MAX_PATTERN_ITERATIONS = 50

#: recognised values of ``REPRO_REWRITE_DRIVER``; ``both`` drives with the
#: worklist and additionally enables the sweep cross-check in the fuzz
#: oracles (see repro.testing.oracles)
DRIVER_NAMES = ("worklist", "sweep", "both")

_DRIVER_ENV = "REPRO_REWRITE_DRIVER"

#: process-local override installed by :func:`use_driver`; wins over the
#: environment variable
_DRIVER_OVERRIDE: str | None = None


class PatternDriverWarning(RuntimeWarning):
    """A pattern driver stopped before reaching a fixpoint."""


def active_driver() -> str:
    """The rewrite driver selected for this process.

    ``REPRO_REWRITE_DRIVER`` picks ``worklist`` (default), ``sweep`` (the
    legacy fixpoint-of-full-walks driver, kept as a differential oracle) or
    ``both`` (worklist, plus the driver-divergence oracle in the fuzzer).
    :func:`use_driver` overrides the environment for a scope.
    """
    name = _DRIVER_OVERRIDE or os.environ.get(_DRIVER_ENV, "worklist")
    if name not in DRIVER_NAMES:
        raise ValueError(
            f"unknown rewrite driver '{name}' from {_DRIVER_ENV} "
            f"(expected one of {', '.join(DRIVER_NAMES)})"
        )
    return name


@contextmanager
def use_driver(name: str) -> Iterator[None]:
    """Force the rewrite driver within a ``with`` block (tests, oracles)."""
    global _DRIVER_OVERRIDE
    if name not in DRIVER_NAMES:
        raise ValueError(f"unknown rewrite driver '{name}'")
    previous = _DRIVER_OVERRIDE
    _DRIVER_OVERRIDE = name
    try:
        yield
    finally:
        _DRIVER_OVERRIDE = previous


def enclosing_scope(root: Operation, op: Operation) -> Operation | None:
    """The direct child of ``root`` containing ``op`` (or being ``op``).

    Returns None when ``op`` is ``root`` itself or not nested under it —
    callers treat that as "change at root level" and report conservatively.
    """
    current: Operation | None = op
    while current is not None:
        parent = current.parent_op
        if parent is root:
            return current
        current = parent
    return None


class Rewriter:
    """Structural IR edits that keep the def-use graph consistent."""

    @staticmethod
    def erase_op(op: Operation) -> None:
        op.erase()

    @staticmethod
    def replace_op(
        op: Operation,
        new_ops: Operation | Sequence[Operation],
        new_results: Sequence[SSAValue | None] | None = None,
    ) -> None:
        """Insert ``new_ops`` before ``op``, reroute its results, erase it.

        ``new_results`` defaults to the results of the last new op.  ``None``
        entries assert the corresponding result was unused.
        """
        if isinstance(new_ops, Operation):
            new_ops = [new_ops]
        block = op.parent
        if block is None:
            raise IRError("cannot replace an op without a parent block")
        index = block.index_of(op)
        for offset, new_op in enumerate(new_ops):
            block.insert_op_at(index + offset, new_op)
        if new_results is None:
            new_results = list(new_ops[-1].results) if new_ops else []
        if len(new_results) != len(op.results):
            raise IRError(
                f"replacement provides {len(new_results)} results, "
                f"op '{op.name}' has {len(op.results)}"
            )
        for old, new in zip(op.results, new_results):
            if new is None:
                if old.has_uses:
                    raise IRError("result marked dead still has uses")
                continue
            old.replace_all_uses_with(new)
        op.erase()

    @staticmethod
    def replace_values(op: Operation, new_results: Sequence[SSAValue]) -> None:
        """Reroute all of ``op``'s results to existing values and erase it."""
        for old, new in zip(op.results, new_results):
            old.replace_all_uses_with(new)
        op.erase()

    @staticmethod
    def move_op_before(op: Operation, anchor: Operation) -> None:
        op.detach()
        if anchor.parent is None:
            raise IRError("anchor has no parent block")
        anchor.parent.insert_op_before(anchor, op)

    @staticmethod
    def move_op_after(op: Operation, anchor: Operation) -> None:
        op.detach()
        if anchor.parent is None:
            raise IRError("anchor has no parent block")
        anchor.parent.insert_op_after(anchor, op)

    @staticmethod
    def inline_block_before(
        block: Block, anchor: Operation, arg_values: Sequence[SSAValue]
    ) -> None:
        """Move all ops of ``block`` before ``anchor``, substituting block
        arguments with ``arg_values``.  The terminator must be removed by the
        caller beforehand (or be absent)."""
        if len(arg_values) != len(block.args):
            raise IRError("argument count mismatch when inlining block")
        for arg, value in zip(block.args, arg_values):
            arg.replace_all_uses_with(value)
        target = anchor.parent
        if target is None:
            raise IRError("anchor has no parent block")
        for op in list(block.ops):
            block.detach_op(op)
            target.insert_op_before(anchor, op)


class RewritePattern:
    """A local rewrite; subclasses implement :meth:`match_and_rewrite`.

    ``root_ops`` is the indexing hint: a tuple of Operation subclasses
    and/or op-name strings the pattern can fire on.  ``None`` (the default)
    means wildcard — the pattern is tried on every op, optionally narrowed
    by :meth:`applies_to`, which filters by op *class* and is consulted once
    per class per driver.
    """

    #: op classes / op-name strings this pattern can match; None = wildcard
    root_ops: tuple | None = None

    @classmethod
    def applies_to(cls, op_type: type) -> bool:
        """Class-level prefilter for wildcard patterns (cheap, cached)."""
        return True

    def match_and_rewrite(self, op: Operation, rewriter: "PatternRewriter") -> bool:
        """Attempt to rewrite ``op``; return True iff IR was changed."""
        raise NotImplementedError


class PatternRewriter(Rewriter):
    """Rewriter handed to patterns; records whether anything changed, which
    ops were touched (so the driver can re-enqueue neighbours) and which ops
    were erased (so the driver can skip their queued subtrees in O(1))."""

    def __init__(self) -> None:
        self.changed = False
        self.touched: list[Operation] = []
        self.erased: list[Operation] = []
        #: ops newly inserted or moved into place — the only touched ops
        #: whose *subtrees* the driver must expand (a merely re-touched
        #: parent, e.g. the loop around an erased op, must not re-enqueue
        #: its entire body)
        self.inserted: list[Operation] = []
        #: per-rewriter scratch for DedupConstantPattern (see its docstring)
        self._constant_memo: dict = {}

    def notify_changed(self, *ops: Operation) -> None:
        self.changed = True
        self.touched.extend(ops)

    def _touch_operand_definers(self, op: Operation) -> None:
        for operand in op.operands:
            owner = operand.owner
            if isinstance(owner, Operation):
                self.touched.append(owner)

    def erase_op(self, op: Operation) -> None:  # type: ignore[override]
        self._touch_operand_definers(op)
        parent = op.parent_op
        if parent is not None:
            self.touched.append(parent)
        self.erased.append(op)
        Rewriter.erase_op(op)
        self.changed = True

    def replace_op(
        self,
        op: Operation,
        new_ops: Operation | Sequence[Operation],
        new_results: Sequence[SSAValue | None] | None = None,
    ) -> None:  # type: ignore[override]
        users = [u for r in op.results for u in r.users()]
        # Erasing ``op`` may leave its operand definers dead; the worklist
        # driver must revisit them or chains never fully disappear.
        self._touch_operand_definers(op)
        parent = op.parent_op
        self.erased.append(op)
        Rewriter.replace_op(op, new_ops, new_results)
        self.changed = True
        self.touched.extend(users)
        if parent is not None:
            self.touched.append(parent)
        if isinstance(new_ops, Operation):
            self.touched.append(new_ops)
            self.inserted.append(new_ops)
        else:
            self.touched.extend(new_ops)
            self.inserted.extend(new_ops)

    def replace_values(
        self, op: Operation, new_results: Sequence[SSAValue]
    ) -> None:  # type: ignore[override]
        users = [u for r in op.results for u in r.users()]
        self._touch_operand_definers(op)
        parent = op.parent_op
        self.erased.append(op)
        Rewriter.replace_values(op, new_results)
        self.changed = True
        self.touched.extend(users)
        if parent is not None:
            self.touched.append(parent)

    def insert_op_before(self, anchor: Operation, op: Operation) -> None:
        if anchor.parent is None:
            raise IRError("anchor has no parent block")
        anchor.parent.insert_op_before(anchor, op)
        self.inserted.append(op)
        self.notify_changed(op)

    def insert_op_after(self, anchor: Operation, op: Operation) -> None:
        if anchor.parent is None:
            raise IRError("anchor has no parent block")
        anchor.parent.insert_op_after(anchor, op)
        self.inserted.append(op)
        self.notify_changed(op)

    def inline_block_before(
        self, block: Block, anchor: Operation, arg_values: Sequence[SSAValue]
    ) -> None:  # type: ignore[override]
        moved = list(block.ops)
        Rewriter.inline_block_before(block, anchor, arg_values)
        self.changed = True
        self.touched.extend(moved)
        self.inserted.extend(moved)


class Worklist:
    """FIFO of operations with O(1) membership dedupe.

    Holds strong references (an ``Operation`` hashes by identity), so queued
    ops can never be garbage-collected and have their ``id`` reused.
    """

    __slots__ = ("_queue", "_members")

    def __init__(self) -> None:
        self._queue: deque[Operation] = deque()
        self._members: set[Operation] = set()

    def push(self, op: Operation) -> None:
        if op not in self._members:
            self._members.add(op)
            self._queue.append(op)

    def pop(self) -> Operation:
        op = self._queue.popleft()
        self._members.discard(op)
        return op

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)


class DriverResult:
    """What a pattern-driver run did.

    ``scopes`` lists the direct children of the driven root whose subtrees
    changed (insertion-ordered); None means a root-level change or that the
    driver does not track scopes (the sweep driver).  :meth:`report`
    converts to the pass change-report protocol.
    """

    __slots__ = ("changed", "converged", "scopes")

    def __init__(
        self,
        changed: bool,
        converged: bool = True,
        scopes: "dict[Operation, None] | None" = None,
    ) -> None:
        self.changed = changed
        self.converged = converged
        self.scopes = scopes

    def report(self):
        """False / True / list-of-scope-ops, as PassManager expects."""
        if not self.changed:
            return False
        if self.scopes is None:
            return True
        if any(scope.parent is None for scope in self.scopes):
            return True  # a top-level scope was itself erased: be safe
        return list(self.scopes)

    def merge(self, other: "DriverResult") -> "DriverResult":
        """Accumulate a later run into this result (in place)."""
        self.changed = self.changed or other.changed
        self.converged = self.converged and other.converged
        if other.changed:
            if self.scopes is None or other.scopes is None:
                self.scopes = None
            else:
                self.scopes.update(other.scopes)
        return self


def _warn_nonconvergence(
    driver: str, patterns: Sequence[RewritePattern], op_count: int
) -> None:
    names = ", ".join(sorted({type(p).__name__ for p in patterns}))
    warnings.warn(
        f"{driver} pattern driver stopped before reaching a fixpoint "
        f"(patterns: {names}; {op_count} ops under root) — the pattern set "
        "does not converge",
        PatternDriverWarning,
        stacklevel=3,
    )


class GreedyPatternDriver:
    """The worklist driver: incremental greedy pattern application.

    One instance indexes a fixed pattern set; :meth:`run` drives a root (or
    a seeded subset of its ops) to fixpoint.  Per-class pattern lists are
    cached in the instance, so reusing one driver across modules amortizes
    the indexing.
    """

    def __init__(
        self,
        patterns: Sequence[RewritePattern],
        max_iterations: int = MAX_PATTERN_ITERATIONS,
    ) -> None:
        self.patterns = tuple(patterns)
        self.max_iterations = max_iterations
        self._index: dict[object, tuple[RewritePattern, ...]] = {}

    def _patterns_for(self, op: Operation) -> tuple[RewritePattern, ...]:
        op_type = type(op)
        key: object = op_type
        op_name = op.name
        if op_name == "builtin.unregistered":
            op_name = getattr(op, "op_name", op_name)
            key = (op_type, op_name)
        cached = self._index.get(key)
        if cached is None:
            cached = tuple(
                pattern
                for pattern in self.patterns
                if self._pattern_matches_type(pattern, op_type, op_name)
            )
            self._index[key] = cached
        return cached

    @staticmethod
    def _pattern_matches_type(
        pattern: RewritePattern, op_type: type, op_name: str
    ) -> bool:
        roots = pattern.root_ops
        if roots is None:
            return pattern.applies_to(op_type)
        for root in roots:
            if isinstance(root, str):
                if root == op_name:
                    return True
            elif issubclass(op_type, root):
                return True
        return False

    def run(
        self,
        root: Operation,
        seeds: Iterable[Operation] | None = None,
        rewriter: PatternRewriter | None = None,
    ) -> DriverResult:
        """Drive the pattern set to fixpoint over ``root``.

        ``seeds`` restricts the initial worklist to the given ops (plus
        whatever their rewrites touch) instead of a full walk — used by the
        fused cleanup driver to resume after CSE reported what it changed.
        """
        worklist = Worklist()
        patterns_for = self._patterns_for
        index = self._index
        if seeds is None:
            # Index-filtered seeding: ops no pattern targets (most of a
            # typical module) never enter the worklist at all.  The index
            # lookup is inlined — unregistered ops (keyed by name, not
            # class) simply miss and take the slow path.
            push = worklist.push
            for op in root.walk_list():
                cached = index.get(type(op))
                if cached is None:
                    cached = patterns_for(op)
                if cached:
                    push(op)
        else:
            for op in seeds:
                if patterns_for(op):
                    worklist.push(op)
        if rewriter is None:
            rewriter = PatternRewriter()
        #: ops inside erased subtrees (their ``parent`` links survive
        #: ``erase()``, so the flag set is the O(1) liveness check)
        erased: set[Operation] = set()
        # Cheap budget first (seed count); a legitimate cascade from a small
        # seed set may exceed it, so before declaring non-convergence the
        # budget is re-derived once from the actual op count under root —
        # the same max_iterations-sweeps bound the sweep driver enforces.
        budget = self.max_iterations * max(len(worklist), 1)
        budget_escalated = seeds is None
        rewrites = 0
        changed = False
        scopes: dict[Operation, None] = {}
        root_level_change = False

        pop = worklist.pop
        push = worklist.push
        while worklist:
            op = pop()
            if op in erased or (op is not root and op.parent is None):
                continue
            # Inlined index probe, same trick as seeding (unregistered ops
            # are keyed by name, miss here, and take the slow path).
            patterns = index.get(type(op))
            if patterns is None:
                patterns = patterns_for(op)
            if not patterns:
                continue
            # Captured before any rewrite: a fired pattern may detach ``op``
            # (erasure breaks the parent chain the scope walk needs).
            scope = enclosing_scope(root, op)
            for pattern in patterns:
                rewriter.changed = False
                rewriter.touched.clear()
                rewriter.erased.clear()
                rewriter.inserted.clear()
                fired = pattern.match_and_rewrite(op, rewriter)
                if not (fired or rewriter.changed):
                    continue
                changed = True
                rewrites += 1
                if scope is None:
                    root_level_change = True
                else:
                    scopes[scope] = None
                for dead in rewriter.erased:
                    if dead not in erased:
                        for sub in dead.walk_list():
                            erased.add(sub)
                for touched in rewriter.touched:
                    if touched is root or touched in erased:
                        continue
                    cached = index.get(type(touched))
                    if cached is None:
                        cached = patterns_for(touched)
                    if cached:
                        push(touched)
                # Only ops *moved or inserted* with regions (inlined
                # branches, replacement subtrees) need their nested ops
                # enqueued — the sweep driver would see them on its next
                # walk.  A merely re-touched parent must not re-enqueue
                # its whole body.
                for inserted in rewriter.inserted:
                    if inserted.regions and inserted not in erased:
                        for sub in inserted.walk_list():
                            if sub not in erased and patterns_for(sub):
                                push(sub)
                if op not in erased and (op is root or op.parent is not None):
                    push(op)  # the rewritten op may match again
                break  # op may be gone; move on
            if rewrites >= budget:
                if not budget_escalated:
                    budget_escalated = True
                    budget = max(
                        budget,
                        self.max_iterations
                        * max(sum(1 for _ in root.walk()), 1),
                    )
                    if rewrites < budget:
                        continue
                _warn_nonconvergence(
                    "worklist", self.patterns, sum(1 for _ in root.walk())
                )
                return DriverResult(changed, converged=False, scopes=None)
        return DriverResult(
            changed,
            converged=True,
            scopes=None if root_level_change else scopes,
        )


def _sweep_patterns(
    root: Operation,
    patterns: Sequence[RewritePattern],
    max_iterations: int,
) -> DriverResult:
    """The legacy driver: full re-walk per sweep, every pattern on every op.

    Kept as the differential oracle for the worklist driver — both reach
    the same normal form.  Does not track per-scope changes.
    """
    def still_attached(op: Operation) -> bool:
        current: Operation | None = op
        while current is not None:
            if current is root:
                return True
            current = current.parent_op
        return False

    changed_any = False
    for _ in range(max_iterations):
        rewriter = PatternRewriter()
        sweep_changed = False
        for op in list(root.walk()):
            if op is not root and not still_attached(op):
                continue  # erased by an earlier pattern in this sweep
            for pattern in patterns:
                try:
                    fired = pattern.match_and_rewrite(op, rewriter)
                except IRError:
                    raise
                if fired or rewriter.changed:
                    sweep_changed = True
                    rewriter.changed = False
                    break  # op may be gone; move to next op
        if not sweep_changed:
            return DriverResult(changed_any, converged=True, scopes=None)
        changed_any = True
    _warn_nonconvergence("sweep", patterns, sum(1 for _ in root.walk()))
    return DriverResult(changed_any, converged=False, scopes=None)


#: driver instances cached per pattern-set identity, so repeated pipeline
#: runs reuse the per-class pattern index (the pattern tuple held by the
#: driver pins the ids, making id-reuse impossible)
_DRIVER_CACHE: dict[tuple, GreedyPatternDriver] = {}


def _cached_driver(
    patterns: Sequence[RewritePattern], max_iterations: int
) -> GreedyPatternDriver:
    key = tuple(id(p) for p in patterns) + (max_iterations,)
    driver = _DRIVER_CACHE.get(key)
    if driver is None:
        driver = GreedyPatternDriver(patterns, max_iterations)
        _DRIVER_CACHE[key] = driver
    return driver


def drive_patterns(
    root: Operation,
    patterns: Sequence[RewritePattern],
    max_iterations: int = MAX_PATTERN_ITERATIONS,
    driver: str | None = None,
) -> DriverResult:
    """Apply ``patterns`` over all ops nested in ``root`` until fixpoint.

    ``driver`` forces ``"worklist"`` or ``"sweep"``; None consults
    :func:`active_driver` (``REPRO_REWRITE_DRIVER``).  Returns a
    :class:`DriverResult` with per-scope change sets under the worklist
    driver.
    """
    name = driver or active_driver()
    if name == "sweep":
        return _sweep_patterns(root, patterns, max_iterations)
    return _cached_driver(patterns, max_iterations).run(root)


def apply_patterns_greedily(
    root: Operation,
    patterns: Sequence[RewritePattern],
    max_iterations: int = MAX_PATTERN_ITERATIONS,
    driver: str | None = None,
) -> bool:
    """Back-compat wrapper around :func:`drive_patterns`: True iff changed."""
    return drive_patterns(root, patterns, max_iterations, driver).changed


__all__ = [
    "Rewriter",
    "RewritePattern",
    "PatternRewriter",
    "PatternDriverWarning",
    "Worklist",
    "DriverResult",
    "GreedyPatternDriver",
    "apply_patterns_greedily",
    "drive_patterns",
    "active_driver",
    "use_driver",
    "enclosing_scope",
    "MAX_PATTERN_ITERATIONS",
    "DRIVER_NAMES",
    "Builder",
    "InsertPoint",
]
