"""Rewriting infrastructure.

Two layers, mirroring MLIR:

* :class:`Rewriter` — static structural helpers (replace, erase, move,
  inline) that keep def-use chains consistent.
* :class:`RewritePattern` + :func:`apply_patterns_greedily` — a worklist
  driver that applies local patterns to fixpoint, used by canonicalization
  and by the accfg optimization passes.
"""

from __future__ import annotations

from typing import Sequence

from .block import Block
from .builder import Builder, InsertPoint
from .operation import IRError, Operation
from .ssa import SSAValue


class Rewriter:
    """Structural IR edits that keep the def-use graph consistent."""

    @staticmethod
    def erase_op(op: Operation) -> None:
        op.erase()

    @staticmethod
    def replace_op(
        op: Operation,
        new_ops: Operation | Sequence[Operation],
        new_results: Sequence[SSAValue | None] | None = None,
    ) -> None:
        """Insert ``new_ops`` before ``op``, reroute its results, erase it.

        ``new_results`` defaults to the results of the last new op.  ``None``
        entries assert the corresponding result was unused.
        """
        if isinstance(new_ops, Operation):
            new_ops = [new_ops]
        block = op.parent
        if block is None:
            raise IRError("cannot replace an op without a parent block")
        index = block.index_of(op)
        for offset, new_op in enumerate(new_ops):
            block.insert_op_at(index + offset, new_op)
        if new_results is None:
            new_results = list(new_ops[-1].results) if new_ops else []
        if len(new_results) != len(op.results):
            raise IRError(
                f"replacement provides {len(new_results)} results, "
                f"op '{op.name}' has {len(op.results)}"
            )
        for old, new in zip(op.results, new_results):
            if new is None:
                if old.has_uses:
                    raise IRError("result marked dead still has uses")
                continue
            old.replace_all_uses_with(new)
        op.erase()

    @staticmethod
    def replace_values(op: Operation, new_results: Sequence[SSAValue]) -> None:
        """Reroute all of ``op``'s results to existing values and erase it."""
        for old, new in zip(op.results, new_results):
            old.replace_all_uses_with(new)
        op.erase()

    @staticmethod
    def move_op_before(op: Operation, anchor: Operation) -> None:
        op.detach()
        if anchor.parent is None:
            raise IRError("anchor has no parent block")
        anchor.parent.insert_op_before(anchor, op)

    @staticmethod
    def move_op_after(op: Operation, anchor: Operation) -> None:
        op.detach()
        if anchor.parent is None:
            raise IRError("anchor has no parent block")
        anchor.parent.insert_op_after(anchor, op)

    @staticmethod
    def inline_block_before(
        block: Block, anchor: Operation, arg_values: Sequence[SSAValue]
    ) -> None:
        """Move all ops of ``block`` before ``anchor``, substituting block
        arguments with ``arg_values``.  The terminator must be removed by the
        caller beforehand (or be absent)."""
        if len(arg_values) != len(block.args):
            raise IRError("argument count mismatch when inlining block")
        for arg, value in zip(block.args, arg_values):
            arg.replace_all_uses_with(value)
        target = anchor.parent
        if target is None:
            raise IRError("anchor has no parent block")
        for op in list(block.ops):
            block.detach_op(op)
            target.insert_op_before(anchor, op)


class RewritePattern:
    """A local rewrite; subclasses implement :meth:`match_and_rewrite`."""

    def match_and_rewrite(self, op: Operation, rewriter: "PatternRewriter") -> bool:
        """Attempt to rewrite ``op``; return True iff IR was changed."""
        raise NotImplementedError


class PatternRewriter(Rewriter):
    """Rewriter handed to patterns; records whether anything changed and
    which ops were touched so the driver can re-enqueue neighbours."""

    def __init__(self) -> None:
        self.changed = False
        self.touched: list[Operation] = []

    def notify_changed(self, *ops: Operation) -> None:
        self.changed = True
        self.touched.extend(ops)

    def erase_op(self, op: Operation) -> None:  # type: ignore[override]
        for operand in op.operands:
            owner = operand.owner
            if isinstance(owner, Operation):
                self.touched.append(owner)
        Rewriter.erase_op(op)
        self.changed = True

    def replace_op(
        self,
        op: Operation,
        new_ops: Operation | Sequence[Operation],
        new_results: Sequence[SSAValue | None] | None = None,
    ) -> None:  # type: ignore[override]
        users = [u for r in op.results for u in r.users()]
        Rewriter.replace_op(op, new_ops, new_results)
        self.changed = True
        self.touched.extend(users)
        if isinstance(new_ops, Operation):
            self.touched.append(new_ops)
        else:
            self.touched.extend(new_ops)

    def replace_values(
        self, op: Operation, new_results: Sequence[SSAValue]
    ) -> None:  # type: ignore[override]
        users = [u for r in op.results for u in r.users()]
        Rewriter.replace_values(op, new_results)
        self.changed = True
        self.touched.extend(users)

    def insert_op_before(self, anchor: Operation, op: Operation) -> None:
        if anchor.parent is None:
            raise IRError("anchor has no parent block")
        anchor.parent.insert_op_before(anchor, op)
        self.notify_changed(op)

    def insert_op_after(self, anchor: Operation, op: Operation) -> None:
        if anchor.parent is None:
            raise IRError("anchor has no parent block")
        anchor.parent.insert_op_after(anchor, op)
        self.notify_changed(op)


def apply_patterns_greedily(
    root: Operation,
    patterns: Sequence[RewritePattern],
    max_iterations: int = 50,
) -> bool:
    """Apply ``patterns`` over all ops nested in ``root`` until fixpoint.

    Returns True if any pattern fired.  The driver walks the IR fresh on each
    sweep; a sweep with no changes terminates the loop.  ``max_iterations``
    guards against non-converging pattern sets.
    """
    def still_attached(op: Operation) -> bool:
        current: Operation | None = op
        while current is not None:
            if current is root:
                return True
            current = current.parent_op
        return False

    changed_any = False
    for _ in range(max_iterations):
        rewriter = PatternRewriter()
        sweep_changed = False
        for op in list(root.walk()):
            if op is not root and not still_attached(op):
                continue  # erased by an earlier pattern in this sweep
            for pattern in patterns:
                try:
                    fired = pattern.match_and_rewrite(op, rewriter)
                except IRError:
                    raise
                if fired or rewriter.changed:
                    sweep_changed = True
                    rewriter.changed = False
                    break  # op may be gone; move to next op
        if not sweep_changed:
            break
        changed_any = True
    return changed_any


__all__ = [
    "Rewriter",
    "RewritePattern",
    "PatternRewriter",
    "apply_patterns_greedily",
    "Builder",
    "InsertPoint",
]
