"""The arith dialect: integer constants, arithmetic, bitwise ops, compares.

These ops model the host-side scalar computation that accelerator
configuration code performs — loop-bound arithmetic, address computation, and
the bit-packing of configuration fields (paper, Listing 1 and Section 4.4).
Each op provides a ``fold`` hook used by the canonicalization pass; constant
folding of bit-packing is one of the "free" optimizations accfg unlocks
(Section 5.2).
"""

from __future__ import annotations

from ..ir.attributes import (
    Attribute,
    IntegerAttr,
    IntegerType,
    StringAttr,
    TypeAttribute,
    i1,
)
from ..ir.operation import Operation, VerifyError
from ..ir.printer import Printer
from ..ir.registry import register_custom_parser, register_op
from ..ir.ssa import SSAValue
from ..ir.traits import Pure


def _type_width_mask(type: TypeAttribute) -> int | None:
    if isinstance(type, IntegerType):
        return (1 << type.width) - 1
    return None  # index: model as unbounded Python int


def truncate_to_type(value: int, type: TypeAttribute) -> int:
    """Wrap ``value`` to the unsigned range of ``type`` (two's complement)."""
    mask = _type_width_mask(type)
    if mask is None:
        return value
    return value & mask


#: interned ``value`` attributes — constants repeat heavily (loop bounds,
#: field values), and reusing the attribute object skips a dataclass
#: construction per constant and makes later attribute hashing/equality hit
#: the identity fast path.  Keyed by the type *attribute* (not its id), so
#: entries keep their type alive and can never alias a recycled object.
_INTERNED_VALUES: dict[tuple[int, TypeAttribute], IntegerAttr] = {}


@register_op
class ConstantOp(Operation):
    """An integer constant: ``%c = arith.constant 5 : i64``."""

    name = "arith.constant"
    traits = frozenset([Pure()])
    custom_printed_attrs = frozenset(["value"])

    @staticmethod
    def create(value: int, type: TypeAttribute) -> "ConstantOp":
        op = ConstantOp(result_types=[type])
        key = (value, type)
        attr = _INTERNED_VALUES.get(key)
        if attr is None:
            attr = IntegerAttr(truncate_to_type(value, type), type)
            if len(_INTERNED_VALUES) < 4096:
                _INTERNED_VALUES[key] = attr
        op.attributes["value"] = attr
        return op

    @property
    def value(self) -> int:
        attr = self.attributes["value"]
        assert isinstance(attr, IntegerAttr)
        return attr.value

    def verify_(self) -> None:
        attr = self.attributes.get("value")
        if not isinstance(attr, IntegerAttr):
            raise VerifyError("arith.constant needs an integer 'value' attribute")
        if attr.type != self.result.type:
            raise VerifyError("arith.constant value type must match result type")

    def print_custom(self, printer: Printer) -> None:
        printer.emit(f"arith.constant {self.value} : {self.result.type}")


@register_custom_parser("arith.constant")
def _parse_constant(parser) -> ConstantOp:
    value = parser.parse_int()
    parser.expect(":")
    type = parser.parse_type()
    return ConstantOp.create(value, type)


class BinaryOp(Operation):
    """Base for two-operand, one-result integer ops of uniform type."""

    traits = frozenset([Pure()])
    commutative: bool = False

    @classmethod
    def create(cls, lhs: SSAValue, rhs: SSAValue) -> "BinaryOp":
        if lhs.type != rhs.type:
            raise VerifyError(
                f"{cls.name}: operand types differ ({lhs.type} vs {rhs.type})"
            )
        return cls(operands=[lhs, rhs], result_types=[lhs.type])

    @property
    def lhs(self) -> SSAValue:
        return self.operands[0]

    @property
    def rhs(self) -> SSAValue:
        return self.operands[1]

    def verify_(self) -> None:
        if len(self.operands) != 2 or len(self.results) != 1:
            raise VerifyError(f"{self.name} must have 2 operands and 1 result")
        if self.operands[0].type != self.operands[1].type:
            raise VerifyError(f"{self.name}: operand types differ")
        if self.operands[0].type != self.results[0].type:
            raise VerifyError(f"{self.name}: result type must match operands")

    def print_custom(self, printer: Printer) -> None:
        printer.emit(f"{self.name} ")
        printer.print_value(self.lhs)
        printer.emit(", ")
        printer.print_value(self.rhs)
        printer.emit(f" : {self.result.type}")

    # -- folding -------------------------------------------------------------

    def _operand_constants(self) -> tuple[int | None, int | None]:
        consts: list[int | None] = []
        for operand in self.operands:
            owner = operand.owner
            if isinstance(owner, ConstantOp):
                consts.append(owner.value)
            else:
                consts.append(None)
        return consts[0], consts[1]

    def evaluate(self, lhs: int, rhs: int) -> int:
        raise NotImplementedError

    def fold(self):
        lhs_const, rhs_const = self._operand_constants()
        if lhs_const is not None and rhs_const is not None:
            value = self.evaluate(lhs_const, rhs_const)
            return [IntegerAttr(truncate_to_type(value, self.result.type), self.result.type)]
        return self.fold_identities(lhs_const, rhs_const)

    def fold_identities(self, lhs_const: int | None, rhs_const: int | None):
        """Algebraic identities (x+0, x*1, ...); subclasses extend."""
        return None


def _binary_parser(cls):
    def parse(parser) -> BinaryOp:
        lhs = parser.parse_value_use()
        parser.expect(",")
        rhs = parser.parse_value_use()
        parser.expect(":")
        parser.parse_type()
        return cls.create(lhs, rhs)

    return parse


@register_op
class AddiOp(BinaryOp):
    """Integer addition (wrapping)."""

    name = "arith.addi"
    commutative = True

    def evaluate(self, lhs: int, rhs: int) -> int:
        return lhs + rhs

    def fold_identities(self, lhs_const, rhs_const):
        if rhs_const == 0:
            return [self.lhs]
        if lhs_const == 0:
            return [self.rhs]
        return None


@register_op
class SubiOp(BinaryOp):
    """Integer subtraction (wrapping)."""

    name = "arith.subi"

    def evaluate(self, lhs: int, rhs: int) -> int:
        return lhs - rhs

    def fold_identities(self, lhs_const, rhs_const):
        if rhs_const == 0:
            return [self.lhs]
        if self.lhs is self.rhs:
            return [IntegerAttr(0, self.result.type)]
        return None


@register_op
class MuliOp(BinaryOp):
    """Integer multiplication (wrapping)."""

    name = "arith.muli"
    commutative = True

    def evaluate(self, lhs: int, rhs: int) -> int:
        return lhs * rhs

    def fold_identities(self, lhs_const, rhs_const):
        if rhs_const == 1:
            return [self.lhs]
        if lhs_const == 1:
            return [self.rhs]
        if rhs_const == 0 or lhs_const == 0:
            return [IntegerAttr(0, self.result.type)]
        return None


@register_op
class DivuiOp(BinaryOp):
    """Unsigned integer division (traps on zero)."""

    name = "arith.divui"

    def evaluate(self, lhs: int, rhs: int) -> int:
        if rhs == 0:
            raise ZeroDivisionError("arith.divui by zero")
        return lhs // rhs

    def fold(self):
        lhs_const, rhs_const = self._operand_constants()
        if rhs_const == 0:
            return None  # do not fold a trap
        if lhs_const is not None and rhs_const is not None:
            return [
                IntegerAttr(
                    truncate_to_type(lhs_const // rhs_const, self.result.type),
                    self.result.type,
                )
            ]
        if rhs_const == 1:
            return [self.lhs]
        return None


@register_op
class RemuiOp(BinaryOp):
    """Unsigned integer remainder (traps on zero)."""

    name = "arith.remui"

    def evaluate(self, lhs: int, rhs: int) -> int:
        if rhs == 0:
            raise ZeroDivisionError("arith.remui by zero")
        return lhs % rhs

    def fold(self):
        lhs_const, rhs_const = self._operand_constants()
        if rhs_const == 0:
            return None
        if lhs_const is not None and rhs_const is not None:
            return [
                IntegerAttr(
                    truncate_to_type(lhs_const % rhs_const, self.result.type),
                    self.result.type,
                )
            ]
        if rhs_const == 1:
            return [IntegerAttr(0, self.result.type)]
        return None


@register_op
class AndiOp(BinaryOp):
    """Bitwise AND."""

    name = "arith.andi"
    commutative = True

    def evaluate(self, lhs: int, rhs: int) -> int:
        return lhs & rhs

    def fold_identities(self, lhs_const, rhs_const):
        if rhs_const == 0 or lhs_const == 0:
            return [IntegerAttr(0, self.result.type)]
        if self.lhs is self.rhs:
            return [self.lhs]
        return None


@register_op
class OriOp(BinaryOp):
    """Bitwise OR (the packing ladder's combiner, Listing 1)."""

    name = "arith.ori"
    commutative = True

    def evaluate(self, lhs: int, rhs: int) -> int:
        return lhs | rhs

    def fold_identities(self, lhs_const, rhs_const):
        if rhs_const == 0:
            return [self.lhs]
        if lhs_const == 0:
            return [self.rhs]
        if self.lhs is self.rhs:
            return [self.lhs]
        return None


@register_op
class XoriOp(BinaryOp):
    """Bitwise XOR."""

    name = "arith.xori"
    commutative = True

    def evaluate(self, lhs: int, rhs: int) -> int:
        return lhs ^ rhs

    def fold_identities(self, lhs_const, rhs_const):
        if rhs_const == 0:
            return [self.lhs]
        if lhs_const == 0:
            return [self.rhs]
        if self.lhs is self.rhs:
            return [IntegerAttr(0, self.result.type)]
        return None


@register_op
class ShliOp(BinaryOp):
    """Left shift (the packing ladder's positioner, Listing 1)."""

    name = "arith.shli"

    def evaluate(self, lhs: int, rhs: int) -> int:
        return lhs << rhs

    def fold_identities(self, lhs_const, rhs_const):
        if rhs_const == 0:
            return [self.lhs]
        if lhs_const == 0:
            return [IntegerAttr(0, self.result.type)]
        return None


@register_op
class ShruiOp(BinaryOp):
    """Logical right shift."""

    name = "arith.shrui"

    def evaluate(self, lhs: int, rhs: int) -> int:
        return lhs >> rhs

    def fold_identities(self, lhs_const, rhs_const):
        if rhs_const == 0:
            return [self.lhs]
        if lhs_const == 0:
            return [IntegerAttr(0, self.result.type)]
        return None


@register_op
class MinUIOp(BinaryOp):
    """Unsigned minimum (bounds clipping in tiled code)."""

    name = "arith.minui"
    commutative = True

    def evaluate(self, lhs: int, rhs: int) -> int:
        return min(lhs, rhs)

    def fold_identities(self, lhs_const, rhs_const):
        if self.lhs is self.rhs:
            return [self.lhs]
        return None


@register_op
class MaxUIOp(BinaryOp):
    """Unsigned maximum."""

    name = "arith.maxui"
    commutative = True

    def evaluate(self, lhs: int, rhs: int) -> int:
        return max(lhs, rhs)

    def fold_identities(self, lhs_const, rhs_const):
        if self.lhs is self.rhs:
            return [self.lhs]
        return None


for _cls in (
    AddiOp,
    SubiOp,
    MuliOp,
    DivuiOp,
    RemuiOp,
    AndiOp,
    OriOp,
    XoriOp,
    ShliOp,
    ShruiOp,
    MinUIOp,
    MaxUIOp,
):
    register_custom_parser(_cls.name)(_binary_parser(_cls))


CMP_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge")


@register_op
class CmpiOp(Operation):
    """Integer comparison producing an ``i1``."""

    name = "arith.cmpi"
    traits = frozenset([Pure()])
    custom_printed_attrs = frozenset(["predicate"])

    @staticmethod
    def create(predicate: str, lhs: SSAValue, rhs: SSAValue) -> "CmpiOp":
        if predicate not in CMP_PREDICATES:
            raise VerifyError(f"unknown cmpi predicate '{predicate}'")
        op = CmpiOp(operands=[lhs, rhs], result_types=[i1])
        op.attributes["predicate"] = StringAttr(predicate)
        return op

    @property
    def predicate(self) -> str:
        attr = self.attributes["predicate"]
        assert isinstance(attr, StringAttr)
        return attr.value

    @property
    def lhs(self) -> SSAValue:
        return self.operands[0]

    @property
    def rhs(self) -> SSAValue:
        return self.operands[1]

    def verify_(self) -> None:
        attr = self.attributes.get("predicate")
        if not isinstance(attr, StringAttr) or attr.value not in CMP_PREDICATES:
            raise VerifyError("arith.cmpi needs a valid 'predicate' attribute")
        if len(self.operands) != 2 or self.operands[0].type != self.operands[1].type:
            raise VerifyError("arith.cmpi operands must have matching types")
        if self.results[0].type != i1:
            raise VerifyError("arith.cmpi must return i1")

    @staticmethod
    def evaluate_predicate(predicate: str, lhs: int, rhs: int, width: int) -> bool:
        """Evaluate on unsigned representations of the given bit-width."""

        def to_signed(value: int) -> int:
            sign_bit = 1 << (width - 1)
            return (value & (sign_bit - 1)) - (value & sign_bit)

        if predicate in ("slt", "sle", "sgt", "sge"):
            lhs, rhs = to_signed(lhs), to_signed(rhs)
        table = {
            "eq": lhs == rhs,
            "ne": lhs != rhs,
            "slt": lhs < rhs,
            "sle": lhs <= rhs,
            "sgt": lhs > rhs,
            "sge": lhs >= rhs,
            "ult": lhs < rhs,
            "ule": lhs <= rhs,
            "ugt": lhs > rhs,
            "uge": lhs >= rhs,
        }
        return table[predicate]

    def fold(self):
        lhs_owner = self.lhs.owner
        rhs_owner = self.rhs.owner
        if isinstance(lhs_owner, ConstantOp) and isinstance(rhs_owner, ConstantOp):
            width = (
                self.lhs.type.width if isinstance(self.lhs.type, IntegerType) else 64
            )
            result = self.evaluate_predicate(
                self.predicate, lhs_owner.value, rhs_owner.value, width
            )
            return [IntegerAttr(int(result), i1)]
        if self.lhs is self.rhs and self.predicate in ("eq", "sle", "sge", "ule", "uge"):
            return [IntegerAttr(1, i1)]
        if self.lhs is self.rhs and self.predicate in ("ne", "slt", "sgt", "ult", "ugt"):
            return [IntegerAttr(0, i1)]
        return None

    def print_custom(self, printer: Printer) -> None:
        printer.emit(f"arith.cmpi {self.predicate}, ")
        printer.print_value(self.lhs)
        printer.emit(", ")
        printer.print_value(self.rhs)
        printer.emit(f" : {self.lhs.type}")


@register_custom_parser("arith.cmpi")
def _parse_cmpi(parser) -> CmpiOp:
    predicate = parser.expect_kind("ID").text
    parser.expect(",")
    lhs = parser.parse_value_use()
    parser.expect(",")
    rhs = parser.parse_value_use()
    parser.expect(":")
    parser.parse_type()
    return CmpiOp.create(predicate, lhs, rhs)


@register_op
class SelectOp(Operation):
    """``%r = arith.select %cond, %true_value, %false_value : type``."""

    name = "arith.select"
    traits = frozenset([Pure()])

    @staticmethod
    def create(cond: SSAValue, true_value: SSAValue, false_value: SSAValue) -> "SelectOp":
        if true_value.type != false_value.type:
            raise VerifyError("arith.select branch types differ")
        return SelectOp(
            operands=[cond, true_value, false_value], result_types=[true_value.type]
        )

    @property
    def condition(self) -> SSAValue:
        return self.operands[0]

    @property
    def true_value(self) -> SSAValue:
        return self.operands[1]

    @property
    def false_value(self) -> SSAValue:
        return self.operands[2]

    def verify_(self) -> None:
        if len(self.operands) != 3:
            raise VerifyError("arith.select needs 3 operands")
        if self.operands[0].type != i1:
            raise VerifyError("arith.select condition must be i1")
        if self.operands[1].type != self.operands[2].type:
            raise VerifyError("arith.select branch types differ")

    def fold(self):
        owner = self.condition.owner
        if isinstance(owner, ConstantOp):
            return [self.true_value if owner.value else self.false_value]
        if self.true_value is self.false_value:
            return [self.true_value]
        return None

    def print_custom(self, printer: Printer) -> None:
        printer.emit("arith.select ")
        printer.print_value_list(self.operands)
        printer.emit(f" : {self.result.type}")


@register_custom_parser("arith.select")
def _parse_select(parser) -> SelectOp:
    cond = parser.parse_value_use()
    parser.expect(",")
    true_value = parser.parse_value_use()
    parser.expect(",")
    false_value = parser.parse_value_use()
    parser.expect(":")
    parser.parse_type()
    return SelectOp.create(cond, true_value, false_value)


def constant_value(value: SSAValue) -> int | None:
    """The compile-time integer of ``value`` if it comes from a constant."""
    owner = value.owner
    if isinstance(owner, ConstantOp):
        return owner.value
    return None


def materialize_attr(attr: Attribute) -> ConstantOp:
    """Create a constant op for a folded :class:`IntegerAttr` result."""
    if not isinstance(attr, IntegerAttr):
        raise VerifyError(f"cannot materialize attribute {attr} as a constant")
    return ConstantOp.create(attr.value, attr.type)
