"""The builtin dialect: the top-level module container."""

from __future__ import annotations

from ..ir.block import Block, Region
from ..ir.operation import Operation, VerifyError
from ..ir.printer import Printer
from ..ir.registry import register_custom_parser, register_op
from ..ir.traits import IsolatedFromAbove


@register_op
class ModuleOp(Operation):
    """Top-level container holding functions (and any other symbol ops)."""

    name = "builtin.module"
    traits = frozenset([IsolatedFromAbove()])

    @staticmethod
    def create(ops: list[Operation] | None = None) -> "ModuleOp":
        body = Block(ops or [])
        return ModuleOp(regions=[Region([body])])

    @property
    def body_block(self) -> Block:
        return self.regions[0].block

    def verify_(self) -> None:
        if len(self.regions) != 1 or len(self.regions[0].blocks) != 1:
            raise VerifyError("builtin.module must have exactly one block")

    def print_custom(self, printer: Printer) -> None:
        printer.emit("builtin.module ")
        printer.print_region(self.regions[0])


@register_custom_parser("builtin.module")
def _parse_module(parser) -> ModuleOp:
    region = parser.parse_region()
    op = ModuleOp(regions=[region])
    return op
