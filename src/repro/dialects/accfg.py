"""The accfg dialect (paper, Section 5.1).

Encapsulates the configure / launch / await programming model of
host-controlled accelerators:

* ``accfg.setup`` writes configuration registers and produces an SSA value of
  type ``!accfg.state<"accel">`` representing the accelerator's register file
  contents after the writes.  It optionally consumes the previous state, which
  lets passes compute a *setup delta* between consecutive configurations.
* ``accfg.launch`` reads a state, starts the accelerator (optionally carrying
  launch-semantic fields that are written last), and yields a
  ``!accfg.token<"accel">``.
* ``accfg.await`` blocks until the computation behind a token completes.
* ``accfg.reset`` marks a state as destroyed (e.g. accelerator power-down).

The dialect also defines the ``#accfg.effects<all|none>`` escape hatches: an
annotation on foreign ops declaring whether they clobber accelerator state.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.attributes import (
    ArrayAttr,
    Attribute,
    StringAttr,
    TypeAttribute,
)
from ..ir.operation import Operation, VerifyError
from ..ir.printer import Printer
from ..ir.registry import (
    register_attr_parser,
    register_custom_parser,
    register_op,
    register_type_parser,
)
from ..ir.ssa import SSAValue

EFFECTS_ATTR_NAME = "accfg.effects"


@dataclass(frozen=True)
class StateType(TypeAttribute):
    """The configuration-register state of one accelerator."""

    accelerator: str

    def __str__(self) -> str:
        return f'!accfg.state<"{self.accelerator}">'


@dataclass(frozen=True)
class TokenType(TypeAttribute):
    """A handle for one in-flight accelerator launch."""

    accelerator: str

    def __str__(self) -> str:
        return f'!accfg.token<"{self.accelerator}">'


@dataclass(frozen=True)
class EffectsAttr(Attribute):
    """``#accfg.effects<all>`` (clobbers state) or ``<none>`` (preserves)."""

    effects: str  # "all" | "none"

    def __post_init__(self) -> None:
        if self.effects not in ("all", "none"):
            raise ValueError(f"effects must be 'all' or 'none', got {self.effects!r}")

    def __str__(self) -> str:
        return f"#accfg.effects<{self.effects}>"


# Interned singletons for the dialect's hot constructors.  Accelerator and
# field names recur constantly while building and rewriting (every setup /
# launch re-wraps the same handful of strings), and StringAttr / StateType /
# TokenType are frozen dataclasses whose construction is comparatively
# expensive.  All attributes are immutable, so sharing is safe; the caches
# are capped so adversarial name streams cannot grow them without bound.
_INTERN_CAP = 4096
_INTERNED_STRINGS: dict[str, StringAttr] = {}
_INTERNED_PARAM_NAMES: dict[tuple[str, ...], ArrayAttr] = {}
_INTERNED_STATE_TYPES: dict[str, StateType] = {}
_INTERNED_TOKEN_TYPES: dict[str, TokenType] = {}


def _str_attr(value: str) -> StringAttr:
    attr = _INTERNED_STRINGS.get(value)
    if attr is None:
        attr = StringAttr(value)
        if len(_INTERNED_STRINGS) < _INTERN_CAP:
            _INTERNED_STRINGS[value] = attr
    return attr


def _param_names_attr(names: tuple[str, ...]) -> ArrayAttr:
    attr = _INTERNED_PARAM_NAMES.get(names)
    if attr is None:
        attr = ArrayAttr(tuple(_str_attr(name) for name in names))
        if len(_INTERNED_PARAM_NAMES) < _INTERN_CAP:
            _INTERNED_PARAM_NAMES[names] = attr
    return attr


def state_type(accelerator: str) -> StateType:
    """The (interned) ``!accfg.state`` type for ``accelerator``."""
    cached = _INTERNED_STATE_TYPES.get(accelerator)
    if cached is None:
        cached = StateType(accelerator)
        if len(_INTERNED_STATE_TYPES) < _INTERN_CAP:
            _INTERNED_STATE_TYPES[accelerator] = cached
    return cached


def token_type(accelerator: str) -> TokenType:
    """The (interned) ``!accfg.token`` type for ``accelerator``."""
    cached = _INTERNED_TOKEN_TYPES.get(accelerator)
    if cached is None:
        cached = TokenType(accelerator)
        if len(_INTERNED_TOKEN_TYPES) < _INTERN_CAP:
            _INTERNED_TOKEN_TYPES[accelerator] = cached
    return cached


def set_effects(op: Operation, effects: str) -> None:
    """Annotate a foreign op with its accelerator-state effects."""
    op.attributes[EFFECTS_ATTR_NAME] = EffectsAttr(effects)


def get_effects(op: Operation) -> str | None:
    """The declared accelerator-state effects of ``op``, if annotated."""
    attr = op.attributes.get(EFFECTS_ATTR_NAME)
    if isinstance(attr, EffectsAttr):
        return attr.effects
    if isinstance(attr, StringAttr) and attr.value in ("all", "none"):
        return attr.value
    return None


@register_attr_parser("accfg")
def _parse_accfg_attr(parser) -> EffectsAttr:
    token = parser.expect_kind("HASHID")
    if token.text != "#accfg.effects":
        raise parser.error(f"unknown accfg attribute '{token.text}'")
    parser.expect("<")
    effects = parser.expect_kind("ID").text
    parser.expect(">")
    return EffectsAttr(effects)


@register_type_parser("accfg")
def _parse_accfg_type(parser) -> TypeAttribute:
    token = parser.expect_kind("BANGID")
    kind = token.text[len("!accfg.") :]
    parser.expect("<")
    accelerator = parser.parse_string()
    parser.expect(">")
    if kind == "state":
        return StateType(accelerator)
    if kind == "token":
        return TokenType(accelerator)
    raise parser.error(f"unknown accfg type '{kind}'")


def _parse_field_list(parser) -> tuple[list[str], list[SSAValue]]:
    """Parse ``("name" = %value : type, ...)``; the ``(`` is already consumed
    by the caller or expected here."""
    names: list[str] = []
    values: list[SSAValue] = []
    if parser.accept(")"):
        return names, values
    while True:
        names.append(parser.parse_string())
        parser.expect("=")
        values.append(parser.parse_value_use())
        parser.expect(":")
        parser.parse_type()
        if not parser.accept(","):
            break
    parser.expect(")")
    return names, values


def _print_field_list(printer: Printer, fields) -> None:
    printer.emit("(")
    for i, (name, value) in enumerate(fields):
        if i:
            printer.emit(", ")
        printer.emit(f'"{name}" = ')
        printer.print_value(value)
        printer.emit(f" : {value.type}")
    printer.emit(")")


@register_op
class SetupOp(Operation):
    """Write configuration fields; produce the resulting accelerator state."""

    name = "accfg.setup"
    custom_printed_attrs = frozenset(["accelerator", "param_names"])

    @staticmethod
    def create(
        accelerator: str,
        fields: list[tuple[str, SSAValue]] | tuple[tuple[str, SSAValue], ...],
        in_state: SSAValue | None = None,
    ) -> "SetupOp":
        operands: list[SSAValue] = []
        if in_state is not None:
            operands.append(in_state)
        names: list[str] = []
        for field_name, value in fields:
            names.append(field_name)
            operands.append(value)
        op = SetupOp(
            operands=operands, result_types=[state_type(accelerator)]
        )
        op.attributes["accelerator"] = _str_attr(accelerator)
        op.attributes["param_names"] = _param_names_attr(tuple(names))
        op.result.name_hint = "state"
        return op

    # -- accessors ---------------------------------------------------------

    @property
    def accelerator(self) -> str:
        attr = self.attributes["accelerator"]
        assert isinstance(attr, StringAttr)
        return attr.value

    #: (param_names attr, extracted names) pair — attrs are immutable, so
    #: the extraction is valid as long as the same attr object is installed
    _field_names_cache: tuple[ArrayAttr, tuple[str, ...]] | None = None

    @property
    def in_state(self) -> SSAValue | None:
        operands = self._operands
        if operands and isinstance(operands[0].type, StateType):
            return operands[0]
        return None

    @property
    def out_state(self) -> SSAValue:
        return self.results[0]

    @property
    def field_names(self) -> tuple[str, ...]:
        attr = self.attributes["param_names"]
        cached = self._field_names_cache
        if cached is not None and cached[0] is attr:
            return cached[1]
        assert isinstance(attr, ArrayAttr)
        names = tuple(
            e.value for e in attr.elements if isinstance(e, StringAttr)
        )
        self._field_names_cache = (attr, names)
        return names

    @property
    def field_values(self) -> tuple[SSAValue, ...]:
        operands = self._operands
        offset = (
            1
            if operands and isinstance(operands[0].type, StateType)
            else 0
        )
        return tuple(operands[offset:])

    @property
    def fields(self) -> tuple[tuple[str, SSAValue], ...]:
        return tuple(zip(self.field_names, self.field_values))

    def field_value(self, name: str) -> SSAValue | None:
        for field_name, value in self.fields:
            if field_name == name:
                return value
        return None

    # -- mutation helpers ------------------------------------------------

    def set_fields(self, fields: list[tuple[str, SSAValue]]) -> None:
        """Replace the field list, keeping the input state (if any)."""
        operands: list[SSAValue] = []
        in_state = self.in_state
        if in_state is not None:
            operands.append(in_state)
        names: list[str] = []
        for field_name, value in fields:
            names.append(field_name)
            operands.append(value)
        self.set_operands(operands)
        self.attributes["param_names"] = _param_names_attr(tuple(names))

    def set_in_state(self, state: SSAValue | None) -> None:
        fields = list(self.fields)
        operands: list[SSAValue] = []
        if state is not None:
            operands.append(state)
        operands.extend(value for _, value in fields)
        self.set_operands(operands)

    def verify_(self) -> None:
        accelerator = self.attributes.get("accelerator")
        if not isinstance(accelerator, StringAttr):
            raise VerifyError("accfg.setup needs an 'accelerator' attribute")
        if not isinstance(self.attributes.get("param_names"), ArrayAttr):
            raise VerifyError("accfg.setup needs a 'param_names' attribute")
        if len(self.results) != 1 or not isinstance(self.results[0].type, StateType):
            raise VerifyError("accfg.setup must produce exactly one state")
        state_type = self.results[0].type
        assert isinstance(state_type, StateType)
        if state_type.accelerator != accelerator.value:
            raise VerifyError("accfg.setup state type accelerator mismatch")
        operands = self._operands
        has_in_state = bool(operands) and isinstance(operands[0].type, StateType)
        if has_in_state and operands[0].type != state_type:
            raise VerifyError("accfg.setup input state type mismatch")
        field_names = self.field_names
        field_values = operands[1:] if has_in_state else operands
        if len(field_names) != len(field_values):
            raise VerifyError(
                "accfg.setup param_names length must match field operand count"
            )
        for value in field_values:
            if isinstance(value.type, (StateType, TokenType)):
                raise VerifyError("accfg.setup field values cannot be states/tokens")
        if len(set(field_names)) != len(field_names):
            seen: set[str] = set()
            for field_name in field_names:
                if field_name in seen:
                    raise VerifyError(f"duplicate setup field '{field_name}'")
                seen.add(field_name)

    def print_custom(self, printer: Printer) -> None:
        printer.emit(f'accfg.setup on "{self.accelerator}" ')
        if self.in_state is not None:
            printer.emit("from ")
            printer.print_value(self.in_state)
            printer.emit(" ")
        _print_field_list(printer, self.fields)
        printer.emit(f" : {self.results[0].type}")


@register_custom_parser("accfg.setup")
def _parse_setup(parser) -> SetupOp:
    parser.expect("on")
    accelerator = parser.parse_string()
    in_state = None
    if parser.accept("from"):
        in_state = parser.parse_value_use()
    parser.expect("(")
    names, values = _parse_field_list(parser)
    parser.expect(":")
    parser.parse_type()
    return SetupOp.create(accelerator, list(zip(names, values)), in_state)


@register_op
class LaunchOp(Operation):
    """Start the accelerator from a configured state; yields a token.

    Launch-semantic configuration fields (paper, Section 2.4: instructions
    that implicitly launch) are modeled as fields on the launch itself.
    """

    name = "accfg.launch"
    custom_printed_attrs = frozenset(["param_names"])

    @staticmethod
    def create(
        state: SSAValue,
        fields: list[tuple[str, SSAValue]] | tuple[tuple[str, SSAValue], ...] = (),
    ) -> "LaunchOp":
        state_type = state.type
        if not isinstance(state_type, StateType):
            raise VerifyError("accfg.launch operand must be a state")
        operands: list[SSAValue] = [state]
        names: list[str] = []
        for field_name, value in fields:
            names.append(field_name)
            operands.append(value)
        op = LaunchOp(
            operands=operands,
            result_types=[token_type(state_type.accelerator)],
        )
        op.attributes["param_names"] = _param_names_attr(tuple(names))
        op.result.name_hint = "token"
        return op

    @property
    def state(self) -> SSAValue:
        return self.operands[0]

    @property
    def token(self) -> SSAValue:
        return self.results[0]

    @property
    def accelerator(self) -> str:
        state_type = self.state.type
        assert isinstance(state_type, StateType)
        return state_type.accelerator

    @property
    def field_names(self) -> tuple[str, ...]:
        attr = self.attributes["param_names"]
        assert isinstance(attr, ArrayAttr)
        return tuple(e.value for e in attr.elements if isinstance(e, StringAttr))

    @property
    def fields(self) -> tuple[tuple[str, SSAValue], ...]:
        return tuple(zip(self.field_names, self.operands[1:]))

    def verify_(self) -> None:
        if not self.operands or not isinstance(self.operands[0].type, StateType):
            raise VerifyError("accfg.launch needs a state operand first")
        if len(self.results) != 1 or not isinstance(self.results[0].type, TokenType):
            raise VerifyError("accfg.launch must produce exactly one token")
        state_type = self.operands[0].type
        token_type = self.results[0].type
        assert isinstance(state_type, StateType)
        assert isinstance(token_type, TokenType)
        if state_type.accelerator != token_type.accelerator:
            raise VerifyError("accfg.launch token/state accelerator mismatch")
        if len(self.field_names) != len(self.operands) - 1:
            raise VerifyError("accfg.launch param_names/operand count mismatch")

    def print_custom(self, printer: Printer) -> None:
        printer.emit("accfg.launch ")
        printer.print_value(self.state)
        if self.fields:
            printer.emit(" ")
            _print_field_list(printer, self.fields)
        printer.emit(f" : {self.results[0].type}")


@register_custom_parser("accfg.launch")
def _parse_launch(parser) -> LaunchOp:
    state = parser.parse_value_use()
    fields: list[tuple[str, SSAValue]] = []
    if parser.accept("("):
        names, values = _parse_field_list(parser)
        fields = list(zip(names, values))
    parser.expect(":")
    parser.parse_type()
    return LaunchOp.create(state, fields)


@register_op
class AwaitOp(Operation):
    """Block until the launch behind ``token`` has completed."""

    name = "accfg.await"

    @staticmethod
    def create(token: SSAValue) -> "AwaitOp":
        if not isinstance(token.type, TokenType):
            raise VerifyError("accfg.await operand must be a token")
        return AwaitOp(operands=[token])

    @property
    def token(self) -> SSAValue:
        return self.operands[0]

    @property
    def accelerator(self) -> str:
        token_type = self.token.type
        assert isinstance(token_type, TokenType)
        return token_type.accelerator

    def verify_(self) -> None:
        if len(self.operands) != 1 or not isinstance(self.operands[0].type, TokenType):
            raise VerifyError("accfg.await needs exactly one token operand")
        if self.results:
            raise VerifyError("accfg.await has no results")

    def print_custom(self, printer: Printer) -> None:
        printer.emit("accfg.await ")
        printer.print_value(self.token)


@register_custom_parser("accfg.await")
def _parse_await(parser) -> AwaitOp:
    token = parser.parse_value_use()
    return AwaitOp.create(token)


@register_op
class ResetOp(Operation):
    """Invalidate a state: subsequent setups cannot assume register contents."""

    name = "accfg.reset"

    @staticmethod
    def create(state: SSAValue) -> "ResetOp":
        if not isinstance(state.type, StateType):
            raise VerifyError("accfg.reset operand must be a state")
        return ResetOp(operands=[state])

    @property
    def state(self) -> SSAValue:
        return self.operands[0]

    def verify_(self) -> None:
        if len(self.operands) != 1 or not isinstance(self.operands[0].type, StateType):
            raise VerifyError("accfg.reset needs exactly one state operand")

    def print_custom(self, printer: Printer) -> None:
        printer.emit("accfg.reset ")
        printer.print_value(self.state)


@register_custom_parser("accfg.reset")
def _parse_reset(parser) -> ResetOp:
    state = parser.parse_value_use()
    return ResetOp.create(state)
