"""Dialect definitions.

Importing this package registers all ops, custom parsers, and dialect types
with :mod:`repro.ir.registry`.
"""

from . import accfg, arith, builtin, func, linalg, scf  # noqa: F401

__all__ = ["accfg", "arith", "builtin", "func", "linalg", "scf"]
