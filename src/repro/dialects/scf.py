"""The scf dialect: structured control flow (``for``, ``if``, ``yield``).

The accfg state-tracing pass threads accelerator configuration state through
these ops: ``scf.for`` carries state as an ``iter_args`` entry and ``scf.if``
yields the state of each branch (paper, Section 5.3 and Figure 9).
"""

from __future__ import annotations

from ..ir.attributes import TypeAttribute, i1
from ..ir.block import Block, Region
from ..ir.operation import Operation, VerifyError
from ..ir.printer import Printer
from ..ir.registry import register_custom_parser, register_op
from ..ir.ssa import BlockArgument, OpResult, SSAValue
from ..ir.traits import IsTerminator, Pure


@register_op
class YieldOp(Operation):
    """Terminator of scf regions, forwarding values to the parent op."""

    name = "scf.yield"
    traits = frozenset([IsTerminator(), Pure()])

    @staticmethod
    def create(values: list[SSAValue] | tuple[SSAValue, ...] = ()) -> "YieldOp":
        return YieldOp(operands=list(values))

    def print_custom(self, printer: Printer) -> None:
        printer.emit("scf.yield")
        if self.operands:
            printer.emit(" ")
            printer.print_value_list(self.operands)
            printer.emit(" : ")
            printer.emit(", ".join(str(o.type) for o in self.operands))


@register_custom_parser("scf.yield")
def _parse_yield(parser) -> YieldOp:
    values = []
    if parser.current.kind == "PERCENT":
        values.append(parser.parse_value_use())
        while parser.accept(","):
            values.append(parser.parse_value_use())
        parser.expect(":")
        parser.parse_type()
        while parser.accept(","):
            parser.parse_type()
    return YieldOp.create(values)


@register_op
class ForOp(Operation):
    """A counted loop with loop-carried values.

    Operands: ``lb, ub, step, *iter_inits``.  The single body block has
    arguments ``iv, *iter_args``; the body's ``scf.yield`` forwards the next
    iteration's values, which also become the op's results after the final
    iteration.
    """

    name = "scf.for"

    @staticmethod
    def create(
        lb: SSAValue,
        ub: SSAValue,
        step: SSAValue,
        iter_inits: list[SSAValue] | tuple[SSAValue, ...] = (),
        body: Block | None = None,
    ) -> "ForOp":
        if body is None:
            body = Block(
                arg_types=[lb.type] + [v.type for v in iter_inits],
            )
            body.args[0].name_hint = "i"
        return ForOp(
            operands=[lb, ub, step, *iter_inits],
            result_types=[v.type for v in iter_inits],
            regions=[Region([body])],
        )

    # -- accessors ---------------------------------------------------------

    @property
    def lb(self) -> SSAValue:
        return self.operands[0]

    @property
    def ub(self) -> SSAValue:
        return self.operands[1]

    @property
    def step(self) -> SSAValue:
        return self.operands[2]

    @property
    def iter_inits(self) -> tuple[SSAValue, ...]:
        return self.operands[3:]

    @property
    def body(self) -> Block:
        return self.regions[0].block

    @property
    def induction_var(self) -> BlockArgument:
        return self.body.args[0]

    @property
    def iter_args(self) -> tuple[BlockArgument, ...]:
        return tuple(self.body.args[1:])

    @property
    def yield_op(self) -> YieldOp:
        terminator = self.body.terminator
        if not isinstance(terminator, YieldOp):
            raise VerifyError("scf.for body must end with scf.yield")
        return terminator

    def add_iter_arg(
        self, init: SSAValue, yielded: SSAValue | None = None, name_hint: str | None = None
    ) -> tuple[BlockArgument, OpResult]:
        """Append a loop-carried value in place.

        Adds an operand, a body block argument, a result, and (when
        ``yielded`` is given) an operand on the body's yield.  Returns the new
        block argument and the new op result.
        """
        self.set_operands([*self.operands, init])
        arg = self.body.add_arg(init.type, name_hint)
        result = OpResult(init.type, self, len(self.results), name_hint)
        self.results.append(result)
        if yielded is not None:
            self.yield_op.set_operands([*self.yield_op.operands, yielded])
        return arg, result

    def verify_(self) -> None:
        if len(self.operands) < 3:
            raise VerifyError("scf.for needs at least lb, ub, step")
        if len(self.regions) != 1 or len(self.regions[0].blocks) != 1:
            raise VerifyError("scf.for needs exactly one body block")
        inits = self.iter_inits
        if len(self.results) != len(inits):
            raise VerifyError("scf.for result count must match iter_args count")
        if len(self.body.args) != 1 + len(inits):
            raise VerifyError("scf.for body needs iv plus one arg per iter_arg")
        if self.body.args[0].type != self.lb.type:
            raise VerifyError("scf.for induction variable type must match bounds")
        for init, arg, result in zip(inits, self.iter_args, self.results):
            if not (init.type == arg.type == result.type):
                raise VerifyError("scf.for iter_arg types must be consistent")
        terminator = self.body.terminator
        if not isinstance(terminator, YieldOp):
            raise VerifyError("scf.for body must end with scf.yield")
        if len(terminator.operands) != len(inits):
            raise VerifyError("scf.for yield operand count must match iter_args")
        for yielded, result in zip(terminator.operands, self.results):
            if yielded.type != result.type:
                raise VerifyError("scf.for yield types must match results")

    def print_custom(self, printer: Printer) -> None:
        printer.emit("scf.for ")
        printer.print_value(self.induction_var)
        printer.emit(" = ")
        printer.print_value(self.lb)
        printer.emit(" to ")
        printer.print_value(self.ub)
        printer.emit(" step ")
        printer.print_value(self.step)
        if self.iter_inits:
            printer.emit(" iter_args(")
            for i, (arg, init) in enumerate(zip(self.iter_args, self.iter_inits)):
                if i:
                    printer.emit(", ")
                printer.print_value(arg)
                printer.emit(" = ")
                printer.print_value(init)
            printer.emit(") -> (")
            printer.emit(", ".join(str(r.type) for r in self.results))
            printer.emit(")")
        printer.emit(" ")
        self._print_body(printer)

    def _print_body(self, printer: Printer) -> None:
        printer.emit("{")
        printer._indent += 1
        for op in self.body.ops:
            printer.newline()
            printer.print_op(op)
        printer._indent -= 1
        printer.newline()
        printer.emit("}")


@register_custom_parser("scf.for")
def _parse_for(parser) -> ForOp:
    iv_token = parser.expect_kind("PERCENT")
    parser.expect("=")
    lb = parser.parse_value_use()
    parser.expect("to")
    ub = parser.parse_value_use()
    parser.expect("step")
    step = parser.parse_value_use()
    iter_names: list[str] = []
    iter_inits: list[SSAValue] = []
    if parser.accept("iter_args"):
        parser.expect("(")
        while True:
            name_token = parser.expect_kind("PERCENT")
            parser.expect("=")
            init = parser.parse_value_use()
            iter_names.append(name_token.text[1:])
            iter_inits.append(init)
            if not parser.accept(","):
                break
        parser.expect(")")
        parser.expect("->")
        parser.parse_type_list()
    entry_args = [(iv_token.text[1:], lb.type)] + [
        (name, init.type) for name, init in zip(iter_names, iter_inits)
    ]
    region = parser.parse_region(entry_args=entry_args)
    return ForOp(
        operands=[lb, ub, step, *iter_inits],
        result_types=[v.type for v in iter_inits],
        regions=[region],
    )


@register_op
class IfOp(Operation):
    """Two-armed conditional.  Both regions end in ``scf.yield``; when the op
    produces results, both regions are mandatory and must yield matching
    types.  A result-free ``if`` may have an empty else region."""

    name = "scf.if"

    @staticmethod
    def create(
        cond: SSAValue,
        result_types: list[TypeAttribute] | tuple[TypeAttribute, ...] = (),
        then_block: Block | None = None,
        else_block: Block | None = None,
    ) -> "IfOp":
        then_region = Region([then_block or Block()])
        else_region = Region([else_block] if else_block is not None else [])
        if result_types and else_block is None:
            else_region = Region([Block()])
        return IfOp(
            operands=[cond],
            result_types=list(result_types),
            regions=[then_region, else_region],
        )

    @property
    def condition(self) -> SSAValue:
        return self.operands[0]

    @property
    def then_block(self) -> Block:
        return self.regions[0].block

    @property
    def has_else(self) -> bool:
        return bool(self.regions[1].blocks)

    @property
    def else_block(self) -> Block:
        return self.regions[1].block

    def verify_(self) -> None:
        if len(self.operands) != 1 or self.operands[0].type != i1:
            raise VerifyError("scf.if needs a single i1 condition")
        if len(self.regions) != 2:
            raise VerifyError("scf.if needs then and else regions")
        if self.results and not self.has_else:
            raise VerifyError("scf.if with results requires an else region")
        for region in self.regions:
            if not region.blocks:
                continue
            terminator = region.block.terminator
            if not isinstance(terminator, YieldOp):
                raise VerifyError("scf.if regions must end with scf.yield")
            if len(terminator.operands) != len(self.results):
                raise VerifyError("scf.if yield operand count must match results")
            for yielded, result in zip(terminator.operands, self.results):
                if yielded.type != result.type:
                    raise VerifyError("scf.if yield types must match results")

    def print_custom(self, printer: Printer) -> None:
        printer.emit("scf.if ")
        printer.print_value(self.condition)
        if self.results:
            printer.emit(" -> (")
            printer.emit(", ".join(str(r.type) for r in self.results))
            printer.emit(")")
        printer.emit(" ")
        printer.print_region(self.regions[0])
        if self.has_else:
            printer.emit(" else ")
            printer.print_region(self.regions[1])


@register_custom_parser("scf.if")
def _parse_if(parser) -> IfOp:
    cond = parser.parse_value_use()
    result_types: list[TypeAttribute] = []
    if parser.accept("->"):
        result_types = parser.parse_type_list()
    then_region = parser.parse_region()
    regions = [then_region]
    if parser.accept("else"):
        regions.append(parser.parse_region())
    else:
        regions.append(Region([]))
    return IfOp(operands=[cond], result_types=result_types, regions=regions)
