"""The func dialect: functions, calls, and returns.

Function calls are optimization barriers for accelerator state unless
annotated with ``#accfg.effects<none>`` (paper, Section 5.1): the callee may
reconfigure the accelerator, so state tracing must assume the configuration
registers are clobbered.
"""

from __future__ import annotations

from ..ir.attributes import FunctionType, StringAttr, SymbolRefAttr, TypeAttribute
from ..ir.block import Block, Region
from ..ir.operation import Operation, VerifyError
from ..ir.printer import Printer
from ..ir.registry import register_custom_parser, register_op
from ..ir.ssa import BlockArgument, SSAValue
from ..ir.traits import IsolatedFromAbove, IsTerminator


@register_op
class FuncOp(Operation):
    """A function definition (or declaration when the body is empty)."""

    name = "func.func"
    traits = frozenset([IsolatedFromAbove()])
    custom_printed_attrs = frozenset(["sym_name", "function_type"])

    @staticmethod
    def create(
        sym_name: str,
        function_type: FunctionType,
        body: Block | None = None,
    ) -> "FuncOp":
        if body is None:
            body = Block(arg_types=list(function_type.inputs))
        op = FuncOp(regions=[Region([body])])
        op.attributes["sym_name"] = StringAttr(sym_name)
        op.attributes["function_type"] = function_type
        return op

    @staticmethod
    def declaration(sym_name: str, function_type: FunctionType) -> "FuncOp":
        op = FuncOp(regions=[Region([])])
        op.attributes["sym_name"] = StringAttr(sym_name)
        op.attributes["function_type"] = function_type
        return op

    @property
    def sym_name(self) -> str:
        attr = self.attributes["sym_name"]
        assert isinstance(attr, StringAttr)
        return attr.value

    @property
    def function_type(self) -> FunctionType:
        attr = self.attributes["function_type"]
        assert isinstance(attr, FunctionType)
        return attr

    @property
    def is_declaration(self) -> bool:
        return not self.regions[0].blocks

    @property
    def body(self) -> Block:
        return self.regions[0].block

    @property
    def args(self) -> tuple[BlockArgument, ...]:
        return tuple(self.body.args)

    def verify_(self) -> None:
        if "sym_name" not in self.attributes:
            raise VerifyError("func.func needs a 'sym_name' attribute")
        if not isinstance(self.attributes.get("function_type"), FunctionType):
            raise VerifyError("func.func needs a 'function_type' attribute")
        if self.is_declaration:
            return
        body = self.body
        if [a.type for a in body.args] != list(self.function_type.inputs):
            raise VerifyError("func.func body arguments must match function type")
        terminator = body.terminator
        if not isinstance(terminator, ReturnOp):
            raise VerifyError("func.func body must end with func.return")
        if [o.type for o in terminator.operands] != list(self.function_type.results):
            raise VerifyError("func.return types must match function results")

    def print_custom(self, printer: Printer) -> None:
        printer.emit(f"func.func @{self.sym_name}(")
        if self.is_declaration:
            printer.emit(", ".join(str(t) for t in self.function_type.inputs))
            printer.emit(") -> (")
            printer.emit(", ".join(str(t) for t in self.function_type.results))
            printer.emit(")")
            return
        for i, arg in enumerate(self.args):
            if i:
                printer.emit(", ")
            printer.print_value(arg)
            printer.emit(f" : {arg.type}")
        printer.emit(") -> (")
        printer.emit(", ".join(str(t) for t in self.function_type.results))
        printer.emit(") ")
        self._print_body(printer)

    def _print_body(self, printer: Printer) -> None:
        printer.emit("{")
        printer._indent += 1
        for op in self.body.ops:
            printer.newline()
            printer.print_op(op)
        printer._indent -= 1
        printer.newline()
        printer.emit("}")


@register_custom_parser("func.func")
def _parse_func(parser) -> FuncOp:
    name_token = parser.expect_kind("AT")
    sym_name = name_token.text[1:]
    parser.expect("(")
    arg_entries: list[tuple[str, TypeAttribute]] = []
    input_types: list[TypeAttribute] = []
    is_declaration = False
    if not parser.accept(")"):
        if parser.current.kind == "PERCENT":
            while True:
                arg_token = parser.expect_kind("PERCENT")
                parser.expect(":")
                arg_type = parser.parse_type()
                arg_entries.append((arg_token.text[1:], arg_type))
                input_types.append(arg_type)
                if not parser.accept(","):
                    break
        else:
            is_declaration = True
            input_types.append(parser.parse_type())
            while parser.accept(","):
                input_types.append(parser.parse_type())
        parser.expect(")")
    parser.expect("->")
    result_types = parser.parse_type_list()
    function_type = FunctionType(tuple(input_types), tuple(result_types))
    if is_declaration or parser.current.text != "{":
        return FuncOp.declaration(sym_name, function_type)
    region = parser.parse_region(entry_args=arg_entries)
    op = FuncOp(regions=[region])
    op.attributes["sym_name"] = StringAttr(sym_name)
    op.attributes["function_type"] = function_type
    return op


@register_op
class ReturnOp(Operation):
    """Terminator returning values from a function."""

    name = "func.return"
    traits = frozenset([IsTerminator()])

    @staticmethod
    def create(values: list[SSAValue] | tuple[SSAValue, ...] = ()) -> "ReturnOp":
        return ReturnOp(operands=list(values))

    def print_custom(self, printer: Printer) -> None:
        printer.emit("func.return")
        if self.operands:
            printer.emit(" ")
            printer.print_value_list(self.operands)
            printer.emit(" : ")
            printer.emit(", ".join(str(o.type) for o in self.operands))


@register_custom_parser("func.return")
def _parse_return(parser) -> ReturnOp:
    values = []
    if parser.current.kind == "PERCENT":
        values.append(parser.parse_value_use())
        while parser.accept(","):
            values.append(parser.parse_value_use())
        parser.expect(":")
        parser.parse_type()
        while parser.accept(","):
            parser.parse_type()
    return ReturnOp.create(values)


@register_op
class CallOp(Operation):
    """A direct call to a function symbol."""

    name = "func.call"
    custom_printed_attrs = frozenset(["callee"])

    @staticmethod
    def create(
        callee: str,
        arguments: list[SSAValue] | tuple[SSAValue, ...],
        result_types: list[TypeAttribute] | tuple[TypeAttribute, ...],
    ) -> "CallOp":
        op = CallOp(operands=list(arguments), result_types=list(result_types))
        op.attributes["callee"] = SymbolRefAttr(callee)
        return op

    @property
    def callee(self) -> str:
        attr = self.attributes["callee"]
        assert isinstance(attr, SymbolRefAttr)
        return attr.name

    def verify_(self) -> None:
        if not isinstance(self.attributes.get("callee"), SymbolRefAttr):
            raise VerifyError("func.call needs a 'callee' symbol attribute")

    def print_custom(self, printer: Printer) -> None:
        printer.emit(f"func.call @{self.callee}(")
        printer.print_value_list(self.operands)
        printer.emit(") : (")
        printer.emit(", ".join(str(o.type) for o in self.operands))
        printer.emit(") -> (")
        printer.emit(", ".join(str(r.type) for r in self.results))
        printer.emit(")")


@register_custom_parser("func.call")
def _parse_call(parser) -> CallOp:
    callee_token = parser.expect_kind("AT")
    parser.expect("(")
    arguments = parser.parse_value_use_list(")")
    parser.expect(")")
    parser.expect(":")
    function_type = parser.parse_function_type()
    return CallOp.create(callee_token.text[1:], arguments, list(function_type.results))
