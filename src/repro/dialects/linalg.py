"""A miniature linalg-style dialect: named high-level tensor computations.

This is the level the paper's compilation flow *starts* from (Figure 8: the
accfg clusters are produced by lowering a high-level program, step 1).
Operations reference flat buffers by base address and carry static shapes as
attributes; the ``convert-linalg-to-accfg`` pass tiles them into
setup/launch/await clusters for a chosen accelerator.
"""

from __future__ import annotations

from ..ir.attributes import IntegerAttr, StringAttr
from ..ir.operation import Operation, VerifyError
from ..ir.printer import Printer
from ..ir.registry import register_custom_parser, register_op
from ..ir.ssa import SSAValue


@register_op
class MatmulOp(Operation):
    """``C[m x n] = A[m x k] @ B[k x n]`` over int8 inputs / int32 output.

    Operands are byte base addresses of the three buffers; ``m``, ``k``,
    ``n`` are static shape attributes.  Row strides equal the row lengths
    (dense layout).
    """

    name = "linalg.matmul"
    custom_printed_attrs = frozenset(["m", "k", "n", "target", "tile_m", "tile_n"])

    @staticmethod
    def create(
        a: SSAValue,
        b: SSAValue,
        c: SSAValue,
        m: int,
        k: int,
        n: int,
        target: str | None = None,
        tile_m: int | None = None,
        tile_n: int | None = None,
    ) -> "MatmulOp":
        op = MatmulOp(operands=[a, b, c])
        op.attributes["m"] = IntegerAttr(m)
        op.attributes["k"] = IntegerAttr(k)
        op.attributes["n"] = IntegerAttr(n)
        if target is not None:
            op.attributes["target"] = StringAttr(target)
        if tile_m is not None:
            op.attributes["tile_m"] = IntegerAttr(tile_m)
        if tile_n is not None:
            op.attributes["tile_n"] = IntegerAttr(tile_n)
        return op

    @property
    def a(self) -> SSAValue:
        return self.operands[0]

    @property
    def b(self) -> SSAValue:
        return self.operands[1]

    @property
    def c(self) -> SSAValue:
        return self.operands[2]

    def dim(self, name: str) -> int:
        attr = self.attributes[name]
        assert isinstance(attr, IntegerAttr)
        return attr.value

    @property
    def target(self) -> str | None:
        """Per-op accelerator override for the lowering pass, if any."""
        attr = self.attributes.get("target")
        return attr.value if isinstance(attr, StringAttr) else None

    def tile(self, name: str) -> int | None:
        """Per-op lowering tile-shape hint (``tile_m``/``tile_n``), if any."""
        attr = self.attributes.get(name)
        return attr.value if isinstance(attr, IntegerAttr) else None

    def verify_(self) -> None:
        if len(self.operands) != 3:
            raise VerifyError("linalg.matmul needs A, B and C addresses")
        for name in ("m", "k", "n"):
            attr = self.attributes.get(name)
            if not isinstance(attr, IntegerAttr) or attr.value <= 0:
                raise VerifyError(f"linalg.matmul needs a positive '{name}'")
        for name in ("tile_m", "tile_n"):
            attr = self.attributes.get(name)
            if attr is not None and (
                not isinstance(attr, IntegerAttr) or attr.value <= 0
            ):
                raise VerifyError(f"linalg.matmul '{name}' must be positive")

    def print_custom(self, printer: Printer) -> None:
        printer.emit("linalg.matmul ins(")
        printer.print_value(self.a)
        printer.emit(", ")
        printer.print_value(self.b)
        printer.emit(") outs(")
        printer.print_value(self.c)
        printer.emit(
            f") dims({self.dim('m')} x {self.dim('k')} x {self.dim('n')})"
        )
        if self.target is not None:
            printer.emit(f' target("{self.target}")')
        tile_m, tile_n = self.tile("tile_m"), self.tile("tile_n")
        if tile_m is not None or tile_n is not None:
            printer.emit(f" tile({tile_m or 0} x {tile_n or 0})")


@register_custom_parser("linalg.matmul")
def _parse_matmul(parser) -> MatmulOp:
    parser.expect("ins")
    parser.expect("(")
    a = parser.parse_value_use()
    parser.expect(",")
    b = parser.parse_value_use()
    parser.expect(")")
    parser.expect("outs")
    parser.expect("(")
    c = parser.parse_value_use()
    parser.expect(")")
    parser.expect("dims")
    parser.expect("(")
    m = parser.parse_int()
    parser.expect("x")
    k = parser.parse_int()
    parser.expect("x")
    n = parser.parse_int()
    parser.expect(")")
    target: str | None = None
    tile_m: int | None = None
    tile_n: int | None = None
    if parser.accept("target"):
        parser.expect("(")
        target = parser.parse_string()
        parser.expect(")")
    if parser.accept("tile"):
        parser.expect("(")
        tile_m = parser.parse_int() or None
        parser.expect("x")
        tile_n = parser.parse_int() or None
        parser.expect(")")
    return MatmulOp.create(a, b, c, m, k, n, target, tile_m, tile_n)


ELEMENTWISE_KINDS = ("add", "mul", "max")


@register_op
class ElementwiseOp(Operation):
    """``out[i] = x[i] <kind> y[i]`` over ``n`` int32 elements."""

    name = "linalg.elementwise"
    custom_printed_attrs = frozenset(["n", "kind"])

    @staticmethod
    def create(
        x: SSAValue, y: SSAValue, out: SSAValue, n: int, kind: str = "add"
    ) -> "ElementwiseOp":
        if kind not in ELEMENTWISE_KINDS:
            raise VerifyError(f"unknown elementwise kind '{kind}'")
        op = ElementwiseOp(operands=[x, y, out])
        op.attributes["n"] = IntegerAttr(n)
        op.attributes["kind"] = StringAttr(kind)
        return op

    @property
    def x(self) -> SSAValue:
        return self.operands[0]

    @property
    def y(self) -> SSAValue:
        return self.operands[1]

    @property
    def out(self) -> SSAValue:
        return self.operands[2]

    @property
    def n(self) -> int:
        attr = self.attributes["n"]
        assert isinstance(attr, IntegerAttr)
        return attr.value

    @property
    def kind(self) -> str:
        attr = self.attributes["kind"]
        assert isinstance(attr, StringAttr)
        return attr.value

    def verify_(self) -> None:
        if len(self.operands) != 3:
            raise VerifyError("linalg.elementwise needs x, y and out addresses")
        attr = self.attributes.get("n")
        if not isinstance(attr, IntegerAttr) or attr.value <= 0:
            raise VerifyError("linalg.elementwise needs a positive 'n'")
        kind = self.attributes.get("kind")
        if not isinstance(kind, StringAttr) or kind.value not in ELEMENTWISE_KINDS:
            raise VerifyError("linalg.elementwise needs a valid 'kind'")

    def print_custom(self, printer: Printer) -> None:
        printer.emit(f'linalg.elementwise "{self.kind}" ins(')
        printer.print_value(self.x)
        printer.emit(", ")
        printer.print_value(self.y)
        printer.emit(") outs(")
        printer.print_value(self.out)
        printer.emit(f") n({self.n})")


@register_custom_parser("linalg.elementwise")
def _parse_elementwise(parser) -> ElementwiseOp:
    kind = parser.parse_string()
    parser.expect("ins")
    parser.expect("(")
    x = parser.parse_value_use()
    parser.expect(",")
    y = parser.parse_value_use()
    parser.expect(")")
    parser.expect("outs")
    parser.expect("(")
    out = parser.parse_value_use()
    parser.expect(")")
    parser.expect("n")
    parser.expect("(")
    n = parser.parse_int()
    parser.expect(")")
    return ElementwiseOp.create(x, y, out, n, kind)
