"""Figure 2 / Figure 7: the configuration-overhead timeline.

Figure 2 defines configuration overhead as the cycles where neither host nor
accelerator performs useful work; Figure 7 shows how dedup shortens the
configuration bursts and overlap hides them behind accelerator execution.
This experiment measures exactly those quantities on the OpenGeMM tiling
loop and renders the timelines.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..backends import get_accelerator
from ..core import format_series
from ..interp import run_module
from ..passes import pipeline_by_name
from ..sim import CoSimulator, SpanKind, Timeline
from ..workloads import build_opengemm_matmul

DEFAULT_SIZE = 16
VARIANTS = ("baseline", "dedup", "full")


@dataclass(frozen=True)
class TimelineBreakdown:
    """Where the cycles of one run went."""

    variant: str
    total_cycles: float
    config_cycles: float  # host writing registers / computing parameters
    host_stall_cycles: float  # host waiting on the accelerator
    accel_busy_cycles: float
    accel_idle_cycles: float  # accelerator waiting on configuration
    timeline: Timeline

    @property
    def overhead_fraction(self) -> float:
        """Fraction of the run during which the accelerator sat idle —
        the paper's configuration overhead of Figure 2."""
        if self.total_cycles == 0:
            return 0.0
        return self.accel_idle_cycles / self.total_cycles


@dataclass(frozen=True)
class Fig2Result:
    size: int
    breakdowns: dict[str, TimelineBreakdown]

    def breakdown(self, variant: str) -> TimelineBreakdown:
        return self.breakdowns[variant]


def measure(size: int, variant: str) -> TimelineBreakdown:
    workload = build_opengemm_matmul(size)
    pipeline_by_name(variant).run(workload.module)
    spec = get_accelerator("opengemm")
    sim = CoSimulator(memory=workload.memory, cost_model=spec.host_cost_model())
    run_module(workload.module, sim)
    if not workload.check():
        raise AssertionError(f"wrong result for variant {variant}")
    timeline = sim.timeline
    config = timeline.busy_time("host", SpanKind.SETUP) + timeline.busy_time(
        "host", SpanKind.CALC
    )
    return TimelineBreakdown(
        variant=variant,
        total_cycles=sim.total_cycles,
        config_cycles=config,
        host_stall_cycles=timeline.busy_time("host", SpanKind.STALL),
        accel_busy_cycles=timeline.busy_time("opengemm", SpanKind.ACCEL),
        accel_idle_cycles=timeline.idle_time("opengemm"),
        timeline=timeline,
    )


def run(size: int = DEFAULT_SIZE) -> Fig2Result:
    return Fig2Result(
        size, {variant: measure(size, variant) for variant in VARIANTS}
    )


def main(size: int = DEFAULT_SIZE) -> None:
    result = run(size)
    print(f"Figure 2/7 — timeline of configuration overhead ({size}x{size} matmul)")
    print(
        format_series(
            (
                "variant",
                "total",
                "config",
                "host stall",
                "accel busy",
                "accel idle",
                "overhead",
            ),
            [
                (
                    b.variant,
                    b.total_cycles,
                    b.config_cycles,
                    b.host_stall_cycles,
                    b.accel_busy_cycles,
                    b.accel_idle_cycles,
                    f"{b.overhead_fraction:.0%}",
                )
                for b in result.breakdowns.values()
            ],
        )
    )
    for variant in VARIANTS:
        breakdown = result.breakdown(variant)
        print(f"\n--- {variant} ---")
        print(breakdown.timeline.render_ascii(width=96))


if __name__ == "__main__":
    main()
