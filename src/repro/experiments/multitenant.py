"""Beyond the paper: the configuration wall under multi-tenancy.

The paper eliminates configuration overhead *within one program*.  A
serving system re-creates the wall at a higher level: when N logical
tenants time-share one accelerator, every context switch re-pays the
configuration cost, because a stateless per-tenant driver cannot trust the
registers the previous tenant left behind.  This experiment measures that
re-paid cost and the scheduler that eliminates it
(:mod:`repro.serve.scheduler`):

* **fifo** — arrival order, full re-setup on every tenant switch (the
  baseline any naive server implements);
* **config-aware** — batches same-configuration jobs, carries one shared
  shadow register file across tenants (cross-tenant dedup: only the fields
  whose values differ are written), bounded by a per-tenant quota and an
  aging guard so batching never starves anyone;
* **oracle** — perfect batching with full retention: the lower bound that
  defines ``repaid_config_cycles``.

Jobs are grounded in real IR: each tenant runs ``full``-optimized OpenGeMM
matmul modules (the paper's Figure 11 workload), and its configuration is
extracted from the module's ``accfg.setup`` ops.  The sweep crosses tenant
counts with config-similarity mixes — ``identical`` (every tenant the same
matmul size: switches are pure waste), ``clustered`` (two sizes), and
``distinct`` (every tenant its own size: batching can only group a
tenant's own jobs).

The acceptance invariant (CI rechecks it at a tiny sweep size): at EVERY
swept tenant count and mix, config-aware scheduling strictly reduces
re-paid configuration cycles vs FIFO, and never runs fewer jobs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..backends import get_accelerator
from ..core import format_series
from ..ioutil import atomic_write_json
from ..passes import pipeline_by_name
from ..serve.scheduler import TenantJob, compare_policies, job_from_module
from ..workloads.matmul import build_opengemm_matmul

ACCELERATOR = "opengemm"

DEFAULT_TENANT_COUNTS = (2, 4, 8, 16)
QUICK_TENANT_COUNTS = (2, 4)

#: jobs every tenant submits (round-robin arrivals: the worst interleaving)
JOBS_PER_TENANT = 3

#: matmul sizes the mixes draw tenant configurations from
SIZE_POOL = (16, 32, 48, 64, 80, 96, 112, 128)

MIXES = ("identical", "clustered", "distinct")

#: scheduler knobs under test; quota 2 < JOBS_PER_TENANT so the fairness
#: quota actually binds (config-aware sits above the oracle on mixed
#: sweeps instead of trivially matching it)
QUOTA = 2
MAX_WAIT = 8


@dataclass(frozen=True)
class SweepPoint:
    tenants: int
    mix: str
    results: dict  # policy -> ScheduleResult.as_dict()

    def as_dict(self) -> dict:
        return {"tenants": self.tenants, "mix": self.mix, **self.results}


def _tenant_sizes(tenants: int, mix: str) -> list[int]:
    if mix == "identical":
        return [SIZE_POOL[1]] * tenants
    if mix == "clustered":
        return [SIZE_POOL[i % 2] for i in range(tenants)]
    if mix == "distinct":
        return [SIZE_POOL[i % len(SIZE_POOL)] for i in range(tenants)]
    raise ValueError(f"unknown mix {mix!r}")


def build_jobs(
    tenants: int, mix: str, jobs_per_tenant: int = JOBS_PER_TENANT
) -> list[TenantJob]:
    """Round-robin arrivals of real optimized-module configurations."""
    sizes = _tenant_sizes(tenants, mix)
    template: dict[int, TenantJob] = {}
    for size in sorted(set(sizes)):
        workload = build_opengemm_matmul(size)
        pipeline_by_name("full").run(workload.module)
        template[size] = job_from_module(
            workload.module, ACCELERATOR, tenant="template", arrival=0
        )
    jobs: list[TenantJob] = []
    arrival = 0
    for _ in range(jobs_per_tenant):
        for index, size in enumerate(sizes):
            base = template[size]
            jobs.append(
                TenantJob(
                    tenant=f"tenant{index}",
                    config=base.config,
                    compute_cycles=base.compute_cycles,
                    arrival=arrival,
                )
            )
            arrival += 1
    return jobs


def run_point(tenants: int, mix: str) -> SweepPoint:
    spec = get_accelerator(ACCELERATOR)
    jobs = build_jobs(tenants, mix)
    results = compare_policies(jobs, spec, quota=QUOTA, max_wait=MAX_WAIT)
    return SweepPoint(
        tenants=tenants,
        mix=mix,
        results={name: result.as_dict() for name, result in results.items()},
    )


def run(tenant_counts: tuple[int, ...] = DEFAULT_TENANT_COUNTS) -> list[SweepPoint]:
    points = [
        run_point(tenants, mix)
        for tenants in tenant_counts
        for mix in MIXES
    ]
    _check_invariants(points)
    return points


def _check_invariants(points: list[SweepPoint]) -> None:
    """The acceptance invariants; a violation is an experiment failure."""
    for point in points:
        fifo = point.results["fifo"]
        aware = point.results["config-aware"]
        label = f"{point.tenants} tenant(s), {point.mix} mix"
        if aware["jobs"] != fifo["jobs"]:
            raise RuntimeError(
                f"{label}: config-aware ran {aware['jobs']} jobs vs FIFO's "
                f"{fifo['jobs']} — schedulers must run identical job sets"
            )
        if not aware["repaid_config_cycles"] < fifo["repaid_config_cycles"]:
            raise RuntimeError(
                f"{label}: config-aware re-paid "
                f"{aware['repaid_config_cycles']} config cycles vs FIFO's "
                f"{fifo['repaid_config_cycles']} — expected strictly fewer"
            )
        if not aware["total_cycles"] < fifo["total_cycles"]:
            raise RuntimeError(
                f"{label}: config-aware total {aware['total_cycles']} cycles "
                f"vs FIFO's {fifo['total_cycles']} — batching must not lose"
            )


def results_doc(points: list[SweepPoint]) -> dict:
    return {
        "experiment": "multitenant",
        "accelerator": ACCELERATOR,
        "jobs_per_tenant": JOBS_PER_TENANT,
        "quota": QUOTA,
        "max_wait": MAX_WAIT,
        "points": [point.as_dict() for point in points],
    }


def main(quick: bool = False, out: str | None = "multitenant.json") -> None:
    tenant_counts = QUICK_TENANT_COUNTS if quick else DEFAULT_TENANT_COUNTS
    points = run(tenant_counts)

    print(
        f"Multi-tenant configuration wall: {ACCELERATOR} matmuls, "
        f"{JOBS_PER_TENANT} jobs/tenant, quota {QUOTA}, max wait {MAX_WAIT}"
    )
    header = (
        "tenants",
        "mix",
        "policy",
        "cfg-cycles",
        "repaid",
        "switches",
        "jobs/kcycle",
        "max-wait",
    )
    rows = []
    for point in points:
        for policy in ("fifo", "config-aware", "oracle"):
            result = point.results[policy]
            rows.append(
                (
                    point.tenants,
                    point.mix,
                    policy,
                    result["config_cycles"],
                    result["repaid_config_cycles"],
                    result["context_switches"],
                    result["throughput_jobs_per_kcycle"],
                    result["max_wait"],
                )
            )
    print(format_series(header, rows))

    print()
    print("Re-paid configuration cycles, FIFO -> config-aware:")
    for point in points:
        fifo = point.results["fifo"]
        aware = point.results["config-aware"]
        saved = fifo["repaid_config_cycles"] - aware["repaid_config_cycles"]
        pct = (
            100.0 * saved / fifo["repaid_config_cycles"]
            if fifo["repaid_config_cycles"]
            else 0.0
        )
        print(
            f"  {point.tenants:3d} tenants, {point.mix:9s}: "
            f"{fifo['repaid_config_cycles']:10.1f} -> "
            f"{aware['repaid_config_cycles']:8.1f}  (-{pct:5.1f}%)"
        )

    if out:
        atomic_write_json(out, results_doc(points))
        print(f"\nwrote {out}")


if __name__ == "__main__":
    main()
