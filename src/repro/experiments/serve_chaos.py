"""Beyond the paper: re-paid configuration cost vs serve-layer fault rate.

The fault-recovery experiment (PR 5) priced resilience on ONE device:
every recovery re-pays configuration cost.  The multitenant experiment
(PR 8) priced *interleaving*: every tenant switch re-pays it.  This sweep
prices their product — the serving boundary.  When a serve-layer fault
(connection reset, compile-thread death, a missed deadline) eats a
response, the tenant re-submits: the job's configuration was already paid
— possibly deduplicated into a batch by the config-aware scheduler — and
now the SAME job re-arrives at the tail of the queue, far from its batch,
and pays again.  :func:`repro.serve.scheduler.with_resubmissions` models
exactly that.

Faults are drawn per original job through the shared
:class:`~repro.faults.model.DrawStreams` idiom with a *fixed* uniform
draw compared against the swept rate: the draw for job k never changes
across the sweep, so a job that fails at rate r fails at every r' > r —
failure sets are nested by construction and the re-paid cost curve is
provably monotone in the fault rate (any non-monotonicity would be a
scheduler bug, and the invariant check treats it as one).

Acceptance invariants (CI re-runs them at the quick size):

* both policies run exactly ``submitted + resubmitted`` jobs at every rate;
* config-aware re-pays no more configuration cycles than FIFO at every
  rate, and strictly fewer at the top rate (where re-submission scatter is
  worst);
* each policy's re-paid cost is nondecreasing in the fault rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..backends import get_accelerator
from ..core import format_series
from ..faults.model import DrawStreams
from ..ioutil import atomic_write_json
from ..serve.scheduler import compare_policies, with_resubmissions
from .multitenant import ACCELERATOR, build_jobs

DEFAULT_RATES = (0.0, 0.05, 0.1, 0.2, 0.4)
QUICK_RATES = (0.0, 0.1, 0.4)

DEFAULT_TENANTS = 8
QUICK_TENANTS = 4

#: jobs per tenant: more than multitenant's default so re-submission
#: scatter has batches to break
JOBS_PER_TENANT = 4

#: every tenant its own configuration: a re-submitted job's only cheap slot
#: is inside its tenant's batch, which the fault already broke
MIX = "distinct"

#: scheduler knobs: the quota binds (quota < JOBS_PER_TENANT) and the
#: bounded lookahead keeps tail re-submissions from being folded back into
#: their original batch for free — the realistic serving regime, where the
#: scheduler cannot reorder arbitrarily far
QUOTA = 2
MAX_WAIT = 8
WINDOW = 8

SEED = 0


def failed_arrivals(
    n_jobs: int, rate: float, seed: int = SEED
) -> list[int]:
    """Arrival indices whose responses the serve layer lost at ``rate``.

    One fixed draw per job (stream ``serve-fault``), compared against the
    rate: the failure sets are nested across rates, which is what makes
    the sweep's cost curve monotone by construction.
    """
    streams = DrawStreams(seed)
    failed = []
    for arrival in range(n_jobs):
        _, rng = streams.draw("serve-fault")
        if rng.random() < rate:
            failed.append(arrival)
    return failed


@dataclass(frozen=True)
class SweepPoint:
    rate: float
    submitted: int
    resubmitted: int
    results: dict  # policy -> ScheduleResult.as_dict()

    def as_dict(self) -> dict:
        return {
            "rate": self.rate,
            "submitted": self.submitted,
            "resubmitted": self.resubmitted,
            **self.results,
        }


def run_point(rate: float, tenants: int) -> SweepPoint:
    spec = get_accelerator(ACCELERATOR)
    jobs = build_jobs(tenants, MIX, jobs_per_tenant=JOBS_PER_TENANT)
    failed = failed_arrivals(len(jobs), rate)
    combined = with_resubmissions(jobs, failed)
    results = compare_policies(
        combined, spec, quota=QUOTA, max_wait=MAX_WAIT, window=WINDOW
    )
    return SweepPoint(
        rate=rate,
        submitted=len(jobs),
        resubmitted=len(failed),
        results={name: result.as_dict() for name, result in results.items()},
    )


def run(
    rates: tuple[float, ...] = DEFAULT_RATES, tenants: int = DEFAULT_TENANTS
) -> list[SweepPoint]:
    points = [run_point(rate, tenants) for rate in rates]
    _check_invariants(points)
    return points


def _check_invariants(points: list[SweepPoint]) -> None:
    """The acceptance invariants; a violation is an experiment failure."""
    for point in points:
        fifo = point.results["fifo"]
        aware = point.results["config-aware"]
        label = f"fault rate {point.rate:g}"
        expected_jobs = point.submitted + point.resubmitted
        for policy, result in (("fifo", fifo), ("config-aware", aware)):
            if result["jobs"] != expected_jobs:
                raise RuntimeError(
                    f"{label}: {policy} ran {result['jobs']} jobs, expected "
                    f"{point.submitted} submitted + {point.resubmitted} "
                    f"resubmitted"
                )
        if aware["repaid_config_cycles"] > fifo["repaid_config_cycles"]:
            raise RuntimeError(
                f"{label}: config-aware re-paid "
                f"{aware['repaid_config_cycles']} config cycles vs FIFO's "
                f"{fifo['repaid_config_cycles']} — must never re-pay more"
            )
    top = points[-1]
    if points[-1].resubmitted and not (
        top.results["config-aware"]["repaid_config_cycles"]
        < top.results["fifo"]["repaid_config_cycles"]
    ):
        raise RuntimeError(
            "top fault rate: config-aware must re-pay strictly fewer "
            "config cycles than FIFO"
        )
    for policy in ("fifo", "config-aware"):
        previous = None
        for point in points:
            repaid = point.results[policy]["repaid_config_cycles"]
            if previous is not None and repaid < previous - 1e-9:
                raise RuntimeError(
                    f"{policy}: re-paid cycles fell from {previous} to "
                    f"{repaid} as the fault rate rose — failure sets are "
                    f"nested, the curve must be monotone"
                )
            previous = repaid


def results_doc(points: list[SweepPoint], tenants: int) -> dict:
    return {
        "experiment": "serve_chaos",
        "accelerator": ACCELERATOR,
        "tenants": tenants,
        "jobs_per_tenant": JOBS_PER_TENANT,
        "mix": MIX,
        "quota": QUOTA,
        "max_wait": MAX_WAIT,
        "window": WINDOW,
        "seed": SEED,
        "points": [point.as_dict() for point in points],
    }


def main(quick: bool = False, out: str | None = "serve_chaos.json") -> None:
    rates = QUICK_RATES if quick else DEFAULT_RATES
    tenants = QUICK_TENANTS if quick else DEFAULT_TENANTS
    points = run(rates, tenants)

    print(
        f"Serve-layer faults vs re-paid configuration cost: {ACCELERATOR} "
        f"matmuls, {tenants} tenants x {JOBS_PER_TENANT} jobs, {MIX} mix, "
        f"seed {SEED}"
    )
    header = (
        "rate",
        "resubmitted",
        "policy",
        "cfg-cycles",
        "repaid",
        "switches",
        "jobs/kcycle",
    )
    rows = []
    for point in points:
        for policy in ("fifo", "config-aware", "oracle"):
            result = point.results[policy]
            rows.append(
                (
                    point.rate,
                    point.resubmitted,
                    policy,
                    result["config_cycles"],
                    result["repaid_config_cycles"],
                    result["context_switches"],
                    result["throughput_jobs_per_kcycle"],
                )
            )
    print(format_series(header, rows))

    print()
    print("Re-paid configuration cycles by fault rate, FIFO -> config-aware:")
    for point in points:
        fifo = point.results["fifo"]["repaid_config_cycles"]
        aware = point.results["config-aware"]["repaid_config_cycles"]
        print(
            f"  rate {point.rate:4.2f} ({point.resubmitted:3d} re-submitted): "
            f"{fifo:10.1f} -> {aware:8.1f}"
        )

    if out:
        atomic_write_json(out, results_doc(points, tenants))
        print(f"\nwrote {out}")


if __name__ == "__main__":
    import sys

    main(quick="--quick" in sys.argv[1:])
