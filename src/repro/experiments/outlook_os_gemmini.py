"""Beyond the paper: Gemmini's output-stationary flow.

Section 6.1 predicts: "In Gemmini's output stationary flow (which we do not
evaluate here), we would expect to see larger performance improvements"
because the OS kernel sets up more parameters per invocation.  This
experiment runs both dataflows through the same harness and checks the
prediction: the accfg uplift on the output-stationary kernel should exceed
the weight-stationary one.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import format_series, geomean
from ..workloads import build_gemmini_matmul
from ..workloads.matmul import build_gemmini_os_matmul
from .common import run_workload
from .fig10_gemmini import BASELINE_PIPELINE, OPTIMIZED_PIPELINE, Fig10Row

DEFAULT_SIZES = (32, 64, 128)


@dataclass(frozen=True)
class OutlookRow:
    size: int
    ws_uplift: float
    os_uplift: float


@dataclass(frozen=True)
class OutlookResult:
    rows: list[OutlookRow]

    @property
    def ws_geomean(self) -> float:
        return geomean([row.ws_uplift for row in self.rows])

    @property
    def os_geomean(self) -> float:
        return geomean([row.os_uplift for row in self.rows])

    @property
    def prediction_holds(self) -> bool:
        return self.os_geomean > self.ws_geomean


def _uplift(builder, size: int, functional: bool) -> float:
    baseline = run_workload(builder(size), BASELINE_PIPELINE, functional)
    optimized = run_workload(builder(size), OPTIMIZED_PIPELINE, functional)
    if functional and not (baseline.correct and optimized.correct):
        raise AssertionError(f"wrong result at size {size}")
    row = Fig10Row(size, baseline, optimized)
    return row.uplift


def run(sizes=DEFAULT_SIZES, functional: bool = True) -> OutlookResult:
    rows = []
    for size in sizes:
        rows.append(
            OutlookRow(
                size,
                ws_uplift=_uplift(build_gemmini_matmul, size, functional),
                os_uplift=_uplift(build_gemmini_os_matmul, size, functional),
            )
        )
    return OutlookResult(rows)


def main(sizes=DEFAULT_SIZES) -> None:
    result = run(sizes)
    print("Outlook — weight- vs output-stationary accfg uplift on Gemmini")
    print("(paper predicts larger improvements for output-stationary)\n")
    print(
        format_series(
            ("size", "WS uplift", "OS uplift"),
            [(row.size, row.ws_uplift, row.os_uplift) for row in result.rows],
        )
    )
    print(
        f"\ngeomean: WS {result.ws_geomean:.3f}x vs OS {result.os_geomean:.3f}x "
        f"-> prediction {'holds' if result.prediction_holds else 'DOES NOT hold'}"
    )


if __name__ == "__main__":
    main()
