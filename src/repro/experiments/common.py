"""Shared experiment plumbing: run one workload through one pipeline on the
right host model and collect metrics."""

from __future__ import annotations

from dataclasses import dataclass

from ..backends import get_accelerator
from ..interp import run_module
from ..passes import pipeline_by_name
from ..sim import CoSimulator
from ..sim.metrics import RunMetrics, collect_metrics
from ..workloads.matmul import MatmulWorkload


@dataclass(frozen=True)
class ExperimentRun:
    """One (workload, pipeline) measurement."""

    accelerator: str
    size: int
    pipeline: str
    metrics: RunMetrics
    correct: bool

    @property
    def cycles(self) -> float:
        return self.metrics.total_cycles

    @property
    def performance(self) -> float:
        return self.metrics.performance


def run_workload(
    workload: MatmulWorkload,
    pipeline: str,
    functional: bool = True,
    check: bool = True,
) -> ExperimentRun:
    """Optimize ``workload`` with the named pipeline, co-simulate it, and
    verify the numerical result against numpy."""
    pipeline_by_name(pipeline).run(workload.module)
    spec = get_accelerator(workload.accelerator)
    sim = CoSimulator(
        memory=workload.memory,
        cost_model=spec.host_cost_model(),
        functional=functional,
    )
    run_module(workload.module, sim, args=workload.main_args)
    metrics = collect_metrics(sim, workload.accelerator)
    correct = workload.check() if (functional and check) else True
    return ExperimentRun(
        accelerator=workload.accelerator,
        size=workload.size,
        pipeline=pipeline,
        metrics=metrics,
        correct=correct,
    )
