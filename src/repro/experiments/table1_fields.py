"""Table 1: fields of the gemmini_loop_ws sequence (names, meaning, bits).

Regenerates the paper's Table 1 from the Gemmini backend's field
specifications, plus the packing summary the configuration-bandwidth
numbers rest on (16-byte RoCC writes).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..backends.gemmini import GEMMINI, LOOP_WS_FIELDS, ROCC_BYTES
from ..isa.encoding import FieldSpec, pack_fields

#: The paper groups related fields into single rows; reproduce that grouping.
TABLE1_ROWS: tuple[tuple[str, str, int], ...] = (
    ("A, B, D, C", "Address in main memory to matrices", 64),
    ("I, J, K", "Sizes of the matrices", 16),
    ("pad_{I,J,K}", "Padding applied to sizes of the matrices", 16),
    ("stride_{A,B,D,C}", "Row strides to access matrices in memory", 64),
    ("act", "Activation function application on output", 6),
    ("{A,B}_transpose", "Whether input matrix is transposed", 1),
)


@dataclass(frozen=True)
class Table1Result:
    fields: tuple[FieldSpec, ...]
    total_bits: int
    packed_words: int
    rocc_writes: int
    config_bytes: int


def run() -> Table1Result:
    fields = LOOP_WS_FIELDS
    words = pack_fields(list(fields), word_bits=64)
    rocc = GEMMINI.rocc_writes([spec.name for spec in fields])
    return Table1Result(
        fields=fields,
        total_bits=sum(spec.bits for spec in fields),
        packed_words=len(words),
        rocc_writes=rocc,
        config_bytes=rocc * ROCC_BYTES,
    )


def main() -> None:
    result = run()
    print("Table 1 — gemmini_loop_ws configuration fields\n")
    width = max(len(row[0]) for row in TABLE1_ROWS) + 2
    print(f"{'Field':<{width}}{'Meaning':<48}{'Bits':>5}")
    print("-" * (width + 53))
    for name, meaning, bits in TABLE1_ROWS:
        print(f"{name:<{width}}{meaning:<48}{bits:>5}")
    print(
        f"\n{len(result.fields)} fields, {result.total_bits} bits total; "
        f"packs into {result.packed_words} operand words = "
        f"{result.rocc_writes} RoCC writes = {result.config_bytes} bytes"
    )


if __name__ == "__main__":
    main()
