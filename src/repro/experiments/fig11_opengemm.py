"""Figure 11: performance of tiled matmul on OpenGeMM under the four
optimization levels (base / dedup / overlap / both).

Reproduces the paper's Section 6.2 methodology: cycle-level co-simulation of
the tiling loop with scratchpad-resident data (no memory copies), all
binaries built through the accfg flow, with the base applying neither
deduplication nor overlap.

Paper's claims (artifact appendix A.6): geomean speedup 1.99x, up to 2.71x
for some sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..backends.opengemm import OPENGEMM
from ..core import format_series, geomean
from ..workloads.matmul import build_opengemm_matmul
from .common import ExperimentRun, run_workload

DEFAULT_SIZES = (16, 32, 64, 128, 256)
FULL_SIZES = (16, 32, 64, 128, 256, 512)
VARIANTS = ("baseline", "dedup", "overlap", "full")


@dataclass(frozen=True)
class Fig11Row:
    """One matrix size: the four optimization levels."""

    size: int
    runs: dict[str, ExperimentRun]

    def speedup(self, variant: str) -> float:
        return self.runs["baseline"].cycles / self.runs[variant].cycles

    def performance(self, variant: str) -> float:
        return self.runs[variant].performance


@dataclass(frozen=True)
class Fig11Result:
    rows: list[Fig11Row]

    def geomean_speedup(self, variant: str = "full") -> float:
        return geomean([row.speedup(variant) for row in self.rows])

    def max_speedup(self, variant: str = "full") -> float:
        return max(row.speedup(variant) for row in self.rows)


def _sweep_point(payload: tuple[int, bool]) -> Fig11Row:
    """One size point — all variants (module-level for worker pickling)."""
    size, functional = payload
    runs: dict[str, ExperimentRun] = {}
    for variant in VARIANTS:
        result = run_workload(build_opengemm_matmul(size), variant, functional)
        if functional and not result.correct:
            raise AssertionError(
                f"wrong matmul result: size {size}, variant {variant}"
            )
        runs[variant] = result
    return Fig11Row(size, runs)


def run(sizes=DEFAULT_SIZES, functional: bool = True, jobs: int = 1) -> Fig11Result:
    from ..testing.parallel import parallel_map

    rows = parallel_map(
        _sweep_point, [(size, functional) for size in sizes], jobs=jobs
    )
    return Fig11Result(rows)


def main(sizes=FULL_SIZES, jobs: int = 1) -> None:
    result = run(sizes, jobs=jobs)
    print("Figure 11 — OpenGeMM tiled matmul, performance by optimization")
    print(f"P_peak = {OPENGEMM.peak_ops_per_cycle} ops/cycle\n")
    print(
        format_series(
            ("size", "base o/c", "dedup", "overlap", "both", "both speedup"),
            [
                (
                    row.size,
                    row.performance("baseline"),
                    row.performance("dedup"),
                    row.performance("overlap"),
                    row.performance("full"),
                    row.speedup("full"),
                )
                for row in result.rows
            ],
        )
    )
    print(
        f"\ngeomean speedup (both): {result.geomean_speedup():.3f}x "
        f"(paper: 1.99x), max: {result.max_speedup():.3f}x (paper: 2.71x)"
    )


if __name__ == "__main__":
    main()
