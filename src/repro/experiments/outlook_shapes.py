"""Beyond the paper: how matrix *shape* moves a workload along the wall.

The paper sweeps square matmuls; inference layers are usually rectangular.
At constant arithmetic volume, a skinny inner dimension means more tiles —
more configuration per op (lower I_OC) — pushing the workload deeper into
the configuration-bound region, where the accfg optimizations matter most.
This experiment quantifies that with the rectangular OpenGeMM generator.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..backends.opengemm import OPENGEMM
from ..core import format_series, roofline_for_spec
from ..core.roofline import Boundness, ConfigRoofline
from ..workloads.generators import build_opengemm_rect_matmul
from .common import ExperimentRun, run_workload

#: Constant-volume shapes: m x k x n with m*k*n = 2^15 ops/2.
DEFAULT_SHAPES = ((64, 8, 64), (32, 32, 32), (16, 128, 16))


@dataclass(frozen=True)
class ShapeRow:
    shape: tuple[int, int, int]
    baseline: ExperimentRun
    optimized: ExperimentRun

    @property
    def label(self) -> str:
        m, k, n = self.shape
        return f"{m}x{k}x{n}"

    @property
    def speedup(self) -> float:
        return self.baseline.cycles / self.optimized.cycles

    @property
    def baseline_i_oc(self) -> float:
        return self.baseline.metrics.operation_to_config_intensity


@dataclass(frozen=True)
class ShapesResult:
    rows: list[ShapeRow]
    roofline: ConfigRoofline

    def boundness(self, row: ShapeRow) -> Boundness:
        return self.roofline.boundness(row.baseline_i_oc)


def run(shapes=DEFAULT_SHAPES, functional: bool = True) -> ShapesResult:
    rows = []
    for m, k, n in shapes:
        baseline = run_workload(
            build_opengemm_rect_matmul(m, k, n), "baseline", functional
        )
        optimized = run_workload(
            build_opengemm_rect_matmul(m, k, n), "full", functional
        )
        if functional and not (baseline.correct and optimized.correct):
            raise AssertionError(f"wrong result for shape {m}x{k}x{n}")
        rows.append(ShapeRow((m, k, n), baseline, optimized))
    roofline = roofline_for_spec(OPENGEMM, OPENGEMM.host_cost_model())
    return ShapesResult(rows, roofline)


def main(shapes=DEFAULT_SHAPES) -> None:
    result = run(shapes)
    print("Outlook — matrix shape vs the configuration wall (OpenGeMM)")
    print("(constant arithmetic volume; skinny K = more tiles = lower I_OC)\n")
    print(
        format_series(
            ("shape", "base I_OC", "region", "speedup (full)"),
            [
                (
                    row.label,
                    row.baseline_i_oc,
                    result.boundness(row).value,
                    row.speedup,
                )
                for row in result.rows
            ],
        )
    )
    print(
        "\nlower-I_OC shapes sit deeper in the configuration-bound region "
        "and gain the most from dedup + overlap."
    )


if __name__ == "__main__":
    main()
