"""Beyond the paper: quantifying the reconfigurability trade-off (Figure 1).

The paper's framing claim: "every added configuration option also directly
reduces the achievable performance without proper optimizations — a more
reconfigurable accelerator may result in the system performing worse as a
whole."  This experiment measures that curve directly: a family of vector
engines that differ only in how many configuration knobs their interface
exposes runs the same workload, naively and through the accfg pipeline.

Expected shape: baseline utilization decays with knob count (the wall grows
with flexibility); the optimized curve stays nearly flat because the added
knobs are invocation-invariant and deduplication removes their rewrites —
the compiler buys back the flexibility.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..backends import get_accelerator_or_none, register_accelerator
from ..backends.toyvec import ToyVecSpec
from ..core import format_series
from ..interp import run_module
from ..ir import i64
from ..isa.encoding import FieldSpec
from ..passes import pipeline_by_name
from ..sim import CoSimulator
from ..sim.metrics import collect_metrics
from ..workloads import build_function, new_module

DEFAULT_KNOB_COUNTS = (0, 4, 16, 32)
CHUNKS = 16
CHUNK_LENGTH = 64


def _knobbed_spec(extra_knobs: int) -> str:
    """A toyvec variant whose interface adds ``extra_knobs`` 32-bit CSRs."""
    name = f"toyvec-k{extra_knobs}"
    if get_accelerator_or_none(name) is None:
        fields = dict(ToyVecSpec.fields)
        for index in range(extra_knobs):
            spec = FieldSpec(f"knob{index}", 32, "A flexibility option")
            fields[spec.name] = spec
        cls = type(
            f"KnobbedToyVec{extra_knobs}",
            (ToyVecSpec,),
            {"name": name, "fields": fields},
        )
        register_accelerator(cls())
    return name


def _build_workload(accelerator: str, extra_knobs: int):
    """Chunked vector work where the naive frontend re-writes every knob."""
    import numpy as np

    from repro.sim import Memory

    memory = Memory()
    x = memory.place(np.arange(CHUNKS * CHUNK_LENGTH, dtype=np.int32))
    y = memory.place(np.arange(CHUNKS * CHUNK_LENGTH, dtype=np.int32))
    out = memory.alloc(CHUNKS * CHUNK_LENGTH, np.int32)
    module = new_module()
    with build_function(module, "main") as (gen, _):
        zero = gen.const(0)
        one = gen.const(1)
        chunks = gen.const(CHUNKS)
        with gen.loop(zero, chunks, one) as (_, i):
            bytes_off = gen.mul(gen.mul(i, gen.const(CHUNK_LENGTH)), gen.const(4))
            fields = [
                ("ptr_x", gen.add(gen.const(x.addr), bytes_off)),
                ("ptr_y", gen.add(gen.const(y.addr), bytes_off)),
                ("ptr_out", gen.add(gen.const(out.addr), bytes_off)),
                ("n", gen.const(CHUNK_LENGTH)),
                ("op", gen.const(0)),
            ]
            for index in range(extra_knobs):
                fields.append((f"knob{index}", gen.const(index, i64)))
            state = gen.setup(accelerator, fields)
            gen.await_(gen.launch(state))
    return module, memory, (x, y, out)


@dataclass(frozen=True)
class TradeoffRow:
    knobs: int
    baseline_utilization: float
    optimized_utilization: float

    @property
    def recovered(self) -> float:
        """How much of the flexibility tax the compiler buys back."""
        return self.optimized_utilization / self.baseline_utilization


@dataclass(frozen=True)
class TradeoffResult:
    rows: list[TradeoffRow]

    @property
    def baseline_decay(self) -> float:
        """Utilization ratio, most- vs least-configurable, unoptimized."""
        return self.rows[-1].baseline_utilization / self.rows[0].baseline_utilization

    @property
    def optimized_decay(self) -> float:
        return self.rows[-1].optimized_utilization / self.rows[0].optimized_utilization


def _utilization(accelerator: str, extra_knobs: int, pipeline: str) -> float:
    module, memory, buffers = _build_workload(accelerator, extra_knobs)
    pipeline_by_name(pipeline).run(module)
    spec = get_accelerator_or_none(accelerator)
    sim = CoSimulator(memory=memory, cost_model=spec.host_cost_model())
    run_module(module, sim)
    x, y, out = buffers
    assert (out.array == x.array + y.array).all()
    return collect_metrics(sim, accelerator).utilization


def run(knob_counts=DEFAULT_KNOB_COUNTS) -> TradeoffResult:
    rows = []
    for knobs in knob_counts:
        accelerator = _knobbed_spec(knobs)
        rows.append(
            TradeoffRow(
                knobs=knobs,
                baseline_utilization=_utilization(accelerator, knobs, "baseline"),
                optimized_utilization=_utilization(accelerator, knobs, "full"),
            )
        )
    return TradeoffResult(rows)


def main(knob_counts=DEFAULT_KNOB_COUNTS) -> None:
    result = run(knob_counts)
    print("Outlook — the reconfigurability trade-off (Figure 1's claim)")
    print("(same workload; the interface grows by N invariant knobs)\n")
    print(
        format_series(
            ("extra knobs", "base util", "accfg util", "recovered"),
            [
                (
                    row.knobs,
                    row.baseline_utilization,
                    row.optimized_utilization,
                    row.recovered,
                )
                for row in result.rows
            ],
        )
    )
    print(
        f"\nadding {result.rows[-1].knobs} knobs costs the baseline "
        f"{(1 - result.baseline_decay) * 100:.0f}% of its utilization but the "
        f"optimized flow only {(1 - result.optimized_decay) * 100:.0f}% — the "
        "compiler buys the flexibility back."
    )


if __name__ == "__main__":
    main()
