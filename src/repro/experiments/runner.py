"""Run every experiment in sequence (the repository's `run-all`).

Usage::

    python -m repro.experiments.runner [--quick] [--jobs N]

``--quick`` restricts the size sweeps so the whole suite finishes in well
under a minute; the default sweep matches the paper's figures.  ``--jobs``
fans the size sweeps (fig10/fig11/fig12) out over worker processes, one
sweep point per task; results are identical to a sequential run.
"""

from __future__ import annotations

import sys

from . import (
    example_4_6,
    fault_recovery,
    fig2_timeline,
    fig10_gemmini,
    fig11_opengemm,
    fig12_roofline,
    figure4_rooflines,
    multitenant,
    serve_chaos,
    table1_fields,
)


def main(argv: list[str] | None = None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    jobs = 1
    if "--jobs" in argv:
        jobs = int(argv[argv.index("--jobs") + 1])
    separator = "\n" + "=" * 72 + "\n"

    print(separator)
    table1_fields.main()
    print(separator)
    example_4_6.main()
    print(separator)
    figure4_rooflines.main()
    print(separator)
    fig10_gemmini.main(
        sizes=(16, 32, 64) if quick else fig10_gemmini.DEFAULT_SIZES,
        jobs=jobs,
    )
    print(separator)
    fig11_opengemm.main(
        sizes=(16, 32, 64) if quick else fig11_opengemm.FULL_SIZES,
        jobs=jobs,
    )
    print(separator)
    fig12_roofline.main(
        sizes=(32, 64) if quick else fig12_roofline.DEFAULT_SIZES,
        jobs=jobs,
    )
    print(separator)
    fig2_timeline.main()
    print(separator)
    fault_recovery.main(quick=quick)
    print(separator)
    multitenant.main(quick=quick)
    print(separator)
    serve_chaos.main(quick=quick)
    print(separator)


if __name__ == "__main__":
    main()
