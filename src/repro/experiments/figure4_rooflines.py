"""Figures 4 and 5: the configuration roofline curves and the roofsurface.

Generates the model-only figures: the sequential vs. concurrent rooflines
with their knee point and bound regions (Figure 4), and a sampled version of
the combined 3-D "roofsurface" of Eq. 5 (Figure 5)."""

from __future__ import annotations

from dataclasses import dataclass

from ..core import ConfigRoofline, format_series

#: A representative accelerator for the illustrative figures.
DEFAULT_ROOFLINE = ConfigRoofline(
    peak_performance=512.0, config_bandwidth=2.0, memory_bandwidth=64.0
)


@dataclass(frozen=True)
class Fig4Result:
    roofline: ConfigRoofline
    samples: list[tuple[float, float, float]]  # (I_OC, sequential, concurrent)

    @property
    def knee(self) -> float:
        return self.roofline.knee_intensity

    def max_gap_location(self) -> float:
        """The I_OC with the largest concurrent/sequential ratio — the paper
        proves this is the knee point (Section 4.3)."""
        best_i_oc, best_ratio = 0.0, 0.0
        for i_oc, sequential, concurrent in self.samples:
            if sequential > 0 and concurrent / sequential > best_ratio:
                best_ratio = concurrent / sequential
                best_i_oc = i_oc
        return best_i_oc


def run(
    roofline: ConfigRoofline = DEFAULT_ROOFLINE, points: int = 49
) -> Fig4Result:
    samples = roofline.sweep(points=points)
    return Fig4Result(roofline, samples)


@dataclass(frozen=True)
class Fig5Result:
    roofline: ConfigRoofline
    operational_intensities: list[float]
    i_ocs: list[float]
    surface: list[list[float]]


def run_roofsurface(
    roofline: ConfigRoofline = DEFAULT_ROOFLINE, points: int = 9
) -> Fig5Result:
    i_ops = [2.0**i for i in range(points)]
    i_ocs = [2.0**i for i in range(points)]
    return Fig5Result(roofline, i_ops, i_ocs, roofline.roofsurface(i_ops, i_ocs))


def main() -> None:
    result = run()
    roofline = result.roofline
    print("Figure 4 — sequential vs concurrent configuration rooflines")
    print(
        f"P_peak={roofline.peak_performance:g}, "
        f"BW_config={roofline.config_bandwidth:g} B/cycle, "
        f"knee at I_OC={result.knee:g} ops/B\n"
    )
    rows = []
    for i_oc, sequential, concurrent in result.samples[::6]:
        rows.append(
            (
                i_oc,
                sequential,
                concurrent,
                roofline.boundness(i_oc).value,
            )
        )
    print(format_series(("I_OC", "sequential", "concurrent", "region"), rows))
    print(
        f"\nlargest seq/conc gap at I_OC ≈ {result.max_gap_location():.1f} "
        f"(knee: {result.knee:.1f}) — overlap pays off most at the knee"
    )

    surface = run_roofsurface()
    print("\nFigure 5 — roofsurface (rows: I_OC, cols: I_operational)")
    header = ("I_OC\\I_op", *(f"{v:g}" for v in surface.operational_intensities))
    rows = [
        (f"{i_oc:g}", *(f"{p:.0f}" for p in row))
        for i_oc, row in zip(surface.i_ocs, surface.surface)
    ]
    print(format_series(header, rows, widths=9))


if __name__ == "__main__":
    main()
