"""Figure 10: attainable performance of Gemmini's weight-stationary matmul.

Reproduces the paper's Section 6.1 methodology: run the kernel, trace setup
and parameter-calculation instructions with the (simulated) performance
counters, derive the *effective* configuration bandwidth (Eq. 4) and the
operation-to-configuration intensity, and use the sequential roofline
(Eq. 3) as a proxy for attainable performance.  The baseline models GCC
``-O2`` on the volatile-asm C code; the optimized flow is the full accfg
pipeline (state tracing + dedup; overlap does not apply to this
sequential-configuration target).

Paper's claims: a geomean uplift around 10–11%, largest (~15%) at size 128
where multiple invocations expose deduplication opportunities; no benefit at
sizes needing a single invocation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..backends.gemmini import GEMMINI
from ..core import format_series, geomean
from ..workloads.matmul import build_gemmini_matmul
from .common import ExperimentRun, run_workload

DEFAULT_SIZES = (16, 32, 64, 128, 256)
BASELINE_PIPELINE = "volatile-baseline"
OPTIMIZED_PIPELINE = "full"


@dataclass(frozen=True)
class Fig10Row:
    """One matrix size: attainable utilization, baseline vs. accfg."""

    size: int
    baseline: ExperimentRun
    optimized: ExperimentRun

    @staticmethod
    def _attainable_utilization(run: ExperimentRun) -> float:
        """Eq. 3 with measured BW_config,eff and I_OC (the paper's proxy)."""
        metrics = run.metrics
        peak = metrics.peak_ops_per_cycle
        config_term = (
            metrics.effective_config_bandwidth
            * metrics.operation_to_config_intensity
        )
        attainable = 1.0 / (1.0 / peak + 1.0 / config_term)
        return attainable / peak

    @property
    def baseline_utilization(self) -> float:
        return self._attainable_utilization(self.baseline)

    @property
    def optimized_utilization(self) -> float:
        return self._attainable_utilization(self.optimized)

    @property
    def uplift(self) -> float:
        return self.optimized_utilization / self.baseline_utilization


@dataclass(frozen=True)
class Fig10Result:
    rows: list[Fig10Row]

    @property
    def geomean_uplift(self) -> float:
        return geomean([row.uplift for row in self.rows])

    @property
    def max_uplift(self) -> float:
        return max(row.uplift for row in self.rows)


def _sweep_point(payload: tuple[int, bool]) -> Fig10Row:
    """One size point (module-level so worker processes can import it)."""
    size, functional = payload
    baseline = run_workload(
        build_gemmini_matmul(size), BASELINE_PIPELINE, functional
    )
    optimized = run_workload(
        build_gemmini_matmul(size), OPTIMIZED_PIPELINE, functional
    )
    if functional and not (baseline.correct and optimized.correct):
        raise AssertionError(f"wrong matmul result at size {size}")
    return Fig10Row(size, baseline, optimized)


def run(sizes=DEFAULT_SIZES, functional: bool = True, jobs: int = 1) -> Fig10Result:
    from ..testing.parallel import parallel_map

    rows = parallel_map(
        _sweep_point, [(size, functional) for size in sizes], jobs=jobs
    )
    return Fig10Result(rows)


def main(sizes=DEFAULT_SIZES, jobs: int = 1) -> None:
    result = run(sizes, jobs=jobs)
    print("Figure 10 — Gemmini weight-stationary tiled matmul")
    print(f"P_peak = {GEMMINI.peak_ops_per_cycle} ops/cycle, Eq. 3 proxy\n")
    print(
        format_series(
            (
                "size",
                "base util",
                "accfg util",
                "uplift",
                "base I_OC",
                "base BWeff",
            ),
            [
                (
                    row.size,
                    row.baseline_utilization,
                    row.optimized_utilization,
                    row.uplift,
                    row.baseline.metrics.operation_to_config_intensity,
                    row.baseline.metrics.effective_config_bandwidth,
                )
                for row in result.rows
            ],
        )
    )
    print(
        f"\ngeomean uplift: {result.geomean_uplift:.3f}x "
        f"(paper: ~1.11x), max: {result.max_uplift:.3f}x (paper: ~1.15x)"
    )


if __name__ == "__main__":
    main()
