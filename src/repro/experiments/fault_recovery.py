"""Beyond the paper: the configuration cost of resilience.

The paper eliminates configuration overhead under the assumption that the
config plane is reliable: a register, once written, stays written.  The
``repro.faults`` runtime drops that assumption — here the device loses its
retained state at seed-scheduled points (power-gating / reset faults) and
the recovery runtime must re-establish configuration before the next
launch can run.  This experiment measures what that resilience costs in
exactly the paper's currency, configuration bytes, and how much of the
paper's optimization benefit survives:

* ``minimal`` re-setup restores only the registers the rest of the program
  still relies on (``ReliancePlan``: register liveness intersected with the
  host's shadow copy);
* ``full`` re-setup replays the host's entire shadow register file — the
  straightforward recovery strategy;
* the ``baseline`` pipeline (no dedup/hoisting) with minimal re-setup shows
  that an unoptimized program is *implicitly* resilient: it rewrites every
  field per invocation anyway, so state loss costs it almost nothing extra
  — it simply pays the configuration wall on every iteration instead.

Both strategies run under the *same* fault seed on the *same* optimized
module, so their state-loss schedules are identical interaction for
interaction and the config-byte totals are directly comparable.  The
invariant this experiment asserts (and CI rechecks) is that minimal-diff
re-setup issues strictly fewer configuration bytes than full re-setup at
every swept fault rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..backends import get_accelerator
from ..core import (
    ascii_roofline,
    format_series,
    point_from_metrics,
    roofline_for_spec,
)
from ..faults import FaultInjector, FaultRates, RecoveryPolicy, ReliancePlan
from ..interp import run_module
from ..ioutil import atomic_write_json
from ..passes import pipeline_by_name
from ..sim import CoSimulator
from ..sim.metrics import collect_metrics
from ..workloads.matmul import build_opengemm_matmul

#: swept per-setup-interaction probabilities of retained-state loss
DEFAULT_RATES = (0.02, 0.05, 0.1, 0.2, 0.5)
QUICK_RATES = (0.1, 0.5)

DEFAULT_SIZE = 32
QUICK_SIZE = 16

#: one fixed fault seed: strategies compared on identical loss schedules
FAULT_SEED = 5

#: (configuration label, pipeline, re-setup strategy)
CONFIGURATIONS = (
    ("optimized+minimal", "full", "minimal"),
    ("optimized+full", "full", "full"),
    ("baseline+minimal", "baseline", "minimal"),
)


@dataclass(frozen=True)
class RecoveryRun:
    """One (fault rate, pipeline, re-setup strategy) measurement."""

    configuration: str
    pipeline: str
    resetup: str
    rate: float
    config_bytes: int
    total_cycles: float
    performance: float
    i_oc: float
    state_losses: int
    resetup_fields: int
    resetup_known_fields: int
    resetup_bytes: int
    correct: bool

    def as_dict(self) -> dict:
        return {
            "configuration": self.configuration,
            "pipeline": self.pipeline,
            "resetup": self.resetup,
            "rate": self.rate,
            "config_bytes": self.config_bytes,
            "total_cycles": self.total_cycles,
            "performance": self.performance,
            "operation_to_config_intensity": self.i_oc,
            "state_losses": self.state_losses,
            "resetup_fields": self.resetup_fields,
            "resetup_known_fields": self.resetup_known_fields,
            "resetup_bytes": self.resetup_bytes,
            "correct": self.correct,
        }


def run_one(
    size: int, pipeline: str, resetup: str, rate: float, label: str
) -> RecoveryRun:
    """Optimize a fresh workload, run it under seeded state-loss faults with
    the given re-setup strategy, and verify the product is still correct."""
    workload = build_opengemm_matmul(size)
    pipeline_by_name(pipeline).run(workload.module)
    spec = get_accelerator(workload.accelerator)
    injector = None
    recovery = None
    reliance = None
    if rate > 0.0:
        injector = FaultInjector(FAULT_SEED, FaultRates(state_loss=rate))
        recovery = RecoveryPolicy(resetup=resetup)
        reliance = ReliancePlan(workload.module)
    sim = CoSimulator(
        memory=workload.memory,
        cost_model=spec.host_cost_model(),
        faults=injector,
        recovery=recovery,
        reliance=reliance,
    )
    run_module(workload.module, sim, args=workload.main_args)
    metrics = collect_metrics(sim, workload.accelerator)
    stats = sim.recovery_stats
    return RecoveryRun(
        configuration=label,
        pipeline=pipeline,
        resetup=resetup,
        rate=rate,
        config_bytes=metrics.config_bytes,
        total_cycles=metrics.total_cycles,
        performance=metrics.performance,
        i_oc=metrics.operation_to_config_intensity,
        state_losses=stats.state_losses if stats else 0,
        resetup_fields=stats.resetup_fields if stats else 0,
        resetup_known_fields=stats.resetup_known_fields if stats else 0,
        resetup_bytes=stats.resetup_bytes if stats else 0,
        correct=workload.check(),
    )


def run(
    size: int = DEFAULT_SIZE, rates: tuple[float, ...] = DEFAULT_RATES
) -> list[RecoveryRun]:
    """The full sweep: fault-free references plus every (rate, strategy)."""
    runs: list[RecoveryRun] = []
    for label, pipeline, resetup in CONFIGURATIONS:
        runs.append(run_one(size, pipeline, resetup, 0.0, label))
    for rate in rates:
        for label, pipeline, resetup in CONFIGURATIONS:
            runs.append(run_one(size, pipeline, resetup, rate, label))
    _check_invariants(runs, rates)
    return runs


def _check_invariants(
    runs: list[RecoveryRun], rates: tuple[float, ...]
) -> None:
    """The acceptance invariants; a violation is an experiment failure."""
    by_key = {(r.configuration, r.rate): r for r in runs}
    for run_ in runs:
        if not run_.correct:
            raise RuntimeError(
                f"{run_.configuration} at rate {run_.rate} produced a wrong "
                "product — recovery is unsound"
            )
    for rate in rates:
        minimal = by_key[("optimized+minimal", rate)]
        full = by_key[("optimized+full", rate)]
        if minimal.state_losses == 0:
            raise RuntimeError(
                f"no state loss fired at rate {rate}; the sweep point "
                "measures nothing — raise the rate or the workload size"
            )
        if minimal.state_losses != full.state_losses:
            raise RuntimeError(
                f"loss schedules diverged at rate {rate}: minimal saw "
                f"{minimal.state_losses}, full saw {full.state_losses}"
            )
        if not minimal.config_bytes < full.config_bytes:
            raise RuntimeError(
                f"minimal re-setup issued {minimal.config_bytes} config "
                f"bytes vs full's {full.config_bytes} at rate {rate} — "
                "expected strictly fewer"
            )


def results_doc(size: int, runs: list[RecoveryRun]) -> dict:
    return {
        "experiment": "fault-recovery",
        "workload": f"opengemm matmul {size}x{size}",
        "fault_seed": FAULT_SEED,
        "runs": [r.as_dict() for r in runs],
    }


def main(
    quick: bool = False, out: str | None = "fault_recovery.json"
) -> None:
    size = QUICK_SIZE if quick else DEFAULT_SIZE
    rates = QUICK_RATES if quick else DEFAULT_RATES
    runs = run(size, rates)

    print(
        f"Recovery config overhead: opengemm matmul {size}x{size}, "
        f"state-loss faults, seed {FAULT_SEED}"
    )
    header = (
        "rate",
        "configuration",
        "losses",
        "restored",
        "of-which-dedup",
        "cfg-bytes",
        "cycles",
        "perf",
    )
    rows = [
        (
            r.rate,
            r.configuration,
            r.state_losses,
            r.resetup_fields,
            r.resetup_known_fields,
            r.config_bytes,
            r.total_cycles,
            r.performance,
        )
        for r in runs
    ]
    print(format_series(header, rows))

    reference = {r.configuration: r for r in runs if r.rate == 0.0}
    print()
    print("Re-setup overhead vs fault-free run (config bytes):")
    for r in runs:
        if r.rate == 0.0:
            continue
        base = reference[r.configuration].config_bytes
        extra = r.config_bytes - base
        pct = 100.0 * extra / base if base else 0.0
        print(
            f"  rate {r.rate:>4}: {r.configuration:18s} "
            f"+{extra:6d} bytes ({pct:6.1f}%)"
        )

    spec = get_accelerator("opengemm")
    roofline = roofline_for_spec(spec, spec.host_cost_model())
    worst = max((r for r in runs if r.rate > 0.0), key=lambda r: r.rate)
    points = []
    for label, _, _ in CONFIGURATIONS:
        for r in runs:
            if r.configuration == label and r.rate == worst.rate:
                metrics_label = f"{label} @ {r.rate}"
                points.append(
                    point_from_metrics(
                        _FakeMetrics(r.i_oc, r.performance), metrics_label
                    )
                )
    print()
    print(f"Roofline placement at the highest swept rate ({worst.rate}):")
    print(ascii_roofline(roofline, points))

    if out:
        atomic_write_json(out, results_doc(size, runs))
        print(f"\nresults written to {out}")


class _FakeMetrics:
    """Adapter: a (intensity, performance) pair for point_from_metrics."""

    accelerator = "opengemm"

    def __init__(self, i_oc: float, performance: float) -> None:
        self.operation_to_config_intensity = i_oc
        self.performance = performance


if __name__ == "__main__":
    import sys

    main(quick="--quick" in sys.argv[1:])
