"""Figure 12: OpenGeMM measurements placed on the configuration roofline.

Plots (as data plus an ASCII chart) the measured ``(I_OC, performance)``
points for each size and optimization level against OpenGeMM's sequential
and concurrent rooflines, verifying the Section 4.7 predictions:

* deduplication moves points up AND right (fewer config bytes per op),
  pushing size 128 out of the configuration-bound region;
* overlap moves points straight up (I_OC unchanged, modulo the one extra
  pipelined setup per loop), bounded by the concurrent roofline;
* both together give the largest gain.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..backends.opengemm import OPENGEMM
from ..core import (
    ConfigRoofline,
    RooflinePoint,
    ascii_roofline,
    format_series,
    point_from_metrics,
    roofline_for_spec,
)
from ..core.roofline import Boundness
from .fig11_opengemm import Fig11Result, run as run_fig11

DEFAULT_SIZES = (32, 128)
VARIANTS = ("baseline", "dedup", "overlap", "full")


@dataclass(frozen=True)
class Fig12Result:
    roofline: ConfigRoofline
    points: list[RooflinePoint]
    fig11: Fig11Result

    def point(self, size: int, variant: str) -> RooflinePoint:
        label = f"{variant}-{size}"
        for point in self.points:
            if point.label == label:
                return point
        raise KeyError(label)

    def boundness(self, size: int, variant: str) -> Boundness:
        return self.roofline.boundness(self.point(size, variant).i_oc)


def run(sizes=DEFAULT_SIZES, functional: bool = True, jobs: int = 1) -> Fig12Result:
    fig11 = run_fig11(sizes, functional, jobs=jobs)
    roofline = roofline_for_spec(OPENGEMM, OPENGEMM.host_cost_model())
    points = [
        point_from_metrics(row.runs[variant].metrics, f"{variant}-{row.size}")
        for row in fig11.rows
        for variant in VARIANTS
    ]
    return Fig12Result(roofline, points, fig11)


def main(sizes=DEFAULT_SIZES, jobs: int = 1) -> None:
    result = run(sizes, jobs=jobs)
    roofline = result.roofline
    print("Figure 12 — OpenGeMM measurements on the configuration roofline")
    print(
        f"BW_config = {roofline.config_bandwidth:.2f} B/cycle, knee at "
        f"I_OC = {roofline.knee_intensity:.1f} ops/B\n"
    )
    print(
        format_series(
            ("point", "I_OC", "ops/cycle", "region"),
            [
                (
                    point.label,
                    point.i_oc,
                    point.performance,
                    roofline.boundness(point.i_oc).value,
                )
                for point in result.points
            ],
        )
    )
    print()
    print(ascii_roofline(roofline, result.points))


if __name__ == "__main__":
    main()
