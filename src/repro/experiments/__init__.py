"""Experiment harnesses: one module per table/figure of the paper's
evaluation (see DESIGN.md's per-experiment index)."""

from . import (
    example_4_6,
    fig2_timeline,
    fig10_gemmini,
    fig11_opengemm,
    fig12_roofline,
    figure4_rooflines,
    fault_recovery,
    multitenant,
    outlook_os_gemmini,
    outlook_shapes,
    outlook_tradeoff,
    serve_chaos,
    table1_fields,
)
from .common import ExperimentRun, run_workload

__all__ = [
    "example_4_6",
    "fig2_timeline",
    "fig10_gemmini",
    "fig11_opengemm",
    "fig12_roofline",
    "figure4_rooflines",
    "fault_recovery",
    "multitenant",
    "outlook_os_gemmini",
    "outlook_shapes",
    "outlook_tradeoff",
    "serve_chaos",
    "table1_fields",
    "ExperimentRun",
    "run_workload",
]
