"""Section 4.6 worked example: Gemmini's configuration roofline numbers.

The paper computes, for a 64x64x64 output-stationary matmul on Gemmini:

* ``P_peak = 512`` ops/cycle (16x16 PEs, 2 ops each per cycle),
* ``BW_config = 16 / (3 * 3) ≈ 1.77`` bytes/cycle,
* ``I_OC = 524,288 / (160 * 16) ≈ 205.19`` ops/byte (wait — 204.8; the
  paper's 205.19 uses its typo'd 525,288 ops; we reproduce both),
* attainable performance **41.49% of peak** via Eq. 3,
* with bit-packing (935 total instructions): ``BW_eff ≈ 0.913`` bytes/cycle
  and **26.78% of peak**.

This module recomputes all of these from first principles with the library's
roofline implementation, using the paper's traced instruction counts as
inputs — validating the equations, not the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import ConfigRoofline, effective_config_bandwidth

# Constants exactly as reported in Section 4.6.
TOTAL_OPS_EXACT = 2 * 64 * 64 * 64  # 524,288
TOTAL_OPS_PAPER = 525_288  # the figure the paper's I_OC arithmetic uses
PEAK_OPS_PER_CYCLE = 16 * 16 * 2  # 512
ROCC_BYTES = 16
INSTRS_PER_WRITE = 2  # RISC-V load/store arch: 2 instrs to stage 16 bytes
CYCLES_PER_INSTR = 3  # footnote 4: inverse harmonic mean of IPC in [17]
SETUP_INSTRS = 160
TOTAL_INSTRS = 935  # 160 setup + 775 parameter calculation


@dataclass(frozen=True)
class Example46Result:
    config_bandwidth: float
    i_oc: float
    utilization_theoretical: float
    effective_bandwidth: float
    utilization_effective: float


def run(total_ops: int = TOTAL_OPS_PAPER) -> Example46Result:
    # BW_config = 16 bytes / (3 instructions * 3 cycles) ≈ 1.77 B/cycle.
    config_bw = ROCC_BYTES / ((INSTRS_PER_WRITE + 1) * CYCLES_PER_INSTR)
    config_bytes = SETUP_INSTRS * ROCC_BYTES
    i_oc = total_ops / config_bytes
    roofline = ConfigRoofline(PEAK_OPS_PER_CYCLE, config_bw)
    utilization = roofline.utilization(i_oc, concurrent=False)

    # Effective bandwidth: include the 775 parameter-calculation instructions.
    setup_cycles = SETUP_INSTRS * CYCLES_PER_INSTR
    calc_cycles = (TOTAL_INSTRS - SETUP_INSTRS) * CYCLES_PER_INSTR
    effective_bw = effective_config_bandwidth(
        config_bytes, calc_cycles, setup_cycles
    )
    effective_roofline = ConfigRoofline(PEAK_OPS_PER_CYCLE, effective_bw)
    utilization_effective = effective_roofline.utilization(i_oc, concurrent=False)
    return Example46Result(
        config_bandwidth=config_bw,
        i_oc=i_oc,
        utilization_theoretical=utilization,
        effective_bandwidth=effective_bw,
        utilization_effective=utilization_effective,
    )


def main() -> None:
    result = run()
    print("Section 4.6 — configuration roofline for Gemmini, 64^3 matmul\n")
    print(f"BW_config             = {result.config_bandwidth:.3f} B/cycle (paper: 1.77)")
    print(f"I_OC                  = {result.i_oc:.2f} ops/B   (paper: 205.19)")
    print(
        f"attainable (Eq. 3)    = {result.utilization_theoretical * 100:.2f}% "
        "of peak (paper: 41.49%)"
    )
    print(f"BW_config,eff (Eq. 4) = {result.effective_bandwidth:.3f} B/cycle (paper: 0.913)")
    print(
        f"attainable, effective = {result.utilization_effective * 100:.2f}% "
        "of peak (paper: 26.78%)"
    )


if __name__ == "__main__":
    main()
