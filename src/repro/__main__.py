"""Command-line interface.

An ``mlir-opt``-style driver for the accfg flow plus shortcuts to the
paper's experiments::

    python -m repro opt --pipeline full program.mlir     # optimize IR
    python -m repro lint program.mlir                    # hazard diagnostics
    python -m repro cost program.mlir                    # symbolic cost table
    python -m repro report program.mlir                  # static config cost
    python -m repro run program.mlir                     # co-simulate
    python -m repro serve [--port N]                     # compile server
    python -m repro chaos [--seed N] [--scenario all]    # serve chaos campaign
    python -m repro multitenant [--quick]                # scheduler sweep
    python -m repro experiments [--quick]                # all tables/figures
    python -m repro fig2|fig4|fig10|fig11|fig12|table1|example46
    python -m repro outlook-os | outlook-shapes | outlook-tradeoff
"""

from __future__ import annotations

import argparse
import sys

from .backends.lowering import static_config_report
from .interp import run_module
from .ir import parse_module, verify_operation
from .passes import PIPELINES, pipeline_by_name
from .sim import CoSimulator


def _read_module(path: str):
    if path == "-":
        text = sys.stdin.read()
        filename = "<stdin>"
    else:
        with open(path) as handle:
            text = handle.read()
        filename = path
    module = parse_module(text, filename)
    verify_operation(module)
    return module


def cmd_opt(args: argparse.Namespace) -> int:
    module = _read_module(args.input)
    pipeline_by_name(args.pipeline).run(module)
    print(module)
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import LINT_RULES, Severity, run_lints

    module = _read_module(args.input)
    if args.pipeline:
        pipeline_by_name(args.pipeline).run(module)
    codes = set(args.filter) if args.filter else None
    try:
        diagnostics = run_lints(module, target=args.target, codes=codes)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    errors = sum(1 for d in diagnostics if d.severity is Severity.ERROR)
    warnings = sum(1 for d in diagnostics if d.severity is Severity.WARNING)
    checked = len(codes) if codes is not None else len(LINT_RULES)
    if args.json:
        import json

        print(
            json.dumps(
                {
                    "diagnostics": [d.to_dict() for d in diagnostics],
                    "checks": checked,
                    "errors": errors,
                    "warnings": warnings,
                },
                indent=2,
            )
        )
    else:
        for diag in diagnostics:
            print(diag.format())
            print()
        print(
            f"{checked} check(s): {errors} error(s), {warnings} warning(s)"
        )
    if errors or (args.werror and warnings):
        return 1
    return 0


def cmd_cost(args: argparse.Namespace) -> int:
    from .analysis.cost import CostAnalysis, format_cost_table

    module = _read_module(args.input)
    if args.pipeline:
        pipeline_by_name(args.pipeline).run(module)
    print(format_cost_table(CostAnalysis(module)), end="")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    module = _read_module(args.input)
    if args.pipeline:
        pipeline_by_name(args.pipeline).run(module)
    print(static_config_report(module).format())
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    module = _read_module(args.input)
    if args.pipeline:
        pipeline_by_name(args.pipeline).run(module)
    if args.batch:
        from .engine.batch import BatchLane, run_batch

        main_args = [int(a) for a in args.args]
        lanes = [BatchLane(args=list(main_args)) for _ in range(args.batch)]
        outcomes = run_batch(module, lanes, functional=False, cache=False)
        ok = sum(1 for lane in outcomes if lane.ok)
        print(f"batch        : {args.batch} lanes, {ok} ok")
        first = outcomes[0]
        if not first.ok:
            print(f"lane 0 error : {first.error_type}: {first.error}")
            return 1
        print(f"results      : {first.results}")
        print(f"total cycles : {first.total_cycles:.0f}")
        for name, count in first.launch_counts.items():
            print(f"{name:13s}: {count} launches")
        return 0
    sim = CoSimulator(functional=False)
    results = run_module(module, sim, args=[int(a) for a in args.args])[0]
    stats = sim.trace.stats(sim.cost_model)
    print(f"results      : {results}")
    print(f"total cycles : {sim.total_cycles:.0f}")
    print(f"instructions : {stats.total_instrs} "
          f"(setup {stats.setup_instrs}, calc {stats.calc_instrs})")
    print(f"config bytes : {stats.config_bytes}")
    if sim.devices:
        for name, device in sim.devices.items():
            print(f"{name:13s}: {device.launch_count} launches, "
                  f"{device.total_ops} ops, busy {device.busy_cycles:.0f} cycles")
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from .testing import DEFAULT_CORPUS_DIR, fuzz, replay, run_selftest

    store = None
    if args.cache_dir:
        from .engine.cache import configure_persistent_cache

        # Also exports REPRO_CACHE_DIR, so --jobs workers attach the same
        # directory (their hit counters live in the worker processes).
        store = configure_persistent_cache(args.cache_dir)
    if args.min_persistent_hit_rate is not None:
        if store is None:
            print(
                "error: --min-persistent-hit-rate requires --cache-dir",
                file=sys.stderr,
            )
            return 2
        if args.jobs > 1:
            print(
                "error: --min-persistent-hit-rate gates this process's "
                "cache counters and is not meaningful with --jobs > 1",
                file=sys.stderr,
            )
            return 2

    if args.replay:
        try:
            failures = replay(args.replay)
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if not failures:
            print(f"{args.replay}: replays clean (failure no longer reproduces)")
            return 0
        for failure in failures:
            print(f"{args.replay}: {failure.format()}")
        return 1

    if args.selftest:
        result = run_selftest(
            seed=args.seed,
            iterations=max(args.iterations, 25),
            corpus_dir=None if args.no_corpus else args.corpus_dir,
        )
        print(result.summary())
        return 0 if result.ok else 1

    pipeline_names = None
    if args.pipeline:
        # The functional/timing oracles are differential: they always need
        # the reference pipelines next to the ones under test.
        pipeline_names = tuple(sorted({"none", "baseline", *args.pipeline}))
    if args.jobs > 1:
        from .testing import fuzz_sharded

        report = fuzz_sharded(
            jobs=args.jobs,
            seed=args.seed,
            iterations=args.iterations,
            backends=tuple(args.backend) if args.backend else None,
            pipeline_names=pipeline_names,
            corpus_dir=None if args.no_corpus else args.corpus_dir,
            shrink=not args.no_shrink,
            max_stmts=args.max_stmts,
            on_progress=print,
            engine=args.engine,
            iteration_timeout=args.iteration_timeout,
            inject_hang=args.inject_hang,
        )
    else:
        pipelines = (
            {name: PIPELINES[name] for name in pipeline_names}
            if pipeline_names is not None
            else None
        )
        report = fuzz(
            seed=args.seed,
            iterations=args.iterations,
            backends=tuple(args.backend) if args.backend else None,
            pipelines=pipelines,
            corpus_dir=None if args.no_corpus else args.corpus_dir,
            shrink=not args.no_shrink,
            max_stmts=args.max_stmts,
            on_progress=print,
            engine=args.engine,
            iteration_timeout=args.iteration_timeout,
            inject_hang=args.inject_hang,
        )
    print(report.summary())
    if store is not None:
        print(
            f"persistent cache: {store.hits} hit(s), {store.misses} miss(es), "
            f"{store.stores} store(s), {store.rejected} rejected, "
            f"hit rate {store.hit_rate:.1%}"
        )
        if (
            args.min_persistent_hit_rate is not None
            and store.hit_rate < args.min_persistent_hit_rate
        ):
            print(
                f"error: persistent hit rate {store.hit_rate:.1%} below "
                f"required {args.min_persistent_hit_rate:.1%}",
                file=sys.stderr,
            )
            return 1
    return 0 if report.ok else 1


def cmd_faults(args: argparse.Namespace) -> int:
    from .faults.campaign import DEFAULT_RATES, run_campaign
    from .faults.model import FaultRates
    from .faults.recovery import RecoveryPolicy

    rates = FaultRates.uniform(args.rate) if args.rate is not None else DEFAULT_RATES
    policy = RecoveryPolicy(resetup=args.resetup)

    def progress(done: int, report) -> None:
        if done % 10 == 0 or done == args.iterations:
            print(
                f"iteration {done}/{args.iterations}: {report.runs} runs, "
                f"{report.faults_injected} faults injected, "
                f"{len(report.findings)} finding(s)"
            )

    report = run_campaign(
        seed=args.seed,
        iterations=args.iterations,
        backends=args.backend or None,
        pipelines=args.pipeline or None,
        rates=rates,
        policy=policy,
        max_findings=args.max_findings,
        on_progress=progress,
    )
    print(report.summary())
    return 0 if report.ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    from .serve import CircuitBreakerPolicy, CompileService, ReproServer

    service = CompileService(
        dedup=not args.no_dedup,
        max_pending=args.max_pending,
        max_pending_per_tenant=args.max_pending_per_tenant,
        default_deadline_ms=args.deadline_ms,
        breaker=CircuitBreakerPolicy(enabled=not args.no_breaker),
    )
    server = ReproServer(
        host=args.host,
        port=args.port,
        service=service,
        max_frame_bytes=args.max_frame_bytes,
    )
    server.serve_forever()
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from .serve import (
        MIXED_RATES,
        ChaosRates,
        run_cache_corruption,
        run_campaign,
        run_quota_storm,
    )

    rates = (
        ChaosRates.uniform(args.rate) if args.rate is not None else MIXED_RATES
    )
    scenarios = (
        ("mixed", "quota-storm", "cache-corruption")
        if args.scenario == "all"
        else (args.scenario,)
    )
    ok = True
    for scenario in scenarios:
        if scenario == "mixed":
            report = run_campaign(
                seed=args.seed,
                clients=args.clients,
                requests=args.requests,
                rates=rates,
                deadline_ms=args.deadline_ms,
            )
            print(report.format())
            if report.schedule:
                print("fired-fault schedule (byte-reproducible from the seed):")
                for line in report.schedule:
                    print(f"  {line}")
            ok = ok and report.passed
        elif scenario == "quota-storm":
            result = run_quota_storm(seed=args.seed)
            print(json.dumps(result, indent=2, sort_keys=True))
            ok = ok and result["passed"]
        elif scenario == "cache-corruption":
            result = run_cache_corruption(seed=args.seed)
            print(json.dumps(result, indent=2, sort_keys=True))
            ok = ok and result["passed"]
    print(f"chaos: {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


def cmd_multitenant(args: argparse.Namespace) -> int:
    from .experiments import multitenant

    multitenant.main(quick=args.quick, out=args.out)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from . import bench

    argv = []
    if args.quick:
        argv.append("--quick")
    if args.out:
        argv.extend(["--out", args.out])
    if args.check:
        argv.extend(["--check", args.check])
    if args.freeze_baseline:
        argv.append("--freeze-baseline")
    return bench.main(argv)


def cmd_tune(args: argparse.Namespace) -> int:
    import json
    import os
    import time

    from .ioutil import atomic_write_json
    from .tune import TuneConfig, format_tune_table, run_tune

    config = TuneConfig(
        families=tuple(args.families.split(",")),
        sizes=tuple(int(s) for s in args.sizes.split(",")) if args.sizes else None,
        quick=args.quick,
        jobs=args.jobs,
        seed=args.seed,
        refine_rounds=args.refine_rounds,
    )
    cache_path = (
        os.path.join(args.cache_dir, "tune-scores.json")
        if args.cache_dir
        else None
    )
    resume_scores = None
    if args.resume:
        try:
            with open(args.out) as handle:
                previous = json.load(handle)
        except (OSError, ValueError):
            previous = {}
        resume_scores = previous.get("evaluated") or None
        if resume_scores:
            print(
                f"resuming: {len(resume_scores)} previously evaluated "
                f"candidate(s) from {args.out}"
            )
    started = time.perf_counter()
    report = run_tune(
        config,
        cache_path=cache_path,
        resume_scores=resume_scores,
        progress=print,
    )
    wall = time.perf_counter() - started
    atomic_write_json(args.out, report)
    print(format_tune_table(report))
    print(f"wrote {args.out} ({wall:.1f}s)")

    failed = False
    mismatches = sum(s["oracle_mismatches"] for s in report["results"])
    if mismatches:
        print(f"error: {mismatches} oracle mismatch(es) on validated points")
        failed = True
    incorrect = [
        entry["key"]
        for section in report["results"]
        for entry in section["validated"]
        if not entry["correct"]
    ]
    if incorrect:
        print(f"error: {len(incorrect)} validated point(s) computed wrong results")
        failed = True
    if args.require_improvement:
        for section in report["results"]:
            if section["family"] == "mlp":
                continue  # gate applies to the matmul families
            best = section["best"]["simulated_cycles"]
            default = section["default"]["simulated_cycles"]
            if not best < default:
                print(
                    f"error: no improvement for {section['family']} "
                    f"n={section['size']} (best {best:.0f} vs default "
                    f"{default:.0f} cycles)"
                )
                failed = True
    return 1 if failed else 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments import runner

    argv = ["--quick"] if args.quick else []
    if args.jobs != 1:
        argv.extend(["--jobs", str(args.jobs)])
    runner.main(argv)
    return 0


def _experiment_command(module_name: str):
    def run(args: argparse.Namespace) -> int:
        from . import experiments

        getattr(experiments, module_name).main()
        return 0

    return run


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="The Configuration Wall reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    opt = sub.add_parser("opt", help="optimize accfg IR and print it")
    opt.add_argument("input", help="path to a .mlir file, or - for stdin")
    opt.add_argument(
        "--pipeline",
        default="full",
        choices=sorted(PIPELINES),
        help="optimization level (default: full)",
    )
    opt.set_defaults(func=cmd_opt)

    lint = sub.add_parser(
        "lint", help="statically check a module for configuration hazards"
    )
    lint.add_argument("input", help="path to a .mlir file, or - for stdin")
    lint.add_argument(
        "--pipeline",
        default="",
        choices=["", *sorted(PIPELINES)],
        help="optimize before linting (e.g. trace states first)",
    )
    lint.add_argument(
        "--target",
        default=None,
        help="restrict target-specific lints to one accelerator",
    )
    lint.add_argument(
        "--werror", action="store_true", help="treat warnings as errors"
    )
    lint.add_argument(
        "--filter",
        action="append",
        metavar="CODE",
        help="run only the given diagnostic code(s), e.g. ACCFG001",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable diagnostics (code, severity, loc, fix-it)",
    )
    lint.set_defaults(func=cmd_lint)

    cost = sub.add_parser(
        "cost",
        help="static per-function cost summary from the symbolic cost engine",
    )
    cost.add_argument("input", help="path to a .mlir file, or - for stdin")
    cost.add_argument(
        "--pipeline",
        default="",
        choices=["", *sorted(PIPELINES)],
        help="optimize before analyzing",
    )
    cost.set_defaults(func=cmd_cost)

    report = sub.add_parser(
        "report", help="static configuration-cost report for a module"
    )
    report.add_argument("input")
    report.add_argument("--pipeline", default="", help="optimize first")
    report.set_defaults(func=cmd_report)

    run = sub.add_parser("run", help="co-simulate a module (timing only)")
    run.add_argument("input")
    run.add_argument("--pipeline", default="", help="optimize first")
    run.add_argument("--args", nargs="*", default=[], help="main() arguments")
    run.add_argument(
        "--batch",
        type=int,
        default=0,
        metavar="LANES",
        help="run LANES copies through the lockstep batch executor instead "
        "of the tree interpreter (timing only)",
    )
    run.set_defaults(func=cmd_run)

    from .testing.corpus import DEFAULT_CORPUS_DIR
    from .testing.generator import PROFILES

    fuzz = sub.add_parser(
        "fuzz",
        help="differentially fuzz the pass pipelines against random programs",
    )
    fuzz.add_argument("--seed", type=int, default=0, help="run seed (default 0)")
    fuzz.add_argument(
        "--iterations",
        type=int,
        default=100,
        help="programs per backend (default 100)",
    )
    fuzz.add_argument(
        "--backend",
        action="append",
        choices=sorted(PROFILES),
        help="restrict to one backend profile (repeatable; default: all)",
    )
    fuzz.add_argument(
        "--pipeline",
        action="append",
        choices=sorted(PIPELINES),
        help="restrict to one pipeline under test (repeatable; default: all; "
        "'none' and 'baseline' are always run as references)",
    )
    fuzz.add_argument(
        "--corpus-dir",
        default=DEFAULT_CORPUS_DIR,
        help=f"where shrunk reproducers are written (default: {DEFAULT_CORPUS_DIR})",
    )
    fuzz.add_argument(
        "--no-corpus",
        action="store_true",
        help="do not write reproducer files",
    )
    fuzz.add_argument(
        "--no-shrink", action="store_true", help="keep failing programs as found"
    )
    fuzz.add_argument(
        "--max-stmts",
        type=int,
        default=6,
        help="top-level statement budget per generated program (default 6)",
    )
    fuzz.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; the iteration range is sharded by seed, so "
        "the findings match a sequential run (default 1)",
    )
    fuzz.add_argument(
        "--engine",
        default="trace",
        choices=["trace", "tree", "both", "batch"],
        help="execution engine for the oracles: 'trace' (compiled traces, "
        "cross-checked against the tree interpreter), 'tree', 'both', or "
        "'batch' (trace plus a batch-vs-scalar lockstep cross-check on "
        "every executed run) (default: trace)",
    )
    fuzz.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="attach a persistent on-disk compiled-trace cache (shared with "
        "--jobs workers via REPRO_CACHE_DIR); created if missing",
    )
    fuzz.add_argument(
        "--min-persistent-hit-rate",
        type=float,
        default=None,
        metavar="RATE",
        help="exit non-zero when the persistent cache's hit rate ends below "
        "RATE (0..1); requires --cache-dir, single-process runs only",
    )
    fuzz.add_argument(
        "--iteration-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per fuzz iteration; a slower iteration is "
        "reported as a 'timeout' finding and the run continues (default: "
        "no budget)",
    )
    fuzz.add_argument(
        "--inject-hang",
        type=int,
        default=None,
        metavar="ITERATION",
        help="testing hook: hang forever at the given iteration "
        "(exercises --iteration-timeout and worker isolation)",
    )
    fuzz.add_argument(
        "--replay",
        metavar="FILE",
        help="replay one corpus reproducer instead of fuzzing",
    )
    fuzz.add_argument(
        "--selftest",
        action="store_true",
        help="verify the oracles catch a deliberately broken pass",
    )
    fuzz.set_defaults(func=cmd_fuzz)

    faults = sub.add_parser(
        "faults",
        help="run the seeded fault-injection correctness campaign",
    )
    faults.add_argument(
        "--seed", type=int, default=0, help="fault/program seed (default 0)"
    )
    faults.add_argument(
        "--iterations",
        type=int,
        default=100,
        help="programs per backend (default 100)",
    )
    faults.add_argument(
        "--backend",
        action="append",
        choices=sorted(PROFILES),
        help="restrict to one backend profile (repeatable; default: all)",
    )
    faults.add_argument(
        "--pipeline",
        action="append",
        choices=sorted(PIPELINES),
        help="restrict to one pipeline (repeatable; default: all)",
    )
    faults.add_argument(
        "--rate",
        type=float,
        default=None,
        help="uniform per-interaction fault rate for every fault kind "
        "(default: the campaign's mixed rates)",
    )
    faults.add_argument(
        "--resetup",
        default="minimal",
        choices=["minimal", "full"],
        help="re-setup strategy after detected state loss (default: minimal)",
    )
    faults.add_argument(
        "--max-findings",
        type=int,
        default=10,
        help="stop after this many findings (default 10)",
    )
    faults.set_defaults(func=cmd_faults)

    serve = sub.add_parser(
        "serve",
        help="long-lived concurrent compile/simulate/lint/cost server "
        "(JSON lines over TCP; see docs/SERVING.md)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port; 0 picks a free port and prints it (default 0)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="global in-flight request cap before admission rejects (default 64)",
    )
    serve.add_argument(
        "--max-pending-per-tenant",
        type=int,
        default=8,
        help="per-tenant in-flight request cap (default 8)",
    )
    serve.add_argument(
        "--no-dedup",
        action="store_true",
        help="disable request-level dedup tiers (in-flight coalescing and "
        "the outcome/module caches); for baseline measurements",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="default per-request deadline in ms (requests may override "
        "with their own 'deadline_ms'; default: none)",
    )
    serve.add_argument(
        "--no-breaker",
        action="store_true",
        help="disable the per-tenant circuit breaker",
    )
    serve.add_argument(
        "--max-frame-bytes",
        type=int,
        default=1024 * 1024,
        help="reject request frames larger than this with a typed "
        "'protocol' error (default 1 MiB)",
    )
    serve.set_defaults(func=cmd_serve)

    chaos = sub.add_parser(
        "chaos",
        help="seeded chaos campaign against the serving layer: deterministic "
        "fault injection, recovery invariants, zero-silent-corruption gate "
        "(see docs/ROBUSTNESS.md)",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--clients", type=int, default=8, help="concurrent clients (default 8)"
    )
    chaos.add_argument(
        "--requests",
        type=int,
        default=25,
        help="requests per client (default 25)",
    )
    chaos.add_argument(
        "--rate",
        type=float,
        default=None,
        help="uniform per-kind injection rate (default: the mixed profile)",
    )
    chaos.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="default per-request deadline for the campaign service",
    )
    chaos.add_argument(
        "--scenario",
        choices=("mixed", "quota-storm", "cache-corruption", "all"),
        default="mixed",
        help="which scenario to run (default: the mixed campaign)",
    )
    chaos.set_defaults(func=cmd_chaos)

    multitenant = sub.add_parser(
        "multitenant",
        help="multi-tenant scheduler sweep: re-paid configuration cycles, "
        "FIFO vs config-aware vs oracle",
    )
    multitenant.add_argument(
        "--quick", action="store_true", help="smaller tenant sweep"
    )
    multitenant.add_argument("--out", default="multitenant.json")
    multitenant.set_defaults(func=cmd_multitenant)

    bench = sub.add_parser(
        "bench", help="benchmark compile/simulate/fuzz throughput"
    )
    bench.add_argument("--quick", action="store_true", help="fewer reps")
    bench.add_argument("--out", default="BENCH_engine.json")
    bench.add_argument(
        "--check", metavar="FILE", help="fail on regression vs this baseline"
    )
    bench.add_argument("--freeze-baseline", action="store_true")
    bench.set_defaults(func=cmd_bench)

    tune = sub.add_parser(
        "tune",
        help="autotune schedules with the symbolic-cost surrogate, "
        "validating the frontier by simulation",
    )
    tune.add_argument(
        "--families",
        default="opengemm,gemmini,mlp",
        help="comma-separated workload families (default: all)",
    )
    tune.add_argument(
        "--sizes",
        default=None,
        help="comma-separated problem sizes (default: per-family presets)",
    )
    tune.add_argument("--quick", action="store_true", help="smaller grids")
    tune.add_argument(
        "--jobs", type=int, default=1, help="surrogate worker processes"
    )
    tune.add_argument("--seed", type=int, default=0)
    tune.add_argument(
        "--refine-rounds", type=int, default=2, help="greedy refinement rounds"
    )
    tune.add_argument("--out", default="tune.json", help="JSON report path")
    tune.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the persistent surrogate-score cache",
    )
    tune.add_argument(
        "--resume",
        action="store_true",
        help="seed the score cache from a previous --out report",
    )
    tune.add_argument(
        "--require-improvement",
        action="store_true",
        help="exit 1 unless the tuner strictly beats the default schedule "
        "for every matmul family/size (CI gate)",
    )
    tune.set_defaults(func=cmd_tune)

    experiments = sub.add_parser(
        "experiments", help="regenerate every table and figure"
    )
    experiments.add_argument("--quick", action="store_true")
    experiments.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the size sweeps (one sweep point per "
        "worker; default 1)",
    )
    experiments.set_defaults(func=cmd_experiments)

    for name, module_name in (
        ("table1", "table1_fields"),
        ("example46", "example_4_6"),
        ("fig2", "fig2_timeline"),
        ("fig4", "figure4_rooflines"),
        ("fig10", "fig10_gemmini"),
        ("fig11", "fig11_opengemm"),
        ("fig12", "fig12_roofline"),
        ("fault-recovery", "fault_recovery"),
        ("outlook-os", "outlook_os_gemmini"),
        ("outlook-shapes", "outlook_shapes"),
        ("outlook-tradeoff", "outlook_tradeoff"),
        ("serve-chaos", "serve_chaos"),
    ):
        cmd = sub.add_parser(name, help=f"regenerate {name}")
        cmd.set_defaults(func=_experiment_command(module_name))
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
