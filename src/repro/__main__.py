"""Command-line interface.

An ``mlir-opt``-style driver for the accfg flow plus shortcuts to the
paper's experiments::

    python -m repro opt --pipeline full program.mlir     # optimize IR
    python -m repro lint program.mlir                    # hazard diagnostics
    python -m repro report program.mlir                  # static config cost
    python -m repro run program.mlir                     # co-simulate
    python -m repro experiments [--quick]                # all tables/figures
    python -m repro fig2|fig4|fig10|fig11|fig12|table1|example46
    python -m repro outlook-os | outlook-shapes | outlook-tradeoff
"""

from __future__ import annotations

import argparse
import sys

from .backends.lowering import static_config_report
from .interp import run_module
from .ir import parse_module, verify_operation
from .passes import PIPELINES, pipeline_by_name
from .sim import CoSimulator


def _read_module(path: str):
    if path == "-":
        text = sys.stdin.read()
        filename = "<stdin>"
    else:
        with open(path) as handle:
            text = handle.read()
        filename = path
    module = parse_module(text, filename)
    verify_operation(module)
    return module


def cmd_opt(args: argparse.Namespace) -> int:
    module = _read_module(args.input)
    pipeline_by_name(args.pipeline).run(module)
    print(module)
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import LINT_RULES, Severity, run_lints

    module = _read_module(args.input)
    if args.pipeline:
        pipeline_by_name(args.pipeline).run(module)
    codes = set(args.filter) if args.filter else None
    try:
        diagnostics = run_lints(module, target=args.target, codes=codes)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    for diag in diagnostics:
        print(diag.format())
        print()
    errors = sum(1 for d in diagnostics if d.severity is Severity.ERROR)
    warnings = sum(1 for d in diagnostics if d.severity is Severity.WARNING)
    checked = len(codes) if codes is not None else len(LINT_RULES)
    print(
        f"{checked} check(s): {errors} error(s), {warnings} warning(s)"
    )
    if errors or (args.werror and warnings):
        return 1
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    module = _read_module(args.input)
    if args.pipeline:
        pipeline_by_name(args.pipeline).run(module)
    print(static_config_report(module).format())
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    module = _read_module(args.input)
    if args.pipeline:
        pipeline_by_name(args.pipeline).run(module)
    sim = CoSimulator(functional=False)
    results = run_module(module, sim, args=[int(a) for a in args.args])[0]
    stats = sim.trace.stats(sim.cost_model)
    print(f"results      : {results}")
    print(f"total cycles : {sim.total_cycles:.0f}")
    print(f"instructions : {stats.total_instrs} "
          f"(setup {stats.setup_instrs}, calc {stats.calc_instrs})")
    print(f"config bytes : {stats.config_bytes}")
    if sim.devices:
        for name, device in sim.devices.items():
            print(f"{name:13s}: {device.launch_count} launches, "
                  f"{device.total_ops} ops, busy {device.busy_cycles:.0f} cycles")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments import runner

    runner.main(["--quick"] if args.quick else [])
    return 0


def _experiment_command(module_name: str):
    def run(args: argparse.Namespace) -> int:
        from . import experiments

        getattr(experiments, module_name).main()
        return 0

    return run


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="The Configuration Wall reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    opt = sub.add_parser("opt", help="optimize accfg IR and print it")
    opt.add_argument("input", help="path to a .mlir file, or - for stdin")
    opt.add_argument(
        "--pipeline",
        default="full",
        choices=sorted(PIPELINES),
        help="optimization level (default: full)",
    )
    opt.set_defaults(func=cmd_opt)

    lint = sub.add_parser(
        "lint", help="statically check a module for configuration hazards"
    )
    lint.add_argument("input", help="path to a .mlir file, or - for stdin")
    lint.add_argument(
        "--pipeline",
        default="",
        choices=["", *sorted(PIPELINES)],
        help="optimize before linting (e.g. trace states first)",
    )
    lint.add_argument(
        "--target",
        default=None,
        help="restrict target-specific lints to one accelerator",
    )
    lint.add_argument(
        "--werror", action="store_true", help="treat warnings as errors"
    )
    lint.add_argument(
        "--filter",
        action="append",
        metavar="CODE",
        help="run only the given diagnostic code(s), e.g. ACCFG001",
    )
    lint.set_defaults(func=cmd_lint)

    report = sub.add_parser(
        "report", help="static configuration-cost report for a module"
    )
    report.add_argument("input")
    report.add_argument("--pipeline", default="", help="optimize first")
    report.set_defaults(func=cmd_report)

    run = sub.add_parser("run", help="co-simulate a module (timing only)")
    run.add_argument("input")
    run.add_argument("--pipeline", default="", help="optimize first")
    run.add_argument("--args", nargs="*", default=[], help="main() arguments")
    run.set_defaults(func=cmd_run)

    experiments = sub.add_parser(
        "experiments", help="regenerate every table and figure"
    )
    experiments.add_argument("--quick", action="store_true")
    experiments.set_defaults(func=cmd_experiments)

    for name, module_name in (
        ("table1", "table1_fields"),
        ("example46", "example_4_6"),
        ("fig2", "fig2_timeline"),
        ("fig4", "figure4_rooflines"),
        ("fig10", "fig10_gemmini"),
        ("fig11", "fig11_opengemm"),
        ("fig12", "fig12_roofline"),
        ("outlook-os", "outlook_os_gemmini"),
        ("outlook-shapes", "outlook_shapes"),
        ("outlook-tradeoff", "outlook_tradeoff"),
    ):
        cmd = sub.add_parser(name, help=f"regenerate {name}")
        cmd.set_defaults(func=_experiment_command(module_name))
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
