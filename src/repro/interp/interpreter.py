"""Timed functional IR interpreter.

Executes accfg programs directly: arith is evaluated on Python integers,
``scf`` control flow is run natively, and accfg ops drive the co-simulation
engine (configuration writes, launches, awaits).  Every executed operation is
charged against the host cost model, so one run yields both the functional
result (checkable against numpy) and the timing/instruction measurements the
roofline analysis needs.

Instruction categorization: host scalar ops whose values flow (transitively)
into setup or launch fields are *configuration parameter calculation*
(``calc``, the ``T_calc`` of Eq. 4); all other scalar work is host compute.
Loop and branch management is charged as ``control``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dialects import accfg, arith, func, scf
from ..dialects.builtin import ModuleOp
from ..ir.attributes import IntegerType
from ..ir.operation import Operation, UnregisteredOp
from ..ir.ssa import SSAValue
from ..sim.cosim import CoSimulator
from ..sim.device import FaultError, LaunchToken
from ..isa.instructions import Instr, InstrCategory


class InterpreterError(Exception):
    """Raised when a program cannot be interpreted."""


def _fail(op: Operation, message: str) -> "InterpreterError":
    """An InterpreterError carrying the op's source location when known."""
    if op.loc is not None:
        message = f"{message} at {op.loc}"
    return InterpreterError(message)


@dataclass(frozen=True)
class StateHandle:
    """Runtime stand-in for an ``!accfg.state`` value."""

    accelerator: str
    version: int


class _ReturnSignal(Exception):
    def __init__(self, values: list) -> None:
        self.values = values


def config_feeding_ops(module: ModuleOp) -> set[Operation]:
    """Ops whose results flow (transitively) into setup/launch fields."""
    feeding: set[Operation] = set()
    worklist: list[SSAValue] = []
    for op in module.walk():
        if isinstance(op, accfg.SetupOp):
            worklist.extend(op.field_values)
        elif isinstance(op, accfg.LaunchOp):
            worklist.extend(value for _, value in op.fields)
    while worklist:
        value = worklist.pop()
        owner = value.owner
        if not isinstance(owner, Operation) or owner in feeding:
            continue
        if owner.regions:
            continue  # stop at structured ops; their interiors are control
        feeding.add(owner)
        worklist.extend(owner.operands)
    return feeding


class Interpreter:
    """Executes one module against a co-simulator."""

    def __init__(self, module: ModuleOp, sim: CoSimulator) -> None:
        self.module = module
        self.sim = sim
        self._functions: dict[str, func.FuncOp] = {}
        for op in module.body_block.ops:
            if isinstance(op, func.FuncOp):
                self._functions[op.sym_name] = op
        self._config_feeding = config_feeding_ops(module)
        self._state_counter = 0
        self._call_depth = 0
        self.max_call_depth = 256
        # Runtime accfg protocol state: completed tokens (double-await
        # detection), states invalidated by accfg.reset, and a per-accelerator
        # reset epoch so launches outstanding across a reset are caught.
        self._awaited: set[LaunchToken] = set()
        self._reset_states: set[StateHandle] = set()
        self._reset_epoch: dict[str, int] = {}
        self._token_epoch: dict[LaunchToken, int] = {}

    # -- public API ------------------------------------------------------

    def run(self, function: str = "main", args: list[int] | None = None) -> list[int]:
        """Interpret ``function`` to completion; returns its results."""
        fn = self._functions.get(function)
        if fn is None:
            raise InterpreterError(f"no function '{function}' in module")
        if fn.is_declaration:
            raise InterpreterError(f"function '{function}' has no body")
        args = args or []
        if len(args) != len(fn.args):
            raise InterpreterError(
                f"'{function}' expects {len(fn.args)} arguments, got {len(args)}"
            )
        env: dict[SSAValue, object] = dict(zip(fn.args, args))
        try:
            self._run_block(fn.body, env)
        except _ReturnSignal as signal:
            return signal.values
        return []

    # -- execution ---------------------------------------------------------

    def _run_block(self, block, env: dict[SSAValue, object]) -> list:
        """Execute a block; returns the values yielded by its terminator."""
        for op in block.ops:
            result = self._run_op(op, env)
            if op.is_terminator:
                return result or []
        return []

    def _charge_scalar(self, op: Operation, mnemonic: str) -> None:
        category = (
            InstrCategory.CALC
            if op in self._config_feeding
            else InstrCategory.COMPUTE
        )
        self.sim.charge_one(Instr(mnemonic, category))

    def _charge_control(self, count: int = 1) -> None:
        self.sim.charge(
            [Instr("ctrl", InstrCategory.CONTROL) for _ in range(count)]
        )

    def _run_op(self, op: Operation, env: dict[SSAValue, object]):
        if isinstance(op, arith.ConstantOp):
            env[op.result] = op.value
            self._charge_scalar(op, "li")
            return None
        if isinstance(op, arith.BinaryOp):
            lhs = self._as_int(env, op.lhs)
            rhs = self._as_int(env, op.rhs)
            value = op.evaluate(lhs, rhs)
            env[op.result] = arith.truncate_to_type(value, op.result.type)
            self._charge_scalar(op, op.name.split(".")[-1])
            return None
        if isinstance(op, arith.CmpiOp):
            width = (
                op.lhs.type.width if isinstance(op.lhs.type, IntegerType) else 64
            )
            result = arith.CmpiOp.evaluate_predicate(
                op.predicate,
                self._as_int(env, op.lhs),
                self._as_int(env, op.rhs),
                width,
            )
            env[op.result] = int(result)
            self._charge_scalar(op, "cmp")
            return None
        if isinstance(op, arith.SelectOp):
            cond = self._as_int(env, op.condition)
            env[op.result] = env[op.true_value if cond else op.false_value]
            self._charge_scalar(op, "select")
            return None
        if isinstance(op, scf.ForOp):
            return self._run_for(op, env)
        if isinstance(op, scf.IfOp):
            return self._run_if(op, env)
        if isinstance(op, scf.YieldOp):
            return [env[v] for v in op.operands]
        if isinstance(op, func.ReturnOp):
            raise _ReturnSignal([env[v] for v in op.operands])
        if isinstance(op, func.CallOp):
            return self._run_call(op, env)
        if isinstance(op, accfg.SetupOp):
            if op.in_state is not None and env.get(op.in_state) in self._reset_states:
                raise _fail(
                    op,
                    f"setup on '{op.accelerator}' uses a state that was reset "
                    "(register contents are no longer defined)",
                )
            fields = {
                name: self._as_int(env, value) for name, value in op.fields
            }
            try:
                self.sim.exec_setup(op.accelerator, fields, site=op)
            except KeyError as error:
                raise _fail(op, f"setup on {error.args[0]}") from None
            except FaultError as error:
                raise _fail(op, str(error)) from None
            self._state_counter += 1
            env[op.out_state] = StateHandle(op.accelerator, self._state_counter)
            return None
        if isinstance(op, accfg.LaunchOp):
            if op.state is not None and env.get(op.state) in self._reset_states:
                raise _fail(
                    op,
                    f"launch on '{op.accelerator}' uses a state that was reset "
                    "(register contents are no longer defined)",
                )
            fields = {
                name: self._as_int(env, value) for name, value in op.fields
            }
            try:
                token = self.sim.exec_launch(op.accelerator, fields, site=op)
            except KeyError as error:
                raise _fail(op, f"launch on {error.args[0]}") from None
            except FaultError as error:
                raise _fail(op, str(error)) from None
            self._token_epoch[token] = self._reset_epoch.get(op.accelerator, 0)
            env[op.token] = token
            return None
        if isinstance(op, accfg.AwaitOp):
            token = env[op.token]
            if not isinstance(token, LaunchToken):
                raise _fail(op, "await of a value that is not a token")
            if token in self._awaited:
                raise _fail(
                    op,
                    f"double await of a token on '{op.accelerator}' "
                    "(the launch was already awaited)",
                )
            epoch = self._reset_epoch.get(op.accelerator, 0)
            if self._token_epoch.get(token, epoch) != epoch:
                raise _fail(
                    op,
                    f"await of a launch on '{op.accelerator}' that was "
                    "discarded by accfg.reset",
                )
            try:
                self.sim.exec_await(token)
            except FaultError as error:
                raise _fail(op, str(error)) from None
            self._awaited.add(token)
            return None
        if isinstance(op, accfg.ResetOp):
            handle = env.get(op.state)
            if isinstance(handle, StateHandle):
                self._reset_states.add(handle)
                self._reset_epoch[handle.accelerator] = (
                    self._reset_epoch.get(handle.accelerator, 0) + 1
                )
                if self.sim.faults is not None:
                    self.sim.exec_reset(handle.accelerator)
            self._charge_control()
            return None
        # Extension point: ops outside the core dialects may carry their own
        # interpretation (e.g. host-side data-movement helpers).
        hook = getattr(op, "interpret", None)
        if hook is not None:
            hook(self, env)
            return None
        if isinstance(op, UnregisteredOp):
            # Foreign ops annotated #accfg.effects<none> (e.g. printf) are
            # executable as opaque host work as long as they produce no
            # values the program needs.
            if accfg.get_effects(op) is not None and not op.results:
                self.sim.charge_one(Instr("foreign", InstrCategory.COMPUTE))
                return None
            raise _fail(op, f"cannot interpret unregistered op '{op.op_name}'")
        raise _fail(op, f"cannot interpret op '{op.name}'")

    def _run_for(self, op: scf.ForOp, env: dict[SSAValue, object]) -> None:
        lb = self._as_int(env, op.lb)
        ub = self._as_int(env, op.ub)
        step = self._as_int(env, op.step)
        if step <= 0:
            raise InterpreterError("scf.for requires a positive step")
        carried = [env[v] for v in op.iter_inits]
        iv = lb
        while iv < ub:
            # Increment + compare&branch of the loop back-edge.
            self._charge_control(2)
            env[op.induction_var] = iv
            for arg, value in zip(op.iter_args, carried):
                env[arg] = value
            carried = self._run_block(op.body, env)
            iv += step
        for result, value in zip(op.results, carried):
            env[result] = value
        return None

    def _run_if(self, op: scf.IfOp, env: dict[SSAValue, object]) -> None:
        cond = self._as_int(env, op.condition)
        self._charge_control(1)
        if cond:
            values = self._run_block(op.then_block, env)
        elif op.has_else:
            values = self._run_block(op.else_block, env)
        else:
            values = []
        for result, value in zip(op.results, values):
            env[result] = value
        return None

    def _run_call(self, op: func.CallOp, env: dict[SSAValue, object]) -> None:
        callee = self._functions.get(op.callee)
        if callee is None or callee.is_declaration:
            raise InterpreterError(
                f"call to unknown/declared function '@{op.callee}'"
            )
        self._charge_control(2)  # call + return jumps
        if self._call_depth >= self.max_call_depth:
            raise InterpreterError(
                f"call depth exceeded {self.max_call_depth} "
                f"(unbounded recursion via '@{op.callee}'?)"
            )
        args = [env[v] for v in op.operands]
        inner_env: dict[SSAValue, object] = dict(zip(callee.args, args))
        self._call_depth += 1
        try:
            self._run_block(callee.body, inner_env)
            values: list = []
        except _ReturnSignal as signal:
            values = signal.values
        finally:
            self._call_depth -= 1
        for result, value in zip(op.results, values):
            env[result] = value
        return None

    @staticmethod
    def _as_int(env: dict[SSAValue, object], value: SSAValue) -> int:
        entry = env.get(value)
        if not isinstance(entry, int):
            raise InterpreterError(
                f"expected an integer value, found {type(entry).__name__}"
            )
        return entry


def run_module(
    module: ModuleOp,
    sim: CoSimulator | None = None,
    function: str = "main",
    args: list[int] | None = None,
) -> tuple[list[int], CoSimulator]:
    """Convenience wrapper: interpret ``function`` and return (results, sim)."""
    sim = sim or CoSimulator()
    results = Interpreter(module, sim).run(function, args)
    return results, sim
