"""Timed functional interpretation of accfg programs."""

from .interpreter import (
    Interpreter,
    InterpreterError,
    StateHandle,
    config_feeding_ops,
    run_module,
)

__all__ = [
    "Interpreter",
    "InterpreterError",
    "StateHandle",
    "config_feeding_ops",
    "run_module",
]
