"""repro — a reproduction of *The Configuration Wall: Characterization and
Elimination of Accelerator Configuration Overhead* (ASPLOS 2026).

The package provides:

* :mod:`repro.core` — the configuration roofline model (the paper's
  analytical contribution, Section 4),
* :mod:`repro.ir` / :mod:`repro.dialects` — an MLIR-like SSA compiler
  substrate with the ``accfg`` dialect (Section 5.1),
* :mod:`repro.passes` — state tracing, configuration deduplication, and
  configuration–computation overlap (Sections 5.3–5.5),
* :mod:`repro.isa`, :mod:`repro.backends`, :mod:`repro.sim` — instruction-
  level lowering and host/accelerator co-simulation replacing the paper's
  spike/Verilator substrates,
* :mod:`repro.workloads`, :mod:`repro.experiments` — tiled matrix
  multiplication workloads and the harnesses regenerating every table and
  figure of the evaluation (Section 6).
"""

__version__ = "1.0.0"
