"""Deterministic chaos harness for the serving boundary.

What :mod:`repro.faults` is to the hardware configuration plane, this
module is to the compile service: a seed-driven fault injector whose
fired-fault schedule is byte-reproducible, plus the campaign that drives a
real :class:`~repro.serve.server.ReproServer` through it and checks the
recovery invariants.

The central determinism problem is concurrency: N client threads racing a
shared injector would make the schedule depend on thread interleaving.
The harness sidesteps it by *planning single-threaded*: :func:`build_plan`
walks the (deterministic) request mix client-by-client, request-by-request
and draws every fault decision up front through the same private-stream
idiom as :class:`repro.faults.model.FaultInjector`
(``f"{seed}:{stream}:{index}"``).  The resulting
:class:`ChaosPlan` — including its rendered schedule — is a pure function
of ``(seed, clients, requests, rates)``; the client threads merely execute
it.  Faults are applied to a request's *first* attempt only, so the
recovery path (retry, resend, reconnect) always runs against a clean
transport.

Campaign invariants (``python -m repro chaos``):

* **Zero silent corruptions** — every response is either bit-identical to
  the fault-free reference for that request (canonical-JSON compare) or a
  *typed* error; a deterministic computation error must also match the
  reference's error type.
* **Zero stranded waiters** — after the clients drain, the service reports
  no pending work and no open flights, and every client thread joins.
* **Reproducible schedule** — the plan is rebuilt and compared, and the
  CLI re-runs the planning to diff schedules across invocations.
* **Bounded re-paid configuration cost** — the transport-level faults the
  plan fired are replayed as scheduler resubmissions
  (:func:`~repro.serve.scheduler.with_resubmissions`); the config-aware
  policy must re-pay no more configuration cycles than FIFO does.

Two focused scenarios ride along: :func:`run_quota_storm` (one flooding
tenant vs admission control; the victim tenant must see zero errors) and
:func:`run_cache_corruption` (a persistent store corrupted and then
deleted under load; every response stays correct, the store degrades to
in-memory-only instead of failing).
"""

from __future__ import annotations

import json
import os
import shutil
import socket
import tempfile
import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Sequence

from ..backends import get_accelerator
from ..engine import PersistentStore, TraceCache
from ..faults.model import DrawStreams
from .client import NO_RETRY, ReproClient, RetryPolicy, ServeClientError
from .protocol import encode
from .scheduler import TenantJob, compare_policies, with_resubmissions
from .server import ReproServer
from .service import CompileService, ServiceChaos


class ServeFaultKind(str, Enum):
    """The injectable failure modes of the serving boundary."""

    #: the client's connect attempt is refused (server briefly unreachable)
    CONNECT_REFUSE = "connect-refuse"
    #: the connection drops after the request is sent, before the response
    CONN_RESET = "conn-reset"
    #: the request frame arrives in dribbling chunks (slow client)
    SLOW_FRAME = "slow-frame"
    #: a garbled non-JSON frame precedes the real request
    CORRUPT_FRAME = "corrupt-frame"
    #: a frame beyond the server's bound precedes the real request
    OVERSIZE_FRAME = "oversize-frame"
    #: the compile thread dies mid-computation (single-flight owner crash)
    THREAD_DEATH = "thread-death"
    #: the trace engine fails internally (tree-interpreter fallback path)
    TRACE_ERROR = "trace-error"


@dataclass(frozen=True)
class ChaosRates:
    """Per-kind injection probabilities (per request, in ``[0, 1]``)."""

    connect_refuse: float = 0.0
    conn_reset: float = 0.0
    slow_frame: float = 0.0
    corrupt_frame: float = 0.0
    oversize_frame: float = 0.0
    thread_death: float = 0.0
    trace_error: float = 0.0

    @staticmethod
    def uniform(rate: float) -> "ChaosRates":
        return ChaosRates(*([rate] * len(ServeFaultKind)))

    def rate(self, kind: ServeFaultKind) -> float:
        return getattr(self, kind.name.lower())

    def any(self) -> bool:
        return any(self.rate(kind) > 0.0 for kind in ServeFaultKind)


#: the default campaign profile: every fault kind present, transport
#: faults common enough that an 8x25 campaign fires each kind
MIXED_RATES = ChaosRates(
    connect_refuse=0.03,
    conn_reset=0.06,
    slow_frame=0.04,
    corrupt_frame=0.05,
    oversize_frame=0.03,
    thread_death=0.05,
    trace_error=0.08,
)


@dataclass(frozen=True)
class ServeFaultEvent:
    """One planned fault, as recorded in the byte-reproducible schedule."""

    kind: ServeFaultKind
    index: int
    where: str  # "c<client>r<request>"
    detail: str = ""

    def render(self) -> str:
        text = f"{self.kind.value}#{self.index} at {self.where}"
        return f"{text} ({self.detail})" if self.detail else text


class ServeFaultInjector(DrawStreams):
    """Deterministic per-request fault draws plus the planned-fault log.

    Same contract as :class:`repro.faults.model.FaultInjector`: each fault
    kind draws from its own private stream, so the n-th decision of any
    kind is independent of every other kind's history and the whole log is
    a pure function of the seed.
    """

    def __init__(self, seed: int, rates: ChaosRates) -> None:
        super().__init__(seed)
        self.rates = rates
        self.log: list[ServeFaultEvent] = []

    def should(
        self, kind: ServeFaultKind, where: str, detail: str = ""
    ) -> bool:
        index, rng = self.draw(kind.value)
        fired = rng.random() < self.rates.rate(kind)
        if fired:
            self.log.append(ServeFaultEvent(kind, index, where, detail))
        return fired

    def schedule(self) -> tuple[str, ...]:
        return tuple(event.render() for event in self.log)

    def format_schedule(self) -> str:
        return "\n".join(self.schedule())


# -- the deterministic request mix ------------------------------------------

_GOOD_TEMPLATE = """
func.func @main(%x : i64) -> (i64) {{
  %n = arith.constant {n} : i64
  %s = accfg.setup on "toyvec" ("n" = %n : i64) : !accfg.state<"toyvec">
  %t = accfg.launch %s : !accfg.token<"toyvec">
  accfg.await %t
  %c = arith.constant {add} : i64
  %y = arith.addi %x, %c : i64
  func.return %y : i64
}}
"""

#: deterministic computation failure (unknown op): the service must answer
#: the same typed error with or without chaos
_BAD_MODULE = """
func.func @main(%x : i64) -> (i64) {
  %y = arith.bogus %x : i64
  func.return %y : i64
}
"""

_N_VALUES = (4, 8, 16, 32)
_ADDENDS = (1, 3, 5)
_OP_CYCLE = ("simulate", "compile", "lint", "simulate", "cost", "simulate")
_TENANTS = 4


@dataclass(frozen=True)
class ChaosRequest:
    """One planned request of the campaign mix."""

    client: int
    index: int
    op: str
    module: str
    args: tuple[int, ...]
    tenant: str

    @property
    def where(self) -> str:
        return f"c{self.client}r{self.index}"

    @property
    def key(self) -> tuple:
        """Identity for the fault-free reference (dedup across clients)."""
        return (self.op, self.module, self.args)

    def fields(self) -> dict[str, Any]:
        fields: dict[str, Any] = {"module": self.module, "tenant": self.tenant}
        if self.op == "simulate":
            fields["args"] = list(self.args)
        return fields


def build_requests(clients: int, requests: int) -> list[list[ChaosRequest]]:
    """The campaign's request mix — a pure function of the dimensions.

    Duplicate-heavy on purpose (a handful of distinct modules shared by
    every client) so the fault injection lands on all three dedup tiers;
    roughly every 13th request is a deterministically-broken module, so
    typed computation errors are part of the fault-free baseline too.
    """
    mix: list[list[ChaosRequest]] = []
    for client in range(clients):
        row = []
        for index in range(requests):
            op = _OP_CYCLE[(client + index) % len(_OP_CYCLE)]
            if (index * clients + client) % 13 == 7:
                module = _BAD_MODULE
            else:
                module = _GOOD_TEMPLATE.format(
                    n=_N_VALUES[(client + 2 * index) % len(_N_VALUES)],
                    add=_ADDENDS[index % len(_ADDENDS)],
                )
            args = (index % 5,) if op == "simulate" else ()
            row.append(
                ChaosRequest(
                    client=client,
                    index=index,
                    op=op,
                    module=module,
                    args=args,
                    tenant=f"tenant{client % _TENANTS}",
                )
            )
        mix.append(row)
    return mix


# -- the plan ----------------------------------------------------------------


@dataclass(frozen=True)
class ChaosPlan:
    """Every fault of one campaign, decided up front, single-threaded."""

    seed: int
    rates: ChaosRates
    #: (client, request index) -> fault kinds to apply on the first attempt
    faults: dict[tuple[int, int], tuple[ServeFaultKind, ...]]
    #: the byte-reproducible fired-fault schedule
    schedule: tuple[str, ...]

    def kinds_for(self, request: ChaosRequest) -> tuple[ServeFaultKind, ...]:
        return self.faults.get((request.client, request.index), ())


def _applicable(kind: ServeFaultKind, request: ChaosRequest) -> bool:
    if kind is ServeFaultKind.TRACE_ERROR:
        return request.op == "simulate"
    return True


def build_plan(
    seed: int, mix: Sequence[Sequence[ChaosRequest]], rates: ChaosRates
) -> ChaosPlan:
    """Draw every fault decision for ``mix`` — single-threaded, so the
    schedule is a pure function of the seed no matter how the campaign's
    client threads later interleave."""
    injector = ServeFaultInjector(seed, rates)
    faults: dict[tuple[int, int], tuple[ServeFaultKind, ...]] = {}
    for row in mix:
        for request in row:
            fired = tuple(
                kind
                for kind in ServeFaultKind
                if _applicable(kind, request)
                and injector.should(kind, request.where, request.op)
            )
            if fired:
                faults[(request.client, request.index)] = fired
    return ChaosPlan(
        seed=seed, rates=rates, faults=faults, schedule=injector.schedule()
    )


# -- fault-free references ----------------------------------------------------

#: error types produced by the serving infrastructure rather than by the
#: request's own computation; acceptable for any request under chaos
INFRA_ERRORS = frozenset(
    {"admission", "deadline", "circuit", "shutdown", "internal", "protocol"}
)


def _canonical(response: dict[str, Any]) -> tuple[str, str]:
    """A response reduced to its comparable identity."""
    if response.get("ok"):
        return ("ok", json.dumps(response.get("result"), sort_keys=True))
    error = response.get("error") or {}
    return ("error", str(error.get("type")))


def compute_references(
    mix: Sequence[Sequence[ChaosRequest]],
) -> dict[tuple, tuple[str, str]]:
    """Fault-free outcome per distinct request, on a pristine service."""
    service = CompileService(cache=TraceCache())
    references: dict[tuple, tuple[str, str]] = {}
    for row in mix:
        for request in row:
            if request.key in references:
                continue
            response = service.handle(
                {"id": 0, "op": request.op, **request.fields()}
            )
            references[request.key] = _canonical(response)
    return references


def check_response(
    request: ChaosRequest,
    response: dict[str, Any],
    references: dict[tuple, tuple[str, str]],
) -> str | None:
    """A finding string when ``response`` is a silent corruption, else None."""
    reference = references[request.key]
    kind, payload = _canonical(response)
    if kind == "ok":
        if reference == (kind, payload):
            return None
        return (
            f"{request.where} ({request.op}): ok response differs from "
            f"fault-free reference"
        )
    if payload in INFRA_ERRORS:
        return None  # a typed infrastructure error is an honest answer
    if reference[0] == "error" and reference[1] == payload:
        return None  # the same deterministic computation error as fault-free
    return (
        f"{request.where} ({request.op}): typed error {payload!r} does not "
        f"match fault-free outcome {reference}"
    )


# -- the campaign -------------------------------------------------------------


@dataclass
class ChaosReport:
    """Everything one campaign run measured and asserted."""

    seed: int
    clients: int
    requests_per_client: int
    rates: ChaosRates
    schedule: tuple[str, ...] = ()
    schedule_reproducible: bool = False
    faults_planned: int = 0
    fault_counts: dict[str, int] = field(default_factory=dict)
    ok_responses: int = 0
    typed_errors: dict[str, int] = field(default_factory=dict)
    silent_corruptions: list[str] = field(default_factory=list)
    client_retries: int = 0
    client_failures: list[str] = field(default_factory=list)
    stranded_pending: int = 0
    stranded_in_flight: int = 0
    unjoined_clients: int = 0
    service_stats: dict[str, Any] = field(default_factory=dict)
    #: scheduler-path cost of the transport faults (resubmission model)
    resubmitted_jobs: int = 0
    repaid_fifo: float = 0.0
    repaid_aware: float = 0.0

    @property
    def total_requests(self) -> int:
        return self.clients * self.requests_per_client

    @property
    def passed(self) -> bool:
        return (
            not self.silent_corruptions
            and not self.client_failures
            and self.schedule_reproducible
            and self.stranded_pending == 0
            and self.stranded_in_flight == 0
            and self.unjoined_clients == 0
            and self.repaid_aware <= self.repaid_fifo + 1e-9
        )

    def format(self) -> str:
        lines = [
            f"chaos campaign: seed={self.seed} clients={self.clients} "
            f"requests={self.total_requests}",
            f"  faults planned: {self.faults_planned} "
            + (
                "("
                + ", ".join(
                    f"{kind}={count}"
                    for kind, count in sorted(self.fault_counts.items())
                )
                + ")"
                if self.fault_counts
                else ""
            ),
            f"  responses: {self.ok_responses} ok, "
            f"{sum(self.typed_errors.values())} typed errors "
            f"({', '.join(f'{k}={v}' for k, v in sorted(self.typed_errors.items())) or 'none'})",
            f"  client retries: {self.client_retries}",
            f"  schedule reproducible: {self.schedule_reproducible}",
            f"  stranded: pending={self.stranded_pending} "
            f"in_flight={self.stranded_in_flight} "
            f"unjoined={self.unjoined_clients}",
            f"  silent corruptions: {len(self.silent_corruptions)}",
            f"  re-paid config cycles under resubmission "
            f"({self.resubmitted_jobs} job(s) re-submitted): "
            f"fifo={self.repaid_fifo:.1f} config-aware={self.repaid_aware:.1f}",
        ]
        for finding in self.silent_corruptions[:10]:
            lines.append(f"    CORRUPTION: {finding}")
        for failure in self.client_failures[:10]:
            lines.append(f"    CLIENT FAILURE: {failure}")
        lines.append(f"  verdict: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)


def _dead_port() -> int:
    """A loopback port that refuses connections (bound once, then freed)."""
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]
    finally:
        probe.close()


class _CampaignClient:
    """One campaign thread's client: executes planned faults, then recovers.

    Faults are applied to the FIRST transmission attempt only; the
    recovery path (reconnect, resend of the same payload) is always
    clean, so every fault tests the machinery exactly once.
    """

    def __init__(
        self,
        host: str,
        port: int,
        retry: RetryPolicy,
        dead_port: int,
        max_frame_bytes: int,
    ) -> None:
        self.client = ReproClient(host, port, timeout=15.0, retry=retry)
        self.dead_port = dead_port
        self.max_frame_bytes = max_frame_bytes
        self.protocol_rejections = 0

    # -- low-level helpers -------------------------------------------------

    def _ensure_connected(self) -> None:
        if self.client._sock is None:
            self.client._connect_with_retry()

    def _raw_turn(self, line: bytes) -> dict[str, Any] | None:
        """Send raw bytes, read one response line; None on transport loss."""
        self._ensure_connected()
        try:
            self.client._sock.sendall(line)
            reply = self.client._reader.readline()
            if not reply:
                raise ConnectionResetError("no response")
            return json.loads(reply)
        except (OSError, ValueError):
            self.client._teardown()
            return None

    # -- fault application -------------------------------------------------

    def issue(
        self, request: ChaosRequest, kinds: Sequence[ServeFaultKind]
    ) -> dict[str, Any]:
        payload = self.client.next_payload(request.op, **request.fields())
        kinds = set(kinds)

        if ServeFaultKind.CONNECT_REFUSE in kinds:
            # Force a reconnect whose first attempt lands on a dead port.
            self.client._teardown()
            try:
                socket.create_connection(
                    ("127.0.0.1", self.dead_port), timeout=0.5
                ).close()
            except OSError:
                pass  # the refusal IS the fault; recovery reconnects below

        if ServeFaultKind.CORRUPT_FRAME in kinds:
            reply = self._raw_turn(b'{"op": "comp\x01garbled json!!\n')
            if reply is not None and not reply.get("ok"):
                self.protocol_rejections += 1

        if ServeFaultKind.OVERSIZE_FRAME in kinds:
            reply = self._raw_turn(b"x" * (self.max_frame_bytes + 4096) + b"\n")
            if reply is not None and not reply.get("ok"):
                self.protocol_rejections += 1

        if ServeFaultKind.THREAD_DEATH in kinds:
            # Mark the first attempt so the computing thread dies.  Three
            # honest outcomes: no response (we owned the flight; retry
            # below recomputes), a typed `internal` error (we coalesced
            # onto the dying owner), or a normal response (an identical
            # outcome was already cached).  Either response answers OUR id,
            # so it is final.
            reply = self._raw_turn(encode(dict(payload, chaos={"die": True})))
            if reply is not None:
                return reply

        if ServeFaultKind.CONN_RESET in kinds:
            # The request reaches the server; the connection dies before
            # the response does.  The resend (same id) must be served from
            # the outcome cache — idempotent retry.
            self._ensure_connected()
            try:
                self.client._sock.sendall(encode(payload))
                time.sleep(0.002)  # let the frame leave before the reset
            except OSError:
                pass
            self.client._teardown()

        if ServeFaultKind.SLOW_FRAME in kinds:
            # Dribble the frame in chunks; the server's readline just
            # blocks until the newline lands — the response must be normal.
            data = encode(payload)
            step = max(1, len(data) // 3)
            self._ensure_connected()
            try:
                for start in range(0, len(data), step):
                    self.client._sock.sendall(data[start : start + step])
                    time.sleep(0.001)
                reply = self.client._reader.readline()
                if reply:
                    return json.loads(reply)
            except (OSError, ValueError):
                pass
            self.client._teardown()

        if ServeFaultKind.TRACE_ERROR in kinds:
            # The trace engine fails inside the computation; the service
            # must fall back to the tree interpreter and answer a result
            # bit-identical to fault-free.
            payload = dict(payload, chaos={"trace_error": True})

        return self.client.send_payload(payload)


def run_campaign(
    seed: int = 0,
    clients: int = 8,
    requests: int = 25,
    rates: ChaosRates | None = None,
    deadline_ms: float | None = None,
    max_frame_bytes: int = 64 * 1024,
) -> ChaosReport:
    """One full seeded chaos campaign against a real server."""
    rates = rates if rates is not None else MIXED_RATES
    mix = build_requests(clients, requests)
    plan = build_plan(seed, mix, rates)
    replanned = build_plan(seed, mix, rates)
    report = ChaosReport(
        seed=seed,
        clients=clients,
        requests_per_client=requests,
        rates=rates,
        schedule=plan.schedule,
        schedule_reproducible=plan.schedule == replanned.schedule,
        faults_planned=len(plan.schedule),
        fault_counts=dict(
            Counter(event.split("#")[0] for event in plan.schedule)
        ),
    )
    references = compute_references(mix)

    service = CompileService(
        cache=TraceCache(),
        chaos=ServiceChaos(),
        default_deadline_ms=deadline_ms,
    )
    server = ReproServer(service=service, max_frame_bytes=max_frame_bytes)
    server.start()
    host, port = server.address
    dead_port = _dead_port()

    lock = threading.Lock()

    def run_client(client_index: int) -> None:
        campaign_client = _CampaignClient(
            host,
            port,
            RetryPolicy(max_retries=4, seed=seed * 1000 + client_index),
            dead_port,
            max_frame_bytes,
        )
        try:
            for request in mix[client_index]:
                kinds = plan.kinds_for(request)
                try:
                    response = campaign_client.issue(request, kinds)
                except ServeClientError as error:
                    with lock:
                        report.client_failures.append(
                            f"{request.where}: {error}"
                        )
                    continue
                finding = check_response(request, response, references)
                with lock:
                    if response.get("ok"):
                        report.ok_responses += 1
                    else:
                        error_type = str(
                            (response.get("error") or {}).get("type")
                        )
                        report.typed_errors[error_type] = (
                            report.typed_errors.get(error_type, 0) + 1
                        )
                    if finding:
                        report.silent_corruptions.append(finding)
        finally:
            with lock:
                report.client_retries += campaign_client.client.retries
            campaign_client.client.close()

    threads = [
        threading.Thread(target=run_client, args=(index,), daemon=True)
        for index in range(clients)
    ]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        report.unjoined_clients = sum(
            1 for thread in threads if thread.is_alive()
        )
        # Stranded-waiter check: with every client drained, nothing may be
        # pending or parked inside the service.
        with ReproClient(host, port, retry=NO_RETRY) as checker:
            stats = checker.stats()
        report.service_stats = stats
        report.stranded_pending = int(stats.get("pending", -1))
        report.stranded_in_flight = int(stats.get("in_flight", -1))
    finally:
        server.stop()

    _charge_scheduler_path(report, mix, plan)
    return report


def _charge_scheduler_path(
    report: ChaosReport,
    mix: Sequence[Sequence[ChaosRequest]],
    plan: ChaosPlan,
) -> None:
    """Replay the plan's transport faults as scheduler resubmissions.

    A transport-level fault after the request reached the service means
    the configuration was paid and the tenant re-submits anyway — the
    serving-layer analogue of the paper's re-paid configuration cost.
    """
    transport_kinds = {
        ServeFaultKind.CONNECT_REFUSE,
        ServeFaultKind.CONN_RESET,
        ServeFaultKind.THREAD_DEATH,
    }
    spec = get_accelerator("toyvec")
    jobs: list[TenantJob] = []
    failed: list[int] = []
    arrival = 0
    for row in mix:
        for request in row:
            if request.op != "simulate" or request.module == _BAD_MODULE:
                continue
            config = {
                "n": _N_VALUES[
                    (request.client + 2 * request.index) % len(_N_VALUES)
                ]
            }
            jobs.append(
                TenantJob.make(
                    request.tenant, config, spec.compute_cycles(config), arrival
                )
            )
            if any(k in transport_kinds for k in plan.kinds_for(request)):
                failed.append(arrival)
            arrival += 1
    if not jobs:
        return
    resubmitted = with_resubmissions(jobs, failed)
    results = compare_policies(resubmitted, spec)
    report.resubmitted_jobs = len(failed)
    report.repaid_fifo = results["fifo"].repaid_config_cycles
    report.repaid_aware = results["config-aware"].repaid_config_cycles


# -- focused scenarios --------------------------------------------------------


def run_quota_storm(
    seed: int = 0, flooders: int = 6, victim_requests: int = 10
) -> dict[str, Any]:
    """One tenant floods slow requests; admission must protect the victim.

    The flooding tenant's distinct slow (chaos-stalled) modules exceed its
    per-tenant quota, so a healthy share of its requests are shed with
    typed ``admission`` errors — while the victim tenant's requests all
    succeed and the service drains completely afterwards.
    """
    service = CompileService(
        cache=TraceCache(),
        chaos=ServiceChaos(),
        max_pending=32,
        max_pending_per_tenant=2,
    )
    server = ReproServer(service=service)
    server.start()
    host, port = server.address
    results = {"flood_ok": 0, "flood_admission": 0, "flood_other": 0}
    lock = threading.Lock()

    def flood(worker: int) -> None:
        with ReproClient(host, port, retry=NO_RETRY) as client:
            for index in range(4):
                module = _GOOD_TEMPLATE.format(n=64 + worker * 7 + index, add=1)
                response = client.send_payload(
                    client.next_payload(
                        "simulate",
                        module=module,
                        args=[1],
                        tenant="flooder",
                        chaos={"sleep_ms": 60},
                    )
                )
                with lock:
                    if response.get("ok"):
                        results["flood_ok"] += 1
                    elif (response.get("error") or {}).get("type") == "admission":
                        results["flood_admission"] += 1
                    else:
                        results["flood_other"] += 1

    threads = [
        threading.Thread(target=flood, args=(worker,), daemon=True)
        for worker in range(flooders)
    ]
    for thread in threads:
        thread.start()
    victim_ok = 0
    victim_errors: list[str] = []
    try:
        with ReproClient(host, port) as victim:
            for index in range(victim_requests):
                module = _GOOD_TEMPLATE.format(n=4, add=_ADDENDS[index % 3])
                response = victim.simulate(module, args=[index], tenant="victim")
                if response.get("ok"):
                    victim_ok += 1
                else:
                    victim_errors.append(
                        str((response.get("error") or {}).get("type"))
                    )
        for thread in threads:
            thread.join(timeout=60.0)
        with ReproClient(host, port, retry=NO_RETRY) as checker:
            stats = checker.stats()
    finally:
        server.stop()
    passed = (
        victim_ok == victim_requests
        and not victim_errors
        and results["flood_admission"] > 0
        and results["flood_other"] == 0
        and stats.get("pending") == 0
        and not any(thread.is_alive() for thread in threads)
    )
    return {
        "scenario": "quota-storm",
        "passed": passed,
        "victim_ok": victim_ok,
        "victim_errors": victim_errors,
        **results,
        "pending_after": stats.get("pending"),
    }


def run_cache_corruption(
    seed: int = 0, modules: int = 6, directory: str | None = None
) -> dict[str, Any]:
    """Corrupt, then delete, the persistent store under live traffic.

    Phase 1 populates the store; phase 2 garbles a seeded selection of
    entries on disk and re-issues every request (correct answers, the
    corruption counted in ``store.rejected``); phase 3 deletes the whole
    directory mid-run and keeps serving (the store degrades to
    in-memory-only; nothing raises, nothing resurrects the directory).
    """
    owns_directory = directory is None
    if owns_directory:
        directory = tempfile.mkdtemp(prefix="repro-chaos-pcache-")
    store = PersistentStore(directory)
    service = CompileService(cache=TraceCache(store=store), chaos=ServiceChaos())
    server = ReproServer(service=service)
    server.start()
    host, port = server.address
    texts = [
        _GOOD_TEMPLATE.format(n=_N_VALUES[i % len(_N_VALUES)], add=_ADDENDS[i % 3])
        for i in range(modules)
    ]
    findings: list[str] = []
    expected: dict[int, str] = {}

    def sweep(client: ReproClient, phase: str) -> None:
        for index, text in enumerate(texts):
            response = client.simulate(text, args=[index])
            if not response.get("ok"):
                findings.append(
                    f"{phase}: module {index} failed: {response.get('error')}"
                )
                continue
            canonical = json.dumps(response["result"], sort_keys=True)
            if index not in expected:
                expected[index] = canonical
            elif expected[index] != canonical:
                findings.append(
                    f"{phase}: module {index} result drifted from phase 1"
                )

    try:
        with ReproClient(host, port) as client:
            sweep(client, "populate")
            # Phase 2: garble a seeded selection of entries in place.
            injector = ServeFaultInjector(seed, ChaosRates.uniform(1.0))
            entries = sorted(
                name
                for name in os.listdir(directory)
                if name.endswith(".bin")
            )
            corrupted = 0
            for name in entries:
                _, rng = injector.draw("garble")
                if rng.random() < 0.6:
                    with open(os.path.join(directory, name), "wb") as handle:
                        handle.write(b"\x00garbage" + bytes([rng.randrange(256)]))
                    corrupted += 1
            # The in-memory tier would mask the corruption; evict it.
            service.cache = TraceCache(store=store)
            service._outcomes.clear()
            sweep(client, "corrupted")
            rejected_after_corruption = store.rejected
            # Phase 3: delete the directory outright, keep serving.
            shutil.rmtree(directory)
            service.cache = TraceCache(store=store)
            service._outcomes.clear()
            sweep(client, "deleted")
            sweep(client, "deleted-2")
    finally:
        server.stop()
        if owns_directory and os.path.isdir(directory):
            shutil.rmtree(directory, ignore_errors=True)
    passed = (
        not findings
        and corrupted > 0
        and rejected_after_corruption > 0
        and store.degraded
        and not os.path.isdir(directory)
    )
    return {
        "scenario": "cache-corruption",
        "passed": passed,
        "findings": findings,
        "entries_corrupted": corrupted,
        "store_rejected": store.rejected,
        "store_io_errors": store.io_errors,
        "store_degraded": store.degraded,
        "directory_resurrected": os.path.isdir(directory),
    }


__all__ = [
    "ServeFaultKind",
    "ChaosRates",
    "MIXED_RATES",
    "ServeFaultEvent",
    "ServeFaultInjector",
    "ChaosRequest",
    "ChaosPlan",
    "ChaosReport",
    "build_requests",
    "build_plan",
    "compute_references",
    "check_response",
    "run_campaign",
    "run_quota_storm",
    "run_cache_corruption",
]
