"""The compilation service: shared caches, in-flight dedup, admission.

One :class:`CompileService` instance serves every connection and every
tenant of a server process.  It generalizes the paper's dedup pass from
intra-program to inter-request, in three tiers:

* **In-flight request dedup** — concurrent requests with the same compute
  key (op, module content hash, pipeline, parameters) coalesce onto ONE
  computation: the first requester computes, the rest park on an event and
  share the outcome (including error outcomes — a module that fails to
  parse fails identically for every requester).  This is what makes
  duplicate-heavy concurrent workloads cheap: N tenants submitting the same
  module pay for one compilation.
* **Outcome + module caches** — an identical request that *completed*
  earlier is served from a bounded LRU of outcomes, and a re-request that
  only differs in parameters reuses the parsed-and-optimized module object,
  which keeps the shared :class:`~repro.analysis.AnalysisManager` entries
  (keyed on op identity) alive across requests.
* **Shared engine caches** — all tenants share one
  :class:`~repro.engine.TraceCache` (process-global ``TRACE_CACHE`` by
  default, with whatever persistent tier is attached to it), so a compile
  by tenant A warms the simulate of tenant B.

Admission control bounds the damage any one tenant can do: at most
``max_pending_per_tenant`` of a tenant's requests may be in the service at
once (and ``max_pending`` across all tenants); excess requests are rejected
with an ``admission`` error instead of queueing without bound.  Rejection
is per-request and immediate — a well-behaved tenant is never starved by a
flooding one.

Everything here must be thread-safe: the server runs one handler thread
per connection.  The service's own bookkeeping is lock-guarded; the engine
caches carry their own locks (PR: thread-safety satellites).

Resilience layer (chaos-hardening PR; see ``docs/ROBUSTNESS.md``):

* **Per-request deadlines** — a request carries ``deadline_ms`` (or
  inherits ``default_deadline_ms``); a coalesced waiter whose budget
  expires before the owner publishes gets a typed ``deadline`` error, and
  an owner whose computation outlives the budget still *publishes* the
  outcome (so the client's idempotent retry is a cache hit) but answers
  with ``deadline``.
* **Single-flight rescue** — an owner thread that dies mid-computation
  (chaos injection, a server bug) publishes a typed ``internal`` outcome
  to its flight and wakes every waiter before propagating; the flight is
  cleared, never cached, so a retry recomputes cleanly.  No deadlock, no
  poisoned key.
* **Per-tenant circuit breaker** — ``breaker.threshold`` consecutive
  computation failures open the tenant's circuit for ``breaker.cooldown``
  service requests; while open, the tenant's work is shed with a typed
  ``circuit`` error *before* admission (an abusive tenant stops burning
  pending slots), then one half-open probe decides re-close vs re-open.
* **Graceful degradation** — a persistent store that loses its directory
  runs in-memory-only (see :mod:`repro.engine.pcache`); a trace-engine
  internal error on ``simulate`` falls back to the tree interpreter for
  that request, bit-identical results, counted in ``engine_fallbacks``.
* **Orderly close** — :meth:`CompileService.close` wakes every parked
  waiter with a typed ``shutdown`` error and fails new work fast; no
  thread is left parked on a flight that will never complete.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import Counter, OrderedDict
from dataclasses import dataclass
from typing import Any

from ..analysis import AnalysisManager
from ..engine import TRACE_CACHE, module_fingerprint, run_module_traced
from ..interp import Interpreter, InterpreterError
from ..ir import parse_module, verify_operation
from ..passes import PIPELINES, pipeline_by_name
from ..sim import CoSimulator
from .protocol import (
    DEFAULT_TENANT,
    MODULE_OPS,
    PROTOCOL,
    ProtocolError,
    decode_request,
    encode,
    error_response,
    ok_response,
)


class AdmissionError(Exception):
    """Request rejected by admission control (tenant or service over quota)."""


class ChaosThreadDeath(BaseException):
    """Injected compile-thread death.

    Deliberately a :class:`BaseException` so ``_execute``'s blanket
    ``except Exception`` cannot convert it into a polite error response —
    it must tear through the stack exactly like a real dying thread,
    exercising the single-flight rescue and the handler-thread cleanup.
    """


class ChaosEngineError(RuntimeError):
    """Injected trace-engine internal error (drives the tree fallback)."""


class ServiceChaos:
    """Arms the service to honor per-request ``chaos`` markers.

    Only the chaos campaign constructs one of these; an un-armed service
    (the default) ignores the ``chaos`` request field entirely, so no
    client can crash a production server by sending markers.  Markers:

    * ``{"die": true}`` — the computing thread raises
      :class:`ChaosThreadDeath` mid-``_execute``.
    * ``{"sleep_ms": N}`` — the computation stalls N ms (deadline and
      quota-storm scenarios).
    * ``{"trace_error": true}`` — the trace engine raises
      :class:`ChaosEngineError` on ``simulate``, forcing the
      tree-interpreter fallback.
    """

    def __init__(self) -> None:
        self.deaths = 0
        self.sleeps = 0
        self.trace_errors = 0
        self._lock = threading.Lock()

    def on_execute(self, request: dict[str, Any]) -> None:
        """Called at the top of every computation on an armed service."""
        marker = request.get("chaos")
        if not isinstance(marker, dict):
            return
        sleep_ms = marker.get("sleep_ms")
        if isinstance(sleep_ms, (int, float)) and sleep_ms > 0:
            with self._lock:
                self.sleeps += 1
            time.sleep(sleep_ms / 1e3)
        if marker.get("die"):
            with self._lock:
                self.deaths += 1
            raise ChaosThreadDeath("injected compile-thread death")

    def on_trace(self, request: dict[str, Any]) -> None:
        """Called before the trace engine runs a ``simulate``."""
        marker = request.get("chaos")
        if isinstance(marker, dict) and marker.get("trace_error"):
            with self._lock:
                self.trace_errors += 1
            raise ChaosEngineError("injected trace-engine failure")


@dataclass(frozen=True)
class CircuitBreakerPolicy:
    """Per-tenant breaker knobs.

    The cooldown is measured in *service request count*, not wall time, so
    breaker behavior is deterministic under a seeded campaign: the same
    request sequence opens and half-opens circuits at the same points
    regardless of thread timing.
    """

    enabled: bool = True
    #: consecutive computation failures that open the circuit
    threshold: int = 5
    #: service requests that must pass before the half-open probe
    cooldown: int = 16


class _Breaker:
    """Mutable per-tenant breaker state (guarded by the service lock)."""

    __slots__ = ("failures", "open_until", "probing")

    def __init__(self) -> None:
        self.failures = 0
        #: request-count stamp until which the circuit stays open (0=closed)
        self.open_until = 0
        #: True while the single half-open probe is in flight
        self.probing = False


class _Flight:
    """One computation in progress; duplicate requesters park on ``event``."""

    __slots__ = ("event", "outcome")

    def __init__(self) -> None:
        self.event = threading.Event()
        #: (ok, payload) — payload is the result dict or (type, message)
        self.outcome: tuple[bool, Any] | None = None


def _module_key(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


class CompileService:
    """Thread-safe multi-tenant compile/simulate/lint/cost service.

    ``dedup=False`` disables every request-level tier (in-flight dedup,
    outcome cache, module cache) and is the measured baseline of the
    ``serve`` bench workload: serial request handling, each request paying
    parse + pipeline + execution itself (the engine-level trace cache stays
    on — that tier predates the server).
    """

    def __init__(
        self,
        cache=None,
        analyses: AnalysisManager | None = None,
        dedup: bool = True,
        max_pending: int = 64,
        max_pending_per_tenant: int = 8,
        outcome_cache_size: int = 256,
        module_cache_size: int = 128,
        default_deadline_ms: float | None = None,
        breaker: CircuitBreakerPolicy | None = None,
        chaos: ServiceChaos | None = None,
    ) -> None:
        self.cache = cache if cache is not None else TRACE_CACHE
        self.analyses = analyses if analyses is not None else AnalysisManager()
        self.dedup = dedup
        self.max_pending = max_pending
        self.max_pending_per_tenant = max_pending_per_tenant
        self.outcome_cache_size = outcome_cache_size
        self.module_cache_size = module_cache_size
        #: applied when a request carries no ``deadline_ms`` (None = none)
        self.default_deadline_ms = default_deadline_ms
        self.breaker = breaker if breaker is not None else CircuitBreakerPolicy()
        #: armed only by the chaos campaign; None ignores chaos markers
        self.chaos = chaos
        self.started_at = time.time()
        self._lock = threading.RLock()
        self._in_flight: dict[tuple, _Flight] = {}
        #: compute key -> (ok, payload); completed outcomes, LRU-bounded
        self._outcomes: OrderedDict[tuple, tuple[bool, Any]] = OrderedDict()
        #: (module hash, pipeline) -> parsed-and-optimized module object
        self._modules: OrderedDict[tuple, Any] = OrderedDict()
        self._pending: Counter[str] = Counter()
        self._pending_total = 0
        self._breakers: dict[str, _Breaker] = {}
        self._closed = False
        self._close_reason = ""
        # -- counters (all under self._lock) ------------------------------
        self.requests = 0
        self.by_op: Counter[str] = Counter()
        self.by_tenant: Counter[str] = Counter()
        self.coalesced = 0
        self.outcome_hits = 0
        self.module_hits = 0
        self.admission_rejected = 0
        self.errors = 0
        self.deadline_expired = 0
        self.circuit_rejected = 0
        self.flight_crashes = 0
        self.engine_fallbacks = 0

    # -- admission --------------------------------------------------------

    def _admit(self, tenant: str) -> None:
        with self._lock:
            if self._pending_total >= self.max_pending:
                self.admission_rejected += 1
                raise AdmissionError(
                    f"service over capacity ({self.max_pending} pending)"
                )
            if self._pending[tenant] >= self.max_pending_per_tenant:
                self.admission_rejected += 1
                raise AdmissionError(
                    f"tenant {tenant!r} over quota "
                    f"({self.max_pending_per_tenant} pending)"
                )
            self._pending[tenant] += 1
            self._pending_total += 1

    def _release(self, tenant: str) -> None:
        with self._lock:
            self._pending[tenant] -= 1
            if self._pending[tenant] <= 0:
                del self._pending[tenant]
            self._pending_total -= 1

    # -- circuit breaker ---------------------------------------------------

    def _breaker_check(self, tenant: str) -> str | None:
        """Shed or admit ``tenant``; an error message when the circuit is open.

        Runs *before* admission so a shed tenant never occupies a pending
        slot.  After the cooldown, exactly one request is let through as
        the half-open probe; its outcome re-closes or re-opens the circuit.
        """
        if not self.breaker.enabled:
            return None
        with self._lock:
            state = self._breakers.get(tenant)
            if state is None or state.open_until <= 0:
                return None
            cooled = self.requests >= state.open_until
            if cooled and not state.probing:
                state.probing = True  # this request is the half-open probe
                return None
            self.circuit_rejected += 1
            return (
                f"tenant {tenant!r} circuit open after {state.failures} "
                f"consecutive failures; retry later"
            )

    def _breaker_record(self, tenant: str, failed: bool | None) -> None:
        """Account one computation outcome toward the tenant's breaker.

        ``failed=None`` is neutral — an infrastructure outcome (admission,
        deadline, shutdown, a crashed flight) that is not evidence about
        the tenant's code either way: the circuit state is kept, and a
        half-open probe slot is freed for the next request to use.
        """
        if not self.breaker.enabled:
            return
        with self._lock:
            state = self._breakers.get(tenant)
            if failed is None:
                if state is not None:
                    state.probing = False
                return
            if not failed:
                if state is not None:
                    self._breakers.pop(tenant, None)  # full reset
                return
            if state is None:
                state = self._breakers.setdefault(tenant, _Breaker())
            state.failures += 1
            if state.probing or state.failures >= self.breaker.threshold:
                # Open (or re-open after a failed half-open probe).
                state.open_until = self.requests + self.breaker.cooldown
                state.probing = False

    # -- orderly close -----------------------------------------------------

    def close(self, reason: str = "server stopping") -> None:
        """Fail fast and wake every parked waiter with a typed error.

        Idempotent; called by :meth:`ReproServer.stop` after the accept
        loop stops.  Any flight still computing keeps its owner thread (it
        will publish into the void), but every *waiter* wakes immediately
        with a ``shutdown`` outcome instead of parking forever.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._close_reason = reason
            flights = list(self._in_flight.values())
            self._in_flight.clear()
        for flight in flights:
            if flight.outcome is None:
                flight.outcome = (False, ("shutdown", reason))
            flight.event.set()

    @property
    def closed(self) -> bool:
        return self._closed

    # -- request entry points ---------------------------------------------

    def handle_line(self, line: str | bytes) -> bytes:
        """Decode one wire line, handle it, encode the response."""
        try:
            request = decode_request(line)
        except ProtocolError as error:
            with self._lock:
                self.errors += 1
            return encode(error_response({}, "protocol", str(error)))
        return encode(self.handle(request))

    def handle(self, request: dict[str, Any]) -> dict[str, Any]:
        """Handle one validated request; always returns a response dict."""
        op = request["op"]
        tenant = request.get("tenant", DEFAULT_TENANT)
        started = time.perf_counter()
        with self._lock:
            self.requests += 1
            self.by_op[op] += 1
            self.by_tenant[tenant] += 1

        def meta(**extra: Any) -> dict[str, Any]:
            wall_ms = (time.perf_counter() - started) * 1e3
            base = {"tenant": tenant, "wall_ms": round(wall_ms, 3)}
            base.update(extra)
            return base

        if op == "ping":
            return ok_response(request, {"protocol": PROTOCOL}, meta())
        if op == "stats":
            return ok_response(request, self.stats(), meta())
        if op == "shutdown":
            # The server watches for this op and stops accepting after the
            # response is written; the service itself has nothing to stop.
            return ok_response(request, {"shutting_down": True}, meta())
        if self._closed:
            return error_response(
                request,
                "shutdown",
                f"service closed: {self._close_reason or 'shutting down'}",
                meta(),
            )

        circuit_message = self._breaker_check(tenant)
        if circuit_message is not None:
            return error_response(request, "circuit", circuit_message, meta())

        deadline_ms = request.get("deadline_ms", self.default_deadline_ms)
        deadline = started + deadline_ms / 1e3 if deadline_ms else None

        try:
            self._admit(tenant)
        except AdmissionError as error:
            self._breaker_record(tenant, failed=None)  # not the tenant's code
            return error_response(request, "admission", str(error), meta())
        try:
            ok, payload, shared = self._compute_shared(op, request, deadline)
        finally:
            self._release(tenant)
        if ok and deadline is not None and time.perf_counter() > deadline:
            # The outcome is published (a retry is a cache hit), but this
            # request's budget is spent: answer with the typed deadline
            # error the client asked for rather than a late success.
            ok, payload, shared = (
                False,
                (
                    "deadline",
                    f"deadline of {deadline_ms:g} ms expired "
                    f"(outcome cached for retry)",
                ),
                shared,
            )
            with self._lock:
                self.deadline_expired += 1
        if ok:
            self._breaker_record(tenant, failed=False)
            return ok_response(
                request,
                payload,
                meta(coalesced=shared == "coalesced", cached=shared == "cached"),
            )
        kind, message = payload
        with self._lock:
            self.errors += 1
        # Infrastructure outcomes (deadline/shutdown/internal) are not the
        # tenant's fault and must not open its circuit.
        infra = kind in ("deadline", "shutdown", "internal")
        self._breaker_record(tenant, failed=None if infra else True)
        return error_response(
            request,
            kind,
            message,
            meta(coalesced=shared == "coalesced", cached=shared == "cached"),
        )

    # -- the dedup core ----------------------------------------------------

    def _compute_key(self, op: str, request: dict[str, Any]) -> tuple:
        return (
            op,
            _module_key(request["module"]),
            self._pipeline_name(op, request),
            request.get("function", "main"),
            tuple(request.get("args") or ()),
            bool(request.get("functional", False)),
        )

    @staticmethod
    def _pipeline_name(op: str, request: dict[str, Any]) -> str:
        pipeline = request.get("pipeline")
        if pipeline is None:
            pipeline = "full" if op == "compile" else ""
        return pipeline

    def _compute_shared(
        self, op: str, request: dict[str, Any], deadline: float | None = None
    ) -> tuple[bool, Any, str]:
        """Run the computation with outcome sharing.

        Returns ``(ok, payload, shared)`` where ``shared`` is ``"computed"``,
        ``"coalesced"`` (an in-flight duplicate did the work) or ``"cached"``
        (a completed duplicate did).  ``deadline`` is an absolute
        ``perf_counter`` stamp bounding how long a coalesced waiter parks.
        """
        if not self.dedup:
            return (*self._execute(op, request), "computed")
        key = self._compute_key(op, request)
        while True:
            with self._lock:
                outcome = self._outcomes.get(key)
                if outcome is not None:
                    self._outcomes.move_to_end(key)
                    self.outcome_hits += 1
                    return (*outcome, "cached")
                flight = self._in_flight.get(key)
                if flight is None:
                    flight = _Flight()
                    self._in_flight[key] = flight
                    owner = True
                else:
                    owner = False
                    self.coalesced += 1
            if not owner:
                if deadline is None:
                    completed = flight.event.wait()
                else:
                    completed = flight.event.wait(
                        max(0.0, deadline - time.perf_counter())
                    )
                if not completed:
                    # The waiter's budget ran out before the owner published.
                    # The flight stays (the owner will finish and cache it);
                    # this request answers with a typed deadline error, and
                    # the client's idempotent retry will hit the cache.
                    with self._lock:
                        self.deadline_expired += 1
                    return (
                        False,
                        (
                            "deadline",
                            "deadline expired while coalesced on an "
                            "in-flight computation",
                        ),
                        "coalesced",
                    )
                if flight.outcome is None:  # pre-rescue safety net: retry
                    continue
                return (*flight.outcome, "coalesced")
            try:
                outcome = self._execute(op, request)
            except BaseException as error:
                # The computing thread is dying (chaos injection, a server
                # bug, KeyboardInterrupt).  Rescue the waiters: publish a
                # typed ``internal`` outcome to the flight — NOT to the
                # outcome cache, a retry must recompute — clear the flight
                # so the key is not poisoned, wake everyone, and only then
                # let the crash propagate.
                with self._lock:
                    self.flight_crashes += 1
                    self._in_flight.pop(key, None)
                if flight.outcome is None:
                    flight.outcome = (
                        False,
                        (
                            "internal",
                            f"computation crashed: "
                            f"{type(error).__name__}: {error}",
                        ),
                    )
                flight.event.set()
                raise
            flight.outcome = outcome
            with self._lock:
                self._outcomes[key] = outcome
                while len(self._outcomes) > self.outcome_cache_size:
                    self._outcomes.popitem(last=False)
                self._in_flight.pop(key, None)
            flight.event.set()
            return (*outcome, "computed")

    # -- computation proper -------------------------------------------------

    def _parsed_module(self, op: str, request: dict[str, Any]):
        """Parse + verify + optimize, reusing the module cache when allowed."""
        text = request["module"]
        pipeline = self._pipeline_name(op, request)
        if pipeline and pipeline not in PIPELINES:
            raise ProtocolError(
                f"unknown pipeline {pipeline!r}; expected one of "
                f"{', '.join(sorted(PIPELINES))}"
            )
        key = (_module_key(text), pipeline)
        if self.dedup:
            with self._lock:
                module = self._modules.get(key)
                if module is not None:
                    self._modules.move_to_end(key)
                    self.module_hits += 1
                    return module
        module = parse_module(text, "<request>")
        verify_operation(module)
        if pipeline:
            pipeline_by_name(pipeline).run(module)
        if self.dedup:
            with self._lock:
                self._modules[key] = module
                while len(self._modules) > self.module_cache_size:
                    self._modules.popitem(last=False)
        return module

    def _execute(self, op: str, request: dict[str, Any]) -> tuple[bool, Any]:
        """One computation; never raises for request-shaped problems.

        :class:`ChaosThreadDeath` deliberately escapes (it derives from
        ``BaseException``): the single-flight rescue and the handler thread
        must see a genuinely dying thread, not a polite error response.
        """
        if self.chaos is not None:
            self.chaos.on_execute(request)
        try:
            module = self._parsed_module(op, request)
            handler = getattr(self, f"_op_{op}")
            return (True, handler(module, request))
        except ProtocolError as error:
            return (False, ("protocol", str(error)))
        except Exception as error:  # noqa: BLE001 - reported to the client
            return (False, (type(error).__name__, str(error)))

    def _op_compile(self, module, request: dict[str, Any]) -> dict[str, Any]:
        fingerprint = module_fingerprint(module)
        # Publish the compiled trace into the shared cache so any tenant's
        # later simulate of the same module starts warm.
        self.cache.get_or_compile(module, key=fingerprint)
        return {
            "text": str(module),
            "fingerprint": fingerprint,
            "ops": sum(1 for _ in module.walk()),
        }

    def _op_simulate(self, module, request: dict[str, Any]) -> dict[str, Any]:
        functional = bool(request.get("functional", False))
        function = request.get("function", "main")
        args = list(request.get("args") or [])
        sim = CoSimulator(functional=functional)
        try:
            if self.chaos is not None:
                self.chaos.on_trace(request)
            results, sim = run_module_traced(
                module, sim, function=function, args=args, cache=self.cache
            )
        except InterpreterError:
            # A semantic error in the request's program: deterministic under
            # either engine, so report it — falling back would just re-raise.
            raise
        except Exception:  # noqa: BLE001 - engine-internal: degrade
            # Trace-engine internal failure (a compiler bug, injected
            # chaos): degrade to the tree interpreter for this request on a
            # FRESH simulator — same semantics, bit-identical results, just
            # slower.  Counted, never marked in the result payload (the
            # chaos campaign compares results byte-for-byte).
            with self._lock:
                self.engine_fallbacks += 1
            sim = CoSimulator(functional=functional)
            results = Interpreter(module, sim).run(function, args)
        stats = sim.trace.stats(sim.cost_model)
        return {
            "results": [int(value) for value in results],
            "total_cycles": sim.total_cycles,
            "instrs": {
                "total": stats.total_instrs,
                "setup": stats.setup_instrs,
                "calc": stats.calc_instrs,
            },
            "config_bytes": stats.config_bytes,
            "launches": {
                name: device.launch_count
                for name, device in sim.devices.items()
            },
        }

    def _op_lint(self, module, request: dict[str, Any]) -> dict[str, Any]:
        from ..analysis import Severity, run_lints

        diagnostics = run_lints(
            module,
            target=request.get("target"),
            analyses=self.analyses,
        )
        return {
            "diagnostics": [d.to_dict() for d in diagnostics],
            "errors": sum(
                1 for d in diagnostics if d.severity is Severity.ERROR
            ),
            "warnings": sum(
                1 for d in diagnostics if d.severity is Severity.WARNING
            ),
        }

    def _op_cost(self, module, request: dict[str, Any]) -> dict[str, Any]:
        from ..analysis.cost import format_cost_table

        analysis = self.analyses.cost(module)
        return {"table": format_cost_table(analysis)}

    # -- introspection ------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        with self._lock:
            stats = {
                "protocol": PROTOCOL,
                "uptime_s": round(time.time() - self.started_at, 3),
                "dedup": self.dedup,
                "closed": self._closed,
                "requests": self.requests,
                "by_op": dict(self.by_op),
                "tenants": len(self.by_tenant),
                "pending": self._pending_total,
                "in_flight": len(self._in_flight),
                "coalesced": self.coalesced,
                "outcome_hits": self.outcome_hits,
                "module_hits": self.module_hits,
                "admission_rejected": self.admission_rejected,
                "deadline_expired": self.deadline_expired,
                "circuit_rejected": self.circuit_rejected,
                "circuits_open": sum(
                    1 for s in self._breakers.values() if s.open_until > 0
                ),
                "flight_crashes": self.flight_crashes,
                "engine_fallbacks": self.engine_fallbacks,
                "errors": self.errors,
                "dedup_hit_rate": round(
                    (self.coalesced + self.outcome_hits) / self.requests, 4
                )
                if self.requests
                else 0.0,
                "trace_cache": {
                    "entries": len(self.cache),
                    "hits": self.cache.hits,
                    "misses": self.cache.misses,
                    "coalesced": getattr(self.cache, "coalesced", 0),
                },
                "analyses": {
                    "entries": len(self.analyses),
                    "hits": self.analyses.hits,
                    "misses": self.analyses.misses,
                },
            }
            store = getattr(self.cache, "store", None)
            if store is not None:
                stats["persistent_store"] = {
                    "degraded": store.degraded,
                    "rejected": store.rejected,
                    "io_errors": store.io_errors,
                    "hits": store.hits,
                    "misses": store.misses,
                }
            return stats


#: ops every service understands (re-exported for the server/CLI)
SERVICE_OPS = MODULE_OPS + ("stats", "ping", "shutdown")
