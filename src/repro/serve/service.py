"""The compilation service: shared caches, in-flight dedup, admission.

One :class:`CompileService` instance serves every connection and every
tenant of a server process.  It generalizes the paper's dedup pass from
intra-program to inter-request, in three tiers:

* **In-flight request dedup** — concurrent requests with the same compute
  key (op, module content hash, pipeline, parameters) coalesce onto ONE
  computation: the first requester computes, the rest park on an event and
  share the outcome (including error outcomes — a module that fails to
  parse fails identically for every requester).  This is what makes
  duplicate-heavy concurrent workloads cheap: N tenants submitting the same
  module pay for one compilation.
* **Outcome + module caches** — an identical request that *completed*
  earlier is served from a bounded LRU of outcomes, and a re-request that
  only differs in parameters reuses the parsed-and-optimized module object,
  which keeps the shared :class:`~repro.analysis.AnalysisManager` entries
  (keyed on op identity) alive across requests.
* **Shared engine caches** — all tenants share one
  :class:`~repro.engine.TraceCache` (process-global ``TRACE_CACHE`` by
  default, with whatever persistent tier is attached to it), so a compile
  by tenant A warms the simulate of tenant B.

Admission control bounds the damage any one tenant can do: at most
``max_pending_per_tenant`` of a tenant's requests may be in the service at
once (and ``max_pending`` across all tenants); excess requests are rejected
with an ``admission`` error instead of queueing without bound.  Rejection
is per-request and immediate — a well-behaved tenant is never starved by a
flooding one.

Everything here must be thread-safe: the server runs one handler thread
per connection.  The service's own bookkeeping is lock-guarded; the engine
caches carry their own locks (PR: thread-safety satellites).
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import Counter, OrderedDict
from typing import Any

from ..analysis import AnalysisManager
from ..engine import TRACE_CACHE, module_fingerprint, run_module_traced
from ..ir import parse_module, verify_operation
from ..passes import PIPELINES, pipeline_by_name
from ..sim import CoSimulator
from .protocol import (
    DEFAULT_TENANT,
    MODULE_OPS,
    PROTOCOL,
    ProtocolError,
    decode_request,
    encode,
    error_response,
    ok_response,
)


class AdmissionError(Exception):
    """Request rejected by admission control (tenant or service over quota)."""


class _Flight:
    """One computation in progress; duplicate requesters park on ``event``."""

    __slots__ = ("event", "outcome")

    def __init__(self) -> None:
        self.event = threading.Event()
        #: (ok, payload) — payload is the result dict or (type, message)
        self.outcome: tuple[bool, Any] | None = None


def _module_key(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


class CompileService:
    """Thread-safe multi-tenant compile/simulate/lint/cost service.

    ``dedup=False`` disables every request-level tier (in-flight dedup,
    outcome cache, module cache) and is the measured baseline of the
    ``serve`` bench workload: serial request handling, each request paying
    parse + pipeline + execution itself (the engine-level trace cache stays
    on — that tier predates the server).
    """

    def __init__(
        self,
        cache=None,
        analyses: AnalysisManager | None = None,
        dedup: bool = True,
        max_pending: int = 64,
        max_pending_per_tenant: int = 8,
        outcome_cache_size: int = 256,
        module_cache_size: int = 128,
    ) -> None:
        self.cache = cache if cache is not None else TRACE_CACHE
        self.analyses = analyses if analyses is not None else AnalysisManager()
        self.dedup = dedup
        self.max_pending = max_pending
        self.max_pending_per_tenant = max_pending_per_tenant
        self.outcome_cache_size = outcome_cache_size
        self.module_cache_size = module_cache_size
        self.started_at = time.time()
        self._lock = threading.RLock()
        self._in_flight: dict[tuple, _Flight] = {}
        #: compute key -> (ok, payload); completed outcomes, LRU-bounded
        self._outcomes: OrderedDict[tuple, tuple[bool, Any]] = OrderedDict()
        #: (module hash, pipeline) -> parsed-and-optimized module object
        self._modules: OrderedDict[tuple, Any] = OrderedDict()
        self._pending: Counter[str] = Counter()
        self._pending_total = 0
        # -- counters (all under self._lock) ------------------------------
        self.requests = 0
        self.by_op: Counter[str] = Counter()
        self.by_tenant: Counter[str] = Counter()
        self.coalesced = 0
        self.outcome_hits = 0
        self.module_hits = 0
        self.admission_rejected = 0
        self.errors = 0

    # -- admission --------------------------------------------------------

    def _admit(self, tenant: str) -> None:
        with self._lock:
            if self._pending_total >= self.max_pending:
                self.admission_rejected += 1
                raise AdmissionError(
                    f"service over capacity ({self.max_pending} pending)"
                )
            if self._pending[tenant] >= self.max_pending_per_tenant:
                self.admission_rejected += 1
                raise AdmissionError(
                    f"tenant {tenant!r} over quota "
                    f"({self.max_pending_per_tenant} pending)"
                )
            self._pending[tenant] += 1
            self._pending_total += 1

    def _release(self, tenant: str) -> None:
        with self._lock:
            self._pending[tenant] -= 1
            if self._pending[tenant] <= 0:
                del self._pending[tenant]
            self._pending_total -= 1

    # -- request entry points ---------------------------------------------

    def handle_line(self, line: str | bytes) -> bytes:
        """Decode one wire line, handle it, encode the response."""
        try:
            request = decode_request(line)
        except ProtocolError as error:
            with self._lock:
                self.errors += 1
            return encode(error_response({}, "protocol", str(error)))
        return encode(self.handle(request))

    def handle(self, request: dict[str, Any]) -> dict[str, Any]:
        """Handle one validated request; always returns a response dict."""
        op = request["op"]
        tenant = request.get("tenant", DEFAULT_TENANT)
        started = time.perf_counter()
        with self._lock:
            self.requests += 1
            self.by_op[op] += 1
            self.by_tenant[tenant] += 1

        def meta(**extra: Any) -> dict[str, Any]:
            wall_ms = (time.perf_counter() - started) * 1e3
            base = {"tenant": tenant, "wall_ms": round(wall_ms, 3)}
            base.update(extra)
            return base

        if op == "ping":
            return ok_response(request, {"protocol": PROTOCOL}, meta())
        if op == "stats":
            return ok_response(request, self.stats(), meta())
        if op == "shutdown":
            # The server watches for this op and stops accepting after the
            # response is written; the service itself has nothing to stop.
            return ok_response(request, {"shutting_down": True}, meta())

        try:
            self._admit(tenant)
        except AdmissionError as error:
            return error_response(request, "admission", str(error), meta())
        try:
            ok, payload, shared = self._compute_shared(op, request)
        finally:
            self._release(tenant)
        if ok:
            return ok_response(
                request,
                payload,
                meta(coalesced=shared == "coalesced", cached=shared == "cached"),
            )
        kind, message = payload
        with self._lock:
            self.errors += 1
        return error_response(
            request,
            kind,
            message,
            meta(coalesced=shared == "coalesced", cached=shared == "cached"),
        )

    # -- the dedup core ----------------------------------------------------

    def _compute_key(self, op: str, request: dict[str, Any]) -> tuple:
        return (
            op,
            _module_key(request["module"]),
            self._pipeline_name(op, request),
            request.get("function", "main"),
            tuple(request.get("args") or ()),
            bool(request.get("functional", False)),
        )

    @staticmethod
    def _pipeline_name(op: str, request: dict[str, Any]) -> str:
        pipeline = request.get("pipeline")
        if pipeline is None:
            pipeline = "full" if op == "compile" else ""
        return pipeline

    def _compute_shared(
        self, op: str, request: dict[str, Any]
    ) -> tuple[bool, Any, str]:
        """Run the computation with outcome sharing.

        Returns ``(ok, payload, shared)`` where ``shared`` is ``"computed"``,
        ``"coalesced"`` (an in-flight duplicate did the work) or ``"cached"``
        (a completed duplicate did).
        """
        if not self.dedup:
            return (*self._execute(op, request), "computed")
        key = self._compute_key(op, request)
        while True:
            with self._lock:
                outcome = self._outcomes.get(key)
                if outcome is not None:
                    self._outcomes.move_to_end(key)
                    self.outcome_hits += 1
                    return (*outcome, "cached")
                flight = self._in_flight.get(key)
                if flight is None:
                    flight = _Flight()
                    self._in_flight[key] = flight
                    owner = True
                else:
                    owner = False
                    self.coalesced += 1
            if not owner:
                flight.event.wait()
                if flight.outcome is None:  # owner died abnormally; retry
                    continue
                return (*flight.outcome, "coalesced")
            try:
                outcome = self._execute(op, request)
            except BaseException:
                # Unexpected (non-protocol) crash: don't poison waiters with
                # a stuck flight — wake them to retry, then propagate.
                with self._lock:
                    self._in_flight.pop(key, None)
                flight.event.set()
                raise
            flight.outcome = outcome
            with self._lock:
                self._outcomes[key] = outcome
                while len(self._outcomes) > self.outcome_cache_size:
                    self._outcomes.popitem(last=False)
                self._in_flight.pop(key, None)
            flight.event.set()
            return (*outcome, "computed")

    # -- computation proper -------------------------------------------------

    def _parsed_module(self, op: str, request: dict[str, Any]):
        """Parse + verify + optimize, reusing the module cache when allowed."""
        text = request["module"]
        pipeline = self._pipeline_name(op, request)
        if pipeline and pipeline not in PIPELINES:
            raise ProtocolError(
                f"unknown pipeline {pipeline!r}; expected one of "
                f"{', '.join(sorted(PIPELINES))}"
            )
        key = (_module_key(text), pipeline)
        if self.dedup:
            with self._lock:
                module = self._modules.get(key)
                if module is not None:
                    self._modules.move_to_end(key)
                    self.module_hits += 1
                    return module
        module = parse_module(text, "<request>")
        verify_operation(module)
        if pipeline:
            pipeline_by_name(pipeline).run(module)
        if self.dedup:
            with self._lock:
                self._modules[key] = module
                while len(self._modules) > self.module_cache_size:
                    self._modules.popitem(last=False)
        return module

    def _execute(self, op: str, request: dict[str, Any]) -> tuple[bool, Any]:
        """One computation; never raises for request-shaped problems."""
        try:
            module = self._parsed_module(op, request)
            handler = getattr(self, f"_op_{op}")
            return (True, handler(module, request))
        except ProtocolError as error:
            return (False, ("protocol", str(error)))
        except Exception as error:  # noqa: BLE001 - reported to the client
            return (False, (type(error).__name__, str(error)))

    def _op_compile(self, module, request: dict[str, Any]) -> dict[str, Any]:
        fingerprint = module_fingerprint(module)
        # Publish the compiled trace into the shared cache so any tenant's
        # later simulate of the same module starts warm.
        self.cache.get_or_compile(module, key=fingerprint)
        return {
            "text": str(module),
            "fingerprint": fingerprint,
            "ops": sum(1 for _ in module.walk()),
        }

    def _op_simulate(self, module, request: dict[str, Any]) -> dict[str, Any]:
        sim = CoSimulator(functional=bool(request.get("functional", False)))
        results, sim = run_module_traced(
            module,
            sim,
            function=request.get("function", "main"),
            args=list(request.get("args") or []),
            cache=self.cache,
        )
        stats = sim.trace.stats(sim.cost_model)
        return {
            "results": [int(value) for value in results],
            "total_cycles": sim.total_cycles,
            "instrs": {
                "total": stats.total_instrs,
                "setup": stats.setup_instrs,
                "calc": stats.calc_instrs,
            },
            "config_bytes": stats.config_bytes,
            "launches": {
                name: device.launch_count
                for name, device in sim.devices.items()
            },
        }

    def _op_lint(self, module, request: dict[str, Any]) -> dict[str, Any]:
        from ..analysis import Severity, run_lints

        diagnostics = run_lints(
            module,
            target=request.get("target"),
            analyses=self.analyses,
        )
        return {
            "diagnostics": [d.to_dict() for d in diagnostics],
            "errors": sum(
                1 for d in diagnostics if d.severity is Severity.ERROR
            ),
            "warnings": sum(
                1 for d in diagnostics if d.severity is Severity.WARNING
            ),
        }

    def _op_cost(self, module, request: dict[str, Any]) -> dict[str, Any]:
        from ..analysis.cost import format_cost_table

        analysis = self.analyses.cost(module)
        return {"table": format_cost_table(analysis)}

    # -- introspection ------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "protocol": PROTOCOL,
                "uptime_s": round(time.time() - self.started_at, 3),
                "dedup": self.dedup,
                "requests": self.requests,
                "by_op": dict(self.by_op),
                "tenants": len(self.by_tenant),
                "pending": self._pending_total,
                "coalesced": self.coalesced,
                "outcome_hits": self.outcome_hits,
                "module_hits": self.module_hits,
                "admission_rejected": self.admission_rejected,
                "errors": self.errors,
                "dedup_hit_rate": round(
                    (self.coalesced + self.outcome_hits) / self.requests, 4
                )
                if self.requests
                else 0.0,
                "trace_cache": {
                    "entries": len(self.cache),
                    "hits": self.cache.hits,
                    "misses": self.cache.misses,
                    "coalesced": getattr(self.cache, "coalesced", 0),
                },
                "analyses": {
                    "entries": len(self.analyses),
                    "hits": self.analyses.hits,
                    "misses": self.analyses.misses,
                },
            }


#: ops every service understands (re-exported for the server/CLI)
SERVICE_OPS = MODULE_OPS + ("stats", "ping", "shutdown")
